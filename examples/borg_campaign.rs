//! A larger Borg-like campaign comparing every scheduler the paper
//! evaluates (Fig. 5 / Fig. 10 style), printing savings relative to the
//! baseline and the resulting placement distribution across regions.
//!
//! ```text
//! cargo run --release --example borg_campaign
//! ```
//!
//! Set `WATERWISE_DAYS` to lengthen the trace (default 0.1 days).

use waterwise::core::{Campaign, CampaignConfig, SchedulerKind};
use waterwise::telemetry::ALL_REGIONS;

fn main() {
    let days: f64 = std::env::var("WATERWISE_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let campaign = Campaign::new(CampaignConfig::paper_default(days, 0.5, 7));
    println!(
        "replaying {} Borg-like jobs across {} regions (50% delay tolerance)\n",
        campaign.jobs().len(),
        ALL_REGIONS.len()
    );

    let baseline = campaign
        .run(SchedulerKind::Baseline)
        .expect("baseline campaign");

    println!(
        "{:<18} {:>14} {:>14} {:>10} {:>12}",
        "scheduler", "carbon saving", "water saving", "stretch", "violations"
    );
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::LeastLoad,
        SchedulerKind::Ecovisor,
        SchedulerKind::CarbonGreedyOpt,
        SchedulerKind::WaterGreedyOpt,
        SchedulerKind::WaterWise,
    ] {
        let outcome = campaign.run(kind).expect("campaign run");
        println!(
            "{:<18} {:>13.1}% {:>13.1}% {:>9.3}x {:>11.2}%",
            kind.label(),
            outcome.carbon_saving_vs(&baseline),
            outcome.water_saving_vs(&baseline),
            outcome.summary.mean_service_stretch,
            outcome.summary.violation_fraction * 100.0
        );
    }

    let waterwise = campaign
        .run(SchedulerKind::WaterWise)
        .expect("campaign run");
    println!("\nWaterWise placement distribution:");
    for region in ALL_REGIONS {
        let share = waterwise.summary.region_distribution()[region.index()];
        println!("  {:<8} {:>5.1}%", region.name(), share * 100.0);
    }
}
