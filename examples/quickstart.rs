//! Quickstart: run a small WaterWise campaign and compare it against the
//! carbon/water-unaware baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use waterwise::core::{Campaign, CampaignConfig, SchedulerKind};

fn main() {
    // A small Borg-like campaign (~an hour of arrivals, five regions,
    // 50% delay tolerance) that completes in a few seconds.
    let config = CampaignConfig::small_demo(42);
    let campaign = Campaign::new(config);

    let stats = campaign.trace_statistics();
    println!(
        "generated {} jobs over {:.1} simulated hours (mean execution {:.0} s)",
        stats.job_count,
        stats.span.value() / 3600.0,
        stats.mean_execution_time.value()
    );

    let baseline = campaign
        .run(SchedulerKind::Baseline)
        .expect("baseline campaign");
    let waterwise = campaign
        .run(SchedulerKind::WaterWise)
        .expect("waterwise campaign");

    println!();
    println!("                       baseline      waterwise");
    println!(
        "carbon footprint     {:>10.1} kg {:>10.1} kg",
        baseline.summary.total_carbon.value() / 1000.0,
        waterwise.summary.total_carbon.value() / 1000.0
    );
    println!(
        "water footprint      {:>10.1} L  {:>10.1} L",
        baseline.summary.total_water.value(),
        waterwise.summary.total_water.value()
    );
    println!(
        "mean service stretch {:>10.3}x {:>10.3}x",
        baseline.summary.mean_service_stretch, waterwise.summary.mean_service_stretch
    );
    println!(
        "tolerance violations {:>10.2}% {:>10.2}%",
        baseline.summary.violation_fraction * 100.0,
        waterwise.summary.violation_fraction * 100.0
    );
    println!();
    println!(
        "WaterWise saves {:.1}% carbon and {:.1}% water relative to the baseline.",
        waterwise.carbon_saving_vs(&baseline),
        waterwise.water_saving_vs(&baseline)
    );
}
