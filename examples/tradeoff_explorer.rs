//! Explore the carbon/water trade-off surface: sweep the objective weight
//! `λ_CO2` and the delay tolerance, and print the savings grid (the
//! interaction behind Fig. 5 and Fig. 8 of the paper).
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use waterwise::core::{Campaign, CampaignConfig, ObjectiveWeights, SchedulerKind};

fn main() {
    let days = 0.08;
    let seed = 11;
    println!(
        "carbon/water savings of WaterWise vs the baseline (rows: λ_CO2, cols: delay tolerance)\n"
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "λ_CO2", "tol 25%", "tol 50%", "tol 100%"
    );
    for lambda in [0.3, 0.5, 0.7] {
        let mut cells = Vec::new();
        for tolerance in [0.25, 0.5, 1.0] {
            let config = CampaignConfig::paper_default(days, tolerance, seed)
                .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(lambda));
            let campaign = Campaign::new(config);
            let rows = campaign
                .savings_vs_baseline(&[SchedulerKind::WaterWise])
                .expect("campaign run");
            let (_, carbon, water) = rows[0];
            cells.push(format!("{carbon:+5.1}%C {water:+5.1}%W"));
        }
        println!(
            "{:>8} {:>16} {:>16} {:>16}",
            format!("{lambda:.1}"),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!();
    println!("Reading the grid: a higher λ_CO2 trades water savings for carbon savings;");
    println!("a higher delay tolerance improves both (more placement freedom).");
}
