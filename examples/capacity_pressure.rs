//! Stress the slack manager: shrink the cluster until the per-round batch
//! exceeds the remaining capacity and watch how WaterWise prioritizes jobs
//! by urgency (Eq. 14) while keeping delay-tolerance violations low.
//!
//! ```text
//! cargo run --release --example capacity_pressure
//! ```

use waterwise::core::{Campaign, CampaignConfig, SchedulerKind};

fn main() {
    println!(
        "WaterWise under increasing capacity pressure (0.05-day Borg-like trace, 50% tolerance)\n"
    );
    println!(
        "{:>15} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "servers/region", "utilization", "carbon saving", "water saving", "stretch", "violations"
    );
    for servers in [60usize, 25, 10, 4] {
        let config = CampaignConfig::small_demo(23).with_servers_per_region(servers);
        let campaign = Campaign::new(config);
        let baseline = campaign
            .run(SchedulerKind::Baseline)
            .expect("baseline campaign");
        let waterwise = campaign
            .run(SchedulerKind::WaterWise)
            .expect("waterwise campaign");
        println!(
            "{:>15} {:>11.1}% {:>13.1}% {:>13.1}% {:>11.3}x {:>11.2}%",
            servers,
            waterwise.summary.mean_utilization * 100.0,
            waterwise.carbon_saving_vs(&baseline),
            waterwise.water_saving_vs(&baseline),
            waterwise.summary.mean_service_stretch,
            waterwise.summary.violation_fraction * 100.0
        );
    }
    println!();
    println!("As capacity shrinks, utilization and service stretch rise and savings shrink —");
    println!("the slack manager keeps violations bounded by prioritizing urgent jobs.");
}
