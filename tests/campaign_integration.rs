//! Integration tests spanning every crate: telemetry + traces + simulator +
//! schedulers running end-to-end campaigns through the public `waterwise`
//! API, checking the qualitative results the paper reports.

use waterwise::core::{
    Campaign, CampaignConfig, ObjectiveWeights, Parallelism, SchedulerKind, WaterWiseError,
};
use waterwise::telemetry::Region;

fn small_campaign(seed: u64) -> Campaign {
    Campaign::new(CampaignConfig::small_demo(seed))
}

#[test]
fn every_scheduler_completes_every_job() {
    let campaign = small_campaign(1);
    let expected = campaign.jobs().len();
    assert!(expected > 50, "demo trace should have a meaningful size");
    for kind in SchedulerKind::ALL {
        let outcome = campaign.run(kind).unwrap();
        assert_eq!(outcome.summary.total_jobs, expected, "{kind:?} lost jobs");
        assert!(outcome.summary.total_carbon.value() > 0.0);
        assert!(outcome.summary.total_water.value() > 0.0);
        assert!(outcome.summary.mean_service_stretch >= 1.0);
    }
}

#[test]
fn waterwise_saves_carbon_and_water_vs_baseline() {
    // The headline result (Fig. 5): positive savings on both axes.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.1, 0.5, 3));
    let baseline = campaign.run(SchedulerKind::Baseline).unwrap();
    let waterwise = campaign.run(SchedulerKind::WaterWise).unwrap();
    let carbon = waterwise.carbon_saving_vs(&baseline);
    let water = waterwise.water_saving_vs(&baseline);
    assert!(carbon > 5.0, "carbon saving too small: {carbon:.1}%");
    assert!(water > 0.0, "water saving not positive: {water:.1}%");
}

#[test]
fn waterwise_balances_between_the_single_objective_oracles() {
    // Fig. 5: WaterWise's carbon footprint is close to Carbon-Greedy-Opt and
    // its water footprint close to Water-Greedy-Opt; each oracle is the best
    // on its own axis.
    // Seed note: the oracle *tension* asserted below (each oracle best on
    // its own axis, worst on the other) holds at every seed probed (1..24),
    // but the 1.5x closeness band is seed-sensitive — greedy oracles are
    // estimate-driven, and the vendored rand produces different streams
    // than crates.io rand. Seed 10 sits well inside the band (WaterWise at
    // ~1.24x the carbon oracle, ~1.03x the water oracle); if trace
    // generation changes, re-probe a seed range rather than loosening 1.5x.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.1, 0.5, 10));
    let carbon_opt = campaign.run(SchedulerKind::CarbonGreedyOpt).unwrap();
    let water_opt = campaign.run(SchedulerKind::WaterGreedyOpt).unwrap();
    let waterwise = campaign.run(SchedulerKind::WaterWise).unwrap();
    // The single-objective oracles pay for their focus on the other axis:
    // the carbon oracle uses more water than the water oracle, and the water
    // oracle emits more carbon than the carbon oracle (Fig. 3(a)).
    assert!(
        carbon_opt.summary.total_water.value() > water_opt.summary.total_water.value(),
        "the carbon oracle should be suboptimal on water"
    );
    assert!(
        water_opt.summary.total_carbon.value() > carbon_opt.summary.total_carbon.value(),
        "the water oracle should be suboptimal on carbon"
    );
    // WaterWise stays close to each oracle on its own axis (the paper reports
    // within ~7% of Carbon-Greedy-Opt and ~5% of Water-Greedy-Opt; the
    // oracles here are greedy and estimate-driven, so allow a wider band and
    // also accept WaterWise beating them).
    assert!(
        waterwise.summary.total_carbon.value() < carbon_opt.summary.total_carbon.value() * 1.5,
        "WaterWise carbon should be within ~50% of the carbon oracle"
    );
    assert!(
        waterwise.summary.total_water.value() < water_opt.summary.total_water.value() * 1.5,
        "WaterWise water should be within ~50% of the water oracle"
    );
}

#[test]
fn higher_delay_tolerance_does_not_hurt_savings() {
    // Fig. 5 trend: savings improve (or at least do not collapse) as the
    // delay tolerance grows.
    let seed = 9;
    let low = Campaign::new(CampaignConfig::paper_default(0.08, 0.25, seed));
    let high = Campaign::new(CampaignConfig::paper_default(0.08, 1.0, seed));
    let low_rows = low
        .savings_vs_baseline(&[SchedulerKind::WaterWise])
        .unwrap();
    let high_rows = high
        .savings_vs_baseline(&[SchedulerKind::WaterWise])
        .unwrap();
    let (_, low_carbon, _low_water) = low_rows[0];
    let (_, high_carbon, _high_water) = high_rows[0];
    assert!(
        high_carbon >= low_carbon - 5.0,
        "carbon saving degraded badly with higher tolerance: {low_carbon:.1}% -> {high_carbon:.1}%"
    );
}

#[test]
fn violations_stay_bounded_and_stretch_stays_modest() {
    // Table 2: the slack manager keeps delay-tolerance violations rare and
    // the average service stretch well below the allowed bound.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.1, 0.5, 11));
    let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
    assert!(
        outcome.summary.violation_fraction < 0.10,
        "too many violations: {:.2}%",
        outcome.summary.violation_fraction * 100.0
    );
    assert!(
        outcome.summary.mean_service_stretch < 1.5,
        "service stretch too high: {:.3}",
        outcome.summary.mean_service_stretch
    );
}

#[test]
fn carbon_weight_tilts_the_outcome() {
    // Fig. 8: raising λ_CO2 should not *decrease* carbon savings relative to
    // lowering it (and vice versa for water).
    let seed = 13;
    let carbon_heavy = Campaign::new(
        CampaignConfig::paper_default(0.08, 0.5, seed)
            .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(0.7)),
    );
    let water_heavy = Campaign::new(
        CampaignConfig::paper_default(0.08, 0.5, seed)
            .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(0.3)),
    );
    let ch = carbon_heavy.run(SchedulerKind::WaterWise).unwrap();
    let wh = water_heavy.run(SchedulerKind::WaterWise).unwrap();
    assert!(
        ch.summary.total_carbon.value() <= wh.summary.total_carbon.value() * 1.05,
        "carbon-heavy weights should not emit much more carbon"
    );
    assert!(
        wh.summary.total_water.value() <= ch.summary.total_water.value() * 1.05,
        "water-heavy weights should not use much more water"
    );
}

#[test]
fn ecovisor_saves_less_than_waterwise() {
    // Fig. 7: the carbon-only, home-region-only comparator saves less carbon
    // and much less water than WaterWise.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.1, 0.5, 17));
    let baseline = campaign.run(SchedulerKind::Baseline).unwrap();
    let ecovisor = campaign.run(SchedulerKind::Ecovisor).unwrap();
    let waterwise = campaign.run(SchedulerKind::WaterWise).unwrap();
    assert!(
        waterwise.carbon_saving_vs(&baseline) > ecovisor.carbon_saving_vs(&baseline),
        "WaterWise should out-save Ecovisor on carbon"
    );
    assert!(
        waterwise.water_saving_vs(&baseline) > ecovisor.water_saving_vs(&baseline),
        "WaterWise should out-save Ecovisor on water"
    );
    // Ecovisor never migrates.
    assert_eq!(ecovisor.summary.migration_fraction, 0.0);
}

#[test]
fn load_balancers_are_not_sustainability_aware() {
    // Fig. 10: WaterWise beats Round-Robin and Least-Load on both axes.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.1, 0.5, 19));
    let baseline = campaign.run(SchedulerKind::Baseline).unwrap();
    let waterwise = campaign.run(SchedulerKind::WaterWise).unwrap();
    for kind in [SchedulerKind::RoundRobin, SchedulerKind::LeastLoad] {
        let other = campaign.run(kind).unwrap();
        assert!(
            waterwise.carbon_saving_vs(&baseline) > other.carbon_saving_vs(&baseline),
            "{kind:?} should not out-save WaterWise on carbon"
        );
        assert!(
            waterwise.water_saving_vs(&baseline) > other.water_saving_vs(&baseline),
            "{kind:?} should not out-save WaterWise on water"
        );
    }
}

#[test]
fn region_restricted_campaign_still_saves() {
    // Fig. 12: with only a subset of regions, WaterWise still achieves
    // positive savings by exploiting whatever diversity remains.
    let config = CampaignConfig::paper_default(0.08, 0.5, 21).with_regions(&[
        Region::Zurich,
        Region::Milan,
        Region::Mumbai,
    ]);
    let campaign = Campaign::new(config);
    let rows = campaign
        .savings_vs_baseline(&[SchedulerKind::WaterWise])
        .unwrap();
    let (_, carbon, water) = rows[0];
    assert!(carbon > 0.0, "carbon saving {carbon:.1}%");
    assert!(water > -5.0, "water saving collapsed: {water:.1}%");
    // All executions happen inside the restricted set.
    let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
    for o in &outcome.report.outcomes {
        assert!(matches!(
            o.executed_region,
            Region::Zurich | Region::Milan | Region::Mumbai
        ));
    }
}

#[test]
fn campaigns_are_deterministic_for_a_fixed_seed() {
    let a = small_campaign(33).run(SchedulerKind::WaterWise).unwrap();
    let b = small_campaign(33).run(SchedulerKind::WaterWise).unwrap();
    assert_eq!(a.summary.total_jobs, b.summary.total_jobs);
    assert!((a.summary.total_carbon.value() - b.summary.total_carbon.value()).abs() < 1e-6);
    assert!((a.summary.total_water.value() - b.summary.total_water.value()).abs() < 1e-6);
    assert_eq!(a.summary.jobs_per_region, b.summary.jobs_per_region);
}

#[test]
fn same_seed_produces_byte_identical_summaries_across_runs() {
    // Two independently prepared campaigns with the same seed must agree on
    // every summary field except wall-clock decision timings, byte for byte.
    for kind in [SchedulerKind::Baseline, SchedulerKind::WaterWise] {
        let a = small_campaign(77).run(kind).unwrap();
        let b = small_campaign(77).run(kind).unwrap();
        assert_eq!(
            format!("{:?}", a.summary.without_wall_clock()),
            format!("{:?}", b.summary.without_wall_clock()),
            "{kind:?} summary diverged between two identically seeded runs"
        );
        assert_eq!(a.report.outcomes, b.report.outcomes);
    }
}

#[test]
fn parallel_run_all_is_byte_identical_to_serial() {
    // The Parallelism knob must not change any result: same input order,
    // same per-job outcomes, byte-identical summaries (modulo wall clock).
    let serial =
        Campaign::new(CampaignConfig::small_demo(55).with_parallelism(Parallelism::Serial))
            .run_all(&SchedulerKind::ALL)
            .unwrap();
    let parallel =
        Campaign::new(CampaignConfig::small_demo(55).with_parallelism(Parallelism::Threads(7)))
            .run_all(&SchedulerKind::ALL)
            .unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.kind, p.kind);
        assert_eq!(
            format!("{:?}", s.summary.without_wall_clock()),
            format!("{:?}", p.summary.without_wall_clock()),
            "{:?} diverged between serial and parallel run_all",
            s.kind
        );
        assert_eq!(s.report.outcomes, p.report.outcomes);
        assert_eq!(s.report.makespan, p.report.makespan);
    }
}

#[test]
fn warm_started_rolling_horizon_matches_cold_solves_exactly() {
    // The tentpole invariant: warm starting (carried-forward assignments +
    // crash bases + incumbent seeding) is a pure performance optimization.
    // Schedules must be byte-identical and the accounted footprints equal to
    // within 1e-9, while the solver does measurably less pivot work.
    let mut cold_config = CampaignConfig::small_demo(42);
    cold_config.waterwise.warm_start = false;
    let mut warm_config = CampaignConfig::small_demo(42);
    warm_config.waterwise.warm_start = true;
    let cold = Campaign::new(cold_config)
        .run(SchedulerKind::WaterWise)
        .unwrap();
    let warm = Campaign::new(warm_config)
        .run(SchedulerKind::WaterWise)
        .unwrap();

    assert_eq!(
        cold.report.outcomes, warm.report.outcomes,
        "warm-started schedules must be byte-identical to cold solves"
    );
    assert!((cold.summary.total_carbon.value() - warm.summary.total_carbon.value()).abs() < 1e-9);
    assert!((cold.summary.total_water.value() - warm.summary.total_water.value()).abs() < 1e-9);

    // The performance side of the contract: the warm path engages on nearly
    // every solve and at least halves the pivots per solve.
    let warm_solver = warm.summary.solver;
    let cold_solver = cold.summary.solver;
    assert_eq!(cold_solver.warm_solves, 0);
    assert!(
        warm_solver.warm_solve_fraction() > 0.9,
        "warm start engaged on only {:.0}% of solves",
        warm_solver.warm_solve_fraction() * 100.0
    );
    assert!(
        warm_solver.pivots_per_solve() * 2.0 <= cold_solver.pivots_per_solve(),
        "expected >=2x pivot cut: warm {:.1} vs cold {:.1} pivots/solve",
        warm_solver.pivots_per_solve(),
        cold_solver.pivots_per_solve()
    );
}

#[test]
fn warm_start_equivalence_holds_under_parallel_campaigns() {
    // The same invariant through the parallel sweep machinery: a serial
    // cold run, a parallel cold run, and a parallel warm run of the same
    // matrix must agree on every outcome.
    let make_configs = |warm: bool, parallelism: Parallelism| -> Vec<CampaignConfig> {
        [3u64, 9u64]
            .iter()
            .map(|&seed| {
                let mut config = CampaignConfig::small_demo(seed).with_parallelism(parallelism);
                config.waterwise.warm_start = warm;
                config
            })
            .collect()
    };
    let kinds = [SchedulerKind::WaterWise];
    let serial_cold = Campaign::run_matrix(
        &make_configs(false, Parallelism::Serial),
        &kinds,
        Parallelism::Serial,
    )
    .unwrap();
    let parallel_cold = Campaign::run_matrix(
        &make_configs(false, Parallelism::Auto),
        &kinds,
        Parallelism::Auto,
    )
    .unwrap();
    let parallel_warm = Campaign::run_matrix(
        &make_configs(true, Parallelism::Auto),
        &kinds,
        Parallelism::Auto,
    )
    .unwrap();
    for ((sc, pc), pw) in serial_cold
        .iter()
        .flatten()
        .zip(parallel_cold.iter().flatten())
        .zip(parallel_warm.iter().flatten())
    {
        assert_eq!(sc.report.outcomes, pc.report.outcomes);
        assert_eq!(
            sc.report.outcomes, pw.report.outcomes,
            "warm-started parallel campaign diverged from the serial cold reference"
        );
        assert!((sc.summary.total_carbon.value() - pw.summary.total_carbon.value()).abs() < 1e-9);
        assert!((sc.summary.total_water.value() - pw.summary.total_water.value()).abs() < 1e-9);
    }
}

#[test]
fn rolling_horizon_window_still_completes_every_job() {
    // A tight sliding window defers work across more slots but must never
    // lose jobs, and savings should stay positive.
    let mut config = CampaignConfig::paper_default(0.08, 0.5, 5);
    config.waterwise.horizon = Some(24);
    let campaign = Campaign::new(config);
    let expected = campaign.jobs().len();
    let rows = campaign
        .savings_vs_baseline(&[SchedulerKind::WaterWise])
        .unwrap();
    let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
    assert_eq!(outcome.summary.total_jobs, expected, "window lost jobs");
    let (_, carbon, _water) = rows[0];
    assert!(carbon > 0.0, "carbon saving {carbon:.1}%");
}

#[test]
fn invalid_campaign_configs_surface_typed_errors() {
    let mut config = CampaignConfig::small_demo(1);
    config.simulation.regions.clear();
    let err = Campaign::new(config)
        .run(SchedulerKind::Baseline)
        .unwrap_err();
    assert!(matches!(err, WaterWiseError::Config(_)));
    // The error chain and message survive the crate boundary.
    assert!(err.to_string().contains("region"));
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn decision_overhead_is_negligible() {
    // Fig. 13: decision-making overhead is a tiny fraction of execution time.
    let campaign = Campaign::new(CampaignConfig::paper_default(0.05, 0.5, 37));
    let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
    assert!(
        outcome.summary.decision_overhead_fraction < 0.02,
        "overhead fraction {:.4}",
        outcome.summary.decision_overhead_fraction
    );
}

#[test]
fn solution_cache_modes_are_byte_identical_across_a_matrix_and_hit() {
    use waterwise::core::{SolutionCache, SolutionCacheMode};
    // The Fig. 15 setup end to end: a 3×3 tolerance × weight sweep, run
    // with the cache off, per-campaign, and shared across the whole matrix.
    let tolerances = [0.25, 0.50, 1.00];
    let lambdas = [0.3, 0.5, 0.7];
    let configs = |mode: &SolutionCacheMode| -> Vec<CampaignConfig> {
        tolerances
            .iter()
            .flat_map(|&tol| {
                lambdas.iter().map(move |&lambda| {
                    CampaignConfig::small_demo(42)
                        .with_delay_tolerance(tol)
                        .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(lambda))
                })
            })
            .map(|config| config.with_solution_cache(mode.clone()))
            .collect()
    };
    let shared = SolutionCache::shared();
    let modes = [
        SolutionCacheMode::Off,
        SolutionCacheMode::PerCampaign,
        SolutionCacheMode::Shared(shared.clone()),
    ];
    let mut reference: Option<Vec<_>> = None;
    for mode in &modes {
        let matrix = Campaign::run_matrix(
            &configs(mode),
            &[SchedulerKind::WaterWise],
            Parallelism::Auto,
        )
        .unwrap();
        let schedules: Vec<_> = matrix
            .iter()
            .flat_map(|row| row.iter().map(|o| o.report.outcomes.clone()))
            .collect();
        match &reference {
            None => reference = Some(schedules),
            Some(baseline) => assert_eq!(
                baseline,
                &schedules,
                "{} cache mode changed a schedule",
                mode.label()
            ),
        }
    }
    // The shared handle saw the whole sweep; neighboring cells must reuse
    // each other's incumbents well past the 30% target.
    let stats = shared.stats();
    assert!(stats.lookups() > 0, "shared cache saw no traffic");
    assert!(
        stats.hit_fraction() >= 0.30,
        "shared-matrix hit rate {:.1}% below the 30% target ({stats:?})",
        stats.hit_fraction() * 100.0
    );
}

#[test]
fn malformed_trace_fails_with_a_typed_error_not_a_panic() {
    use waterwise::cluster::{SimulationConfig, SimulationError, Simulator};
    // Two jobs sharing an id would leave one twin pending forever
    // (assignments are keyed by job id); the engine must reject the trace
    // with a typed error so a parallel campaign only loses that one cell.
    let campaign = small_campaign(5);
    let mut jobs = campaign.jobs().to_vec();
    assert!(jobs.len() >= 2);
    jobs[1].id = jobs[0].id;
    let simulator = Simulator::new(
        SimulationConfig::paper_default(40, 0.5),
        campaign.telemetry().clone(),
    )
    .unwrap();
    let mut scheduler = campaign.build_scheduler(SchedulerKind::WaterWise);
    let err = simulator.run(&jobs, scheduler.as_mut()).unwrap_err();
    assert!(
        matches!(err, SimulationError::DuplicateJobId { id } if id == jobs[0].id),
        "expected DuplicateJobId, got {err:?}"
    );
    assert!(err.to_string().contains("duplicate"));
}

#[test]
fn zero_horizon_campaign_still_completes_every_job() {
    // Regression: `with_horizon(Some(0))` used to stall every pending job
    // forever; the config builder now clamps the window to one job.
    let mut config = CampaignConfig::small_demo(7);
    config.waterwise = config.waterwise.with_horizon(Some(0));
    assert_eq!(config.waterwise.horizon, Some(1));
    let campaign = Campaign::new(config);
    let expected = campaign.jobs().len();
    let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
    assert_eq!(outcome.summary.total_jobs, expected, "window lost jobs");
}

#[test]
fn engine_modes_are_byte_identical_across_a_matrix() {
    use waterwise::core::EngineMode;
    // The pipelined-engine determinism contract at the campaign-matrix
    // level: a tolerance × horizon sweep replayed under the sync engine,
    // and again under pipelined engines with different worker counts, must
    // produce byte-identical schedules in every cell for every scheduler.
    let configs = |engine: EngineMode| -> Vec<CampaignConfig> {
        [0.25, 1.00]
            .iter()
            .flat_map(|&tol| {
                [None, Some(5)].into_iter().map(move |horizon| {
                    let mut config = CampaignConfig::small_demo(42).with_delay_tolerance(tol);
                    config.waterwise = config.waterwise.clone().with_horizon(horizon);
                    config.with_engine_mode(engine)
                })
            })
            .collect()
    };
    let kinds = [
        SchedulerKind::Baseline,
        SchedulerKind::RoundRobin,
        SchedulerKind::WaterWise,
    ];
    let reference =
        Campaign::run_matrix(&configs(EngineMode::Sync), &kinds, Parallelism::Auto).unwrap();
    for workers in [1, 2] {
        let pipelined = Campaign::run_matrix(
            &configs(EngineMode::Pipelined { workers }),
            &kinds,
            Parallelism::Auto,
        )
        .unwrap();
        for (row_ref, row_pipe) in reference.iter().zip(&pipelined) {
            for (cell_ref, cell_pipe) in row_ref.iter().zip(row_pipe) {
                assert_eq!(
                    cell_ref.report.outcomes, cell_pipe.report.outcomes,
                    "pipelined({workers}) changed {:?}'s schedule",
                    cell_ref.kind
                );
                assert_eq!(
                    format!("{:?}", cell_ref.summary.without_wall_clock()),
                    format!("{:?}", cell_pipe.summary.without_wall_clock()),
                    "pipelined({workers}) changed {:?}'s summary",
                    cell_ref.kind
                );
                assert!(cell_pipe.summary.pipeline.is_some());
            }
        }
    }
}

#[test]
fn pipelined_malformed_trace_fails_one_cell_without_poisoning_the_matrix() {
    use waterwise::cluster::{EngineMode, SimulationConfig, SimulationError, Simulator};
    // PR 3 taught the sync engine to reject malformed traces with typed
    // errors instead of panicking; the pipelined engine must fail the same
    // way — one bad cell errors, the other cells of the same parallel batch
    // (sync and pipelined alike) complete untouched.
    let campaign = small_campaign(5);
    let mut bad_jobs = campaign.jobs().to_vec();
    assert!(bad_jobs.len() >= 2);
    bad_jobs[1].id = bad_jobs[0].id;

    let pipelined_config = SimulationConfig::paper_default(40, 0.5)
        .with_engine_mode(EngineMode::Pipelined { workers: 2 });
    let simulator = Simulator::new(pipelined_config.clone(), campaign.telemetry().clone()).unwrap();
    let mut scheduler = campaign.build_scheduler(SchedulerKind::WaterWise);
    let err = simulator.run(&bad_jobs, scheduler.as_mut()).unwrap_err();
    assert!(
        matches!(err, SimulationError::DuplicateJobId { id } if id == bad_jobs[0].id),
        "expected DuplicateJobId, got {err:?}"
    );

    // An unassigned-job style corruption — a NaN submit time — also fails
    // with the same typed error the sync engine reports.
    let mut nan_jobs = campaign.jobs().to_vec();
    nan_jobs[0].submit_time = waterwise::sustain::Seconds::new(f64::NAN);
    let simulator = Simulator::new(pipelined_config, campaign.telemetry().clone()).unwrap();
    let mut scheduler = campaign.build_scheduler(SchedulerKind::WaterWise);
    let err = simulator.run(&nan_jobs, scheduler.as_mut()).unwrap_err();
    assert!(matches!(err, SimulationError::NonFiniteEventTime { .. }));

    // The failures above must not poison healthy pipelined cells run in the
    // same parallel batch.
    let healthy = Campaign::run_matrix(
        &[
            CampaignConfig::small_demo(5).with_engine_mode(EngineMode::Pipelined { workers: 2 }),
            CampaignConfig::small_demo(6),
        ],
        &[SchedulerKind::WaterWise],
        Parallelism::Auto,
    )
    .unwrap();
    for row in &healthy {
        assert!(row[0].summary.total_jobs > 0);
    }
}
