//! Cross-crate property tests on the public API: footprint-model invariants
//! and scheduler-decision invariants under randomly generated inputs.

use proptest::prelude::*;
use waterwise::core::{Campaign, CampaignConfig, SchedulerKind};
use waterwise::sustain::{FootprintEstimator, JobResourceUsage, KilowattHours, Seconds};
use waterwise::telemetry::{ConditionsProvider, Region, SyntheticTelemetry, ALL_REGIONS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Footprints are non-negative and scale monotonically with energy.
    #[test]
    fn footprint_monotone_in_energy(
        energy in 0.001f64..2.0,
        hours in 0.05f64..4.0,
        region_idx in 0usize..5,
        hour in 0usize..200,
    ) {
        let telemetry = SyntheticTelemetry::with_seed(5);
        let estimator = FootprintEstimator::paper_default();
        let region = ALL_REGIONS[region_idx];
        let conditions = telemetry.conditions(region, Seconds::from_hours(hour as f64));
        let usage_small = JobResourceUsage::new(KilowattHours::new(energy), Seconds::from_hours(hours));
        let usage_large = JobResourceUsage::new(KilowattHours::new(energy * 2.0), Seconds::from_hours(hours));
        let small = estimator.estimate(usage_small, conditions);
        let large = estimator.estimate(usage_large, conditions);
        prop_assert!(small.total_carbon().value() >= 0.0);
        prop_assert!(small.total_water().value() >= 0.0);
        prop_assert!(large.carbon.operational.value() >= small.carbon.operational.value());
        prop_assert!(large.water.offsite.value() >= small.water.offsite.value());
        prop_assert!(large.water.onsite.value() >= small.water.onsite.value());
    }

    /// The water-intensity metric (Eq. 6) increases with the scarcity factor
    /// and with PUE, for any region and time.
    #[test]
    fn water_intensity_monotonicity(
        region_idx in 0usize..5,
        hour in 0usize..500,
        pue_low in 1.0f64..1.3,
        pue_extra in 0.01f64..0.8,
    ) {
        let telemetry = SyntheticTelemetry::with_seed(9);
        let region = ALL_REGIONS[region_idx];
        let conditions = telemetry.conditions(region, Seconds::from_hours(hour as f64));
        let low = conditions.water_intensity(pue_low).value();
        let high = conditions.water_intensity(pue_low + pue_extra).value();
        prop_assert!(high >= low);
        prop_assert!(low >= 0.0);
    }

    /// Conditions lookups are always physical for any region/time.
    #[test]
    fn telemetry_is_always_physical(
        seed in 0u64..50,
        region_idx in 0usize..5,
        hours in 0.0f64..2000.0,
    ) {
        let telemetry = SyntheticTelemetry::with_seed(seed);
        let c = telemetry.conditions(ALL_REGIONS[region_idx], Seconds::from_hours(hours));
        prop_assert!(c.carbon_intensity.value() > 0.0);
        prop_assert!(c.carbon_intensity.value() < 1600.0);
        prop_assert!(c.ewif.value() >= 0.0);
        prop_assert!(c.ewif.value() < 25.0);
        prop_assert!(c.wue.value() >= 0.0);
        prop_assert!(c.wue.value() <= 9.0);
        prop_assert!((0.0..=1.0).contains(&c.wsf.value()));
    }
}

proptest! {
    // End-to-end campaigns are expensive; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed, a WaterWise campaign completes every job, never exceeds
    /// capacity (utilization ≤ 1), and only uses participating regions.
    #[test]
    fn campaign_invariants_hold_for_any_seed(seed in 0u64..1000) {
        let campaign = Campaign::new(CampaignConfig::small_demo(seed));
        let outcome = campaign.run(SchedulerKind::WaterWise).unwrap();
        prop_assert_eq!(outcome.summary.total_jobs, campaign.jobs().len());
        prop_assert!(outcome.summary.mean_utilization <= 1.0 + 1e-9);
        for o in &outcome.report.outcomes {
            prop_assert!(o.service_time().value() >= o.execution_time.value() - 1e-6);
            prop_assert!(ALL_REGIONS.contains(&o.executed_region));
            prop_assert!(o.footprint.total_carbon().value() > 0.0);
            prop_assert!(o.footprint.total_water().value() > 0.0);
        }
        // Executed-region histogram sums to the job count.
        let total: usize = outcome.summary.jobs_per_region.iter().sum();
        prop_assert_eq!(total, outcome.summary.total_jobs);
    }

    /// The baseline never migrates a job for any seed.
    #[test]
    fn baseline_never_migrates(seed in 0u64..1000) {
        let campaign = Campaign::new(CampaignConfig::small_demo(seed));
        let outcome = campaign.run(SchedulerKind::Baseline).unwrap();
        prop_assert_eq!(outcome.summary.migration_fraction, 0.0);
        for o in &outcome.report.outcomes {
            prop_assert_eq!(o.executed_region, o.home_region);
            prop_assert_eq!(o.transfer_time.value(), 0.0);
        }
    }
}

/// A plain (non-proptest) sanity check that the umbrella crate re-exports
/// are wired up.
#[test]
fn umbrella_reexports_are_usable() {
    assert_eq!(waterwise::VERSION, env!("CARGO_PKG_VERSION"));
    assert_eq!(Region::Zurich.index(), 0);
    let model = waterwise::milp::Model::new("smoke");
    assert_eq!(model.num_vars(), 0);
}
