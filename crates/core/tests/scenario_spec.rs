//! Negative battery for the scenario spec parser: one test per rejection
//! class. Every malformed, unknown, or out-of-range spec must come back as
//! a typed [`ScenarioError`] carrying the offending 1-based line number —
//! never a panic, never a silently-defaulted value.

use waterwise_cluster::ConfigError;
use waterwise_core::{load_spec, parse_spec, ScenarioError};

/// A minimal valid spec (5 lines); appended text starts at line 6.
const BASE: &str = "[scenario]\nname = t\nseed = 7\n[trace]\ndays = 0.02\n";

fn with(extra: &str) -> Result<waterwise_core::Scenario, ScenarioError> {
    parse_spec(&format!("{BASE}{extra}"))
}

#[test]
fn malformed_line_is_a_syntax_error_with_its_line_number() {
    let err = with("this is not a key value pair\n").unwrap_err();
    assert!(
        matches!(err, ScenarioError::Syntax { line: 6, .. }),
        "got {err:?}"
    );
    assert!(err.to_string().contains("line 6"));
}

#[test]
fn unterminated_section_header_is_a_syntax_error() {
    let err = parse_spec("[scenario\nname = t\n").unwrap_err();
    assert!(
        matches!(err, ScenarioError::Syntax { line: 1, .. }),
        "got {err:?}"
    );
}

#[test]
fn empty_section_header_is_a_syntax_error() {
    let err = parse_spec("[]\n").unwrap_err();
    assert!(
        matches!(err, ScenarioError::Syntax { line: 1, .. }),
        "got {err:?}"
    );
}

#[test]
fn key_before_any_section_is_a_syntax_error() {
    let err = parse_spec("name = t\n").unwrap_err();
    assert!(
        matches!(err, ScenarioError::Syntax { line: 1, .. }),
        "got {err:?}"
    );
}

#[test]
fn unknown_section_is_rejected_by_name() {
    let err = with("[scheduler]\n").unwrap_err();
    assert_eq!(
        err,
        ScenarioError::UnknownSection {
            line: 6,
            section: "scheduler".to_string()
        }
    );
}

#[test]
fn unknown_key_is_rejected_with_its_section() {
    let err = with("[simulation]\nservers = 10\n").unwrap_err();
    assert_eq!(
        err,
        ScenarioError::UnknownKey {
            line: 7,
            section: "simulation",
            key: "servers".to_string()
        }
    );
}

#[test]
fn duplicate_key_is_rejected_at_the_second_assignment() {
    let err = with("days = 0.04\n").unwrap_err();
    assert_eq!(
        err,
        ScenarioError::DuplicateKey {
            line: 6,
            key: "days".to_string()
        }
    );
}

#[test]
fn non_numeric_value_is_an_invalid_value() {
    let err = parse_spec("[scenario]\nname = t\nseed = many\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 3,
                key: "seed",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn non_finite_float_is_out_of_range() {
    for bad in ["nan", "inf", "-inf"] {
        let err = with(&format!("rate_multiplier = {bad}\n")).unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::OutOfRange {
                    line: 6,
                    key: "rate_multiplier",
                    ..
                }
            ),
            "`{bad}` got {err:?}"
        );
    }
}

#[test]
fn non_positive_days_is_out_of_range() {
    for bad in ["0", "-0.5"] {
        let err = parse_spec(&format!(
            "[scenario]\nname = t\nseed = 7\n[trace]\ndays = {bad}\n"
        ))
        .unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::OutOfRange {
                    line: 5,
                    key: "days",
                    ..
                }
            ),
            "`{bad}` got {err:?}"
        );
    }
}

#[test]
fn lambda_outside_unit_interval_is_out_of_range() {
    for bad in ["-0.1", "1.5"] {
        let err = with(&format!("[objective]\nlambda_co2 = {bad}\n")).unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::OutOfRange {
                    line: 7,
                    key: "lambda_co2",
                    ..
                }
            ),
            "`{bad}` got {err:?}"
        );
    }
}

#[test]
fn unknown_engine_label_and_zero_workers_are_rejected() {
    let err = with("[simulation]\nengine = threads\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 7,
                key: "engine",
                ..
            }
        ),
        "got {err:?}"
    );
    let err = with("[simulation]\nengine = pipelined:0\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::OutOfRange {
                line: 7,
                key: "engine",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn unknown_clock_label_and_non_positive_scale_are_rejected() {
    let err = with("[simulation]\nclock = wall\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 7,
                key: "clock",
                ..
            }
        ),
        "got {err:?}"
    );
    let err = with("[simulation]\nclock = real-time:0\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::OutOfRange {
                line: 7,
                key: "clock",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn unknown_and_duplicate_regions_are_rejected() {
    let err = with("regions = Oregon, Atlantis\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 6,
                key: "regions",
                ..
            }
        ),
        "got {err:?}"
    );
    let err = with("regions = Oregon, Oregon\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 6,
                key: "regions",
                ..
            }
        ),
        "got {err:?}"
    );
    let err = with("regions = \n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 6,
                key: "regions",
                ..
            }
        ),
        "empty list: got {err:?}"
    );
}

#[test]
fn unknown_benchmark_is_rejected() {
    let err = with("benchmarks = linpack\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 6,
                key: "benchmarks",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn shared_solution_cache_is_rejected_as_runtime_only() {
    let err = with("[campaign]\nsolution_cache = shared\n").unwrap_err();
    let ScenarioError::InvalidValue {
        line: 7,
        key: "solution_cache",
        message,
    } = err
    else {
        panic!("got unexpected error");
    };
    assert!(message.contains("runtime handle"), "message: {message}");
}

#[test]
fn missing_required_keys_are_reported_by_section_and_key() {
    assert_eq!(
        parse_spec("[scenario]\nseed = 7\n[trace]\ndays = 0.02\n").unwrap_err(),
        ScenarioError::MissingKey {
            section: "scenario",
            key: "name"
        }
    );
    assert_eq!(
        parse_spec("[scenario]\nname = t\n[trace]\ndays = 0.02\n").unwrap_err(),
        ScenarioError::MissingKey {
            section: "scenario",
            key: "seed"
        }
    );
    assert_eq!(
        parse_spec("[scenario]\nname = t\nseed = 7\n").unwrap_err(),
        ScenarioError::MissingKey {
            section: "trace",
            key: "days"
        }
    );
}

#[test]
fn zero_servers_per_region_is_out_of_range() {
    let err = with("[simulation]\nservers_per_region = 0\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::OutOfRange {
                line: 7,
                key: "servers_per_region",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn non_positive_scheduling_interval_surfaces_the_typed_cluster_error() {
    // Parsed fine, rejected by `SimulationConfig::validate` — the spec layer
    // must pass the cluster's own `ConfigError` through unchanged.
    let err = with("[simulation]\nscheduling_interval_s = 0\n").unwrap_err();
    assert_eq!(
        err,
        ScenarioError::Config(ConfigError::NonPositiveSchedulingInterval { seconds: 0.0 })
    );
}

#[test]
fn non_positive_embodied_perturbation_surfaces_the_typed_cluster_error() {
    let err = with("[simulation]\nembodied_perturbation = -1\n").unwrap_err();
    assert_eq!(
        err,
        ScenarioError::Config(ConfigError::NonPositiveEmbodiedPerturbation { factor: -1.0 })
    );
}

#[test]
fn invalid_scenario_name_is_rejected() {
    let err = parse_spec("[scenario]\nname = ../escape\n").unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::InvalidValue {
                line: 2,
                key: "name",
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn unreadable_spec_file_is_a_typed_io_error() {
    let err = load_spec("/nonexistent/waterwise/missing.spec").unwrap_err();
    assert!(matches!(err, ScenarioError::Io { .. }), "got {err:?}");
    assert!(err.line().is_none());
}

#[test]
fn located_errors_render_as_file_line_message() {
    let err = with("[objective]\nlambda_co2 = 2\n").unwrap_err();
    let located = err.located("scenarios/broken.spec");
    assert!(
        located.starts_with("scenarios/broken.spec:7: "),
        "located: {located}"
    );
}
