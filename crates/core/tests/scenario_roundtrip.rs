//! Roundtrip properties of the scenario spec format.
//!
//! 1. Serialize → parse is the identity: for any scenario assembled from a
//!    spec, `to_spec()` followed by `parse_spec` yields an identical
//!    `Scenario` (and therefore an identical `CampaignConfig`).
//! 2. Parsing is insensitive to presentation: comments, blank lines, key
//!    order, and equivalent numeric spellings never change the parsed
//!    configuration.
//! 3. Two *textually distinct* specs that parse equal produce byte-identical
//!    schedules — the property that makes a spec file, not its formatting,
//!    the unit of reproducibility.
//!
//! `CampaignConfig` carries no `PartialEq` (it holds a solution-cache
//! handle), so configs are compared via their exhaustive `Debug` rendering.

use proptest::prelude::*;
use waterwise_core::{parse_spec, Campaign, SchedulerKind};

/// A spec assembled from sweep-style knobs, in canonical key order.
#[allow(clippy::too_many_arguments)]
fn spec_text(
    seed: u64,
    days: f64,
    tolerance: f64,
    lambda: f64,
    servers: usize,
    workers: usize,
    horizon: Option<usize>,
    warm: bool,
) -> String {
    let engine = if workers == 0 {
        "sync".to_string()
    } else {
        format!("pipelined:{workers}")
    };
    let horizon = horizon.map_or("capacity".to_string(), |h| h.to_string());
    format!(
        "[scenario]\nname = prop\nseed = {seed}\n\
         [trace]\nkind = borg\ndays = {days:?}\n\
         [simulation]\nservers_per_region = {servers}\ndelay_tolerance = {tolerance:?}\nengine = {engine}\n\
         [objective]\nlambda_co2 = {lambda:?}\n\
         [waterwise]\nwarm_start = {warm}\nhorizon = {horizon}\n"
    )
}

fn debug_of(spec: &str) -> String {
    format!("{:?}", parse_spec(spec).expect("spec must parse"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spec → `to_spec()` → parse yields an identical scenario.
    #[test]
    fn serialize_then_parse_is_identity(
        seed in 0u64..10_000,
        days in 0.01f64..2.0,
        tolerance in 0.0f64..4.0,
        lambda in 0.0f64..1.0,
        servers in 1usize..500,
        workers in 0usize..5,
        horizon_raw in 0usize..40,
        warm_raw in 0usize..2,
    ) {
        let horizon = if horizon_raw == 0 { None } else { Some(horizon_raw) };
        let text = spec_text(seed, days, tolerance, lambda, servers, workers, horizon, warm_raw == 1);
        let first = parse_spec(&text).expect("generated spec must parse");
        let reparsed = parse_spec(&first.to_spec()).expect("canonical form must parse");
        prop_assert_eq!(format!("{first:?}"), format!("{reparsed:?}"));
        // And the canonical form is a fixed point: rendering again is
        // byte-identical.
        prop_assert_eq!(first.to_spec(), reparsed.to_spec());
    }

    /// Comments, blank lines, indentation, and key order are presentation,
    /// not meaning.
    #[test]
    fn presentation_never_changes_the_parse(
        seed in 0u64..10_000,
        days in 0.01f64..2.0,
        tolerance in 0.0f64..4.0,
    ) {
        let plain = format!(
            "[scenario]\nname = prop\nseed = {seed}\n[trace]\ndays = {days:?}\n\
             [simulation]\ndelay_tolerance = {tolerance:?}\n"
        );
        let noisy = format!(
            "# header comment\n\n[scenario]\n  seed = {seed}   # trailing comment\n\
             name = prop\n\n[simulation]\ndelay_tolerance = {tolerance:?}\n\
             [trace]\n   days = {days:?}\n# footer\n"
        );
        prop_assert_eq!(debug_of(&plain), debug_of(&noisy));
    }
}

/// Two textually distinct specs that parse equal produce byte-identical
/// schedules: same campaign outcomes, byte for byte.
#[test]
fn textually_distinct_equal_specs_produce_byte_identical_schedules() {
    // Same scenario, spelled differently: reordered sections and keys,
    // comments, scientific notation, and an explicit default
    // (`engine = sync`) on one side only.
    let first = "[scenario]\nname = twin\nseed = 42\n\
                 [trace]\nkind = borg\ndays = 0.02\n\
                 [simulation]\nservers_per_region = 280\ndelay_tolerance = 0.5\n";
    let second = "# the same campaign, spelled differently\n\
                  [trace]\ndays = 2e-2\nkind = borg\n\
                  [simulation]\nengine = sync\ndelay_tolerance = 5e-1\n\
                  servers_per_region = 280\n\
                  [scenario]\nseed = 42\nname = twin\n";
    assert_ne!(first, second, "the specs must be textually distinct");
    assert_eq!(debug_of(first), debug_of(second), "but parse identically");

    let run = |spec: &str| {
        Campaign::new(parse_spec(spec).expect("spec must parse").config)
            .run(SchedulerKind::WaterWise)
            .expect("campaign must run")
    };
    let (a, b) = (run(first), run(second));
    assert_eq!(
        a.report.outcomes, b.report.outcomes,
        "equal-parsing specs must schedule byte-identically"
    );
    assert_eq!(
        waterwise_cluster::schedule_digest(&a.report.outcomes),
        waterwise_cluster::schedule_digest(&b.report.outcomes)
    );
}
