//! Campaign-level cache persistence: durable warm state loaded through
//! [`Campaign::try_new`] must be indistinguishable from warm state built
//! in memory.
//!
//! The headline property: a campaign whose solution cache was warm-loaded
//! from a snapshot file produces the *byte-identical* schedule of a
//! campaign whose cache was warmed by running the same workload in the
//! same process — across both engine modes. Everything else here is the
//! negative space: missing snapshots are cold starts, corrupt or
//! mismatched snapshots are typed errors, and the autosave drop-guard
//! actually writes the file.

use std::path::PathBuf;
use waterwise_core::{
    parse_spec, CachePersistError, Campaign, CampaignConfig, EngineMode, SchedulerKind,
    SolutionCacheMode, WaterWiseError,
};

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ww-core-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn base_config() -> CampaignConfig {
    CampaignConfig::small_demo(42).with_solution_cache(SolutionCacheMode::PerCampaign)
}

/// Warm-loading the cache from disk reproduces the in-memory-warmed
/// schedule byte for byte, under both the sync and the pipelined engine.
#[test]
fn warmed_from_disk_matches_in_memory_warmed_schedules() {
    for (label, engine) in [
        ("sync", EngineMode::Sync),
        ("pipelined", EngineMode::Pipelined { workers: 2 }),
    ] {
        let dir = scratch(&format!("warm-{label}"));
        let path = dir.join("cache.snapshot");
        let config = base_config()
            .with_engine_mode(engine)
            .with_cache_path(&path);

        // Campaign A: cold start (no snapshot yet), warm the cache by
        // running once, then run again warmed and persist.
        let warmer = Campaign::try_new(config.clone()).expect("cold start");
        assert!(
            warmer.solution_cache().expect("cache resolved").is_empty(),
            "a missing snapshot must be a cold start"
        );
        warmer.run(SchedulerKind::WaterWise).expect("warming run");
        let in_memory = warmer.run(SchedulerKind::WaterWise).expect("warmed run");
        assert!(warmer.save_cache().expect("save"), "snapshot written");

        // Campaign B: a fresh campaign warm-loads the snapshot and must
        // schedule exactly like the in-memory-warmed run.
        let resumed = Campaign::try_new(config.clone()).expect("warm load");
        let cache = resumed.solution_cache().expect("cache resolved");
        assert!(!cache.is_empty(), "snapshot must arrive warm");
        let from_disk = resumed.run(SchedulerKind::WaterWise).expect("resumed run");
        assert_eq!(
            in_memory.report.outcomes, from_disk.report.outcomes,
            "{label}: disk-warmed schedule diverged from memory-warmed"
        );
        assert_eq!(in_memory.summary.total_jobs, from_disk.summary.total_jobs);
        assert!(
            cache.stats().exact_hits > 0,
            "{label}: the resumed run never hit the loaded entries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Setting a cache path implies caching even under `SolutionCacheMode::Off`.
#[test]
fn cache_path_implies_caching_under_mode_off() {
    let dir = scratch("implied");
    let path = dir.join("cache.snapshot");
    let config = CampaignConfig::small_demo(7)
        .with_solution_cache(SolutionCacheMode::Off)
        .with_cache_path(&path);
    let campaign = Campaign::try_new(config).expect("cold start");
    assert!(campaign.solution_cache().is_some());
    campaign.run(SchedulerKind::WaterWise).expect("run");
    assert!(campaign.save_cache().expect("save"));
    assert!(path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a cache path, `save_cache` is a no-op reported as `Ok(false)`
/// and `try_new` behaves exactly like `new`.
#[test]
fn no_cache_path_means_no_persistence() {
    let campaign = Campaign::try_new(base_config()).expect("no path");
    assert!(!campaign.save_cache().expect("save is a no-op"));
    assert!(campaign.autosave_guard().is_none());

    let off = Campaign::try_new(CampaignConfig::small_demo(7)).expect("off");
    assert!(
        off.solution_cache().is_none(),
        "Off without a path stays off"
    );
}

/// A corrupt snapshot is a typed `WaterWiseError::CachePersist` whose
/// source names the offending file — never a panic, never a silent cold
/// start.
#[test]
fn corrupt_snapshot_is_a_typed_error() {
    let dir = scratch("corrupt");
    let path = dir.join("cache.snapshot");
    std::fs::write(&path, b"definitely not a waterwise cache snapshot\n").expect("write");
    let err = Campaign::try_new(base_config().with_cache_path(&path))
        .err()
        .expect("corrupt snapshot must fail");
    match &err {
        WaterWiseError::CachePersist(CachePersistError::BadHeader { path: reported, .. }) => {
            assert_eq!(reported, &path);
        }
        other => panic!("expected CachePersist(BadHeader), got {other:?}"),
    }
    assert!(err.to_string().starts_with("cache persistence error"));
    assert!(std::error::Error::source(&err).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot saved under different solver settings refuses to load:
/// warm-start hints from a differently-configured solver would silently
/// change solve trajectories.
#[test]
fn solver_config_mismatch_is_a_typed_error() {
    let dir = scratch("mismatch");
    let path = dir.join("cache.snapshot");
    let config = base_config().with_cache_path(&path);
    let campaign = Campaign::try_new(config.clone()).expect("cold start");
    campaign.run(SchedulerKind::WaterWise).expect("run");
    assert!(campaign.save_cache().expect("save"));

    let mut other = config;
    other.waterwise.branch_bound.use_dual_restart = !other.waterwise.branch_bound.use_dual_restart;
    match Campaign::try_new(other).err() {
        Some(WaterWiseError::CachePersist(CachePersistError::ConfigMismatch {
            path: reported,
            ..
        })) => assert_eq!(reported, path),
        other => panic!("expected CachePersist(ConfigMismatch), got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shared handle is authoritative: `try_new` keeps the caller's cache
/// and leaves the snapshot unread, so cross-campaign warm state can never
/// become order-dependent on disk contents.
#[test]
fn shared_handles_are_not_overwritten_by_disk_state() {
    let dir = scratch("shared");
    let path = dir.join("cache.snapshot");
    // Persist a warm snapshot first.
    let warmer = Campaign::try_new(base_config().with_cache_path(&path)).expect("cold");
    warmer.run(SchedulerKind::WaterWise).expect("run");
    assert!(warmer.save_cache().expect("save"));

    let shared = waterwise_core::SolutionCache::shared();
    let campaign = Campaign::try_new(
        CampaignConfig::small_demo(42)
            .with_solution_cache(SolutionCacheMode::Shared(shared.clone()))
            .with_cache_path(&path),
    )
    .expect("shared mode ignores the snapshot");
    let cache = campaign.solution_cache().expect("handle kept");
    assert!(
        cache.is_empty(),
        "the caller's empty shared handle must stay authoritative"
    );
    // Saving still works and targets the configured path.
    campaign.run(SchedulerKind::WaterWise).expect("run");
    assert!(campaign.save_cache().expect("save"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The autosave drop-guard persists the cache when it goes out of scope,
/// and the snapshot warm-loads in a later campaign.
#[test]
fn autosave_guard_persists_on_drop() {
    let dir = scratch("autosave");
    let path = dir.join("cache.snapshot");
    let config = base_config()
        .with_cache_path(&path)
        .with_cache_autosave(true);
    {
        let campaign = Campaign::try_new(config.clone()).expect("cold start");
        let guard = campaign.autosave_guard().expect("autosave armed");
        campaign.run(SchedulerKind::WaterWise).expect("run");
        drop(guard);
    }
    assert!(path.exists(), "drop must have written the snapshot");
    let resumed = Campaign::try_new(config).expect("warm load");
    assert!(!resumed.solution_cache().expect("cache").is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scenario-spec persistence keys parse, render canonically, and
/// roundtrip; `none` is the explicit no-persistence sentinel.
#[test]
fn spec_persistence_keys_roundtrip() {
    let text = "[scenario]\nname = persist\nseed = 1\n\
                [trace]\nkind = borg\ndays = 0.02\n\
                [campaign]\ncache_path = /tmp/ww-spec.snapshot\ncache_autosave = true\n";
    let scenario = parse_spec(text).expect("spec parses");
    assert_eq!(
        scenario.config.cache_path.as_deref(),
        Some(std::path::Path::new("/tmp/ww-spec.snapshot"))
    );
    assert!(scenario.config.cache_autosave);
    let canonical = scenario.to_spec();
    assert!(canonical.contains("cache_path = /tmp/ww-spec.snapshot"));
    assert!(canonical.contains("cache_autosave = true"));
    let reparsed = parse_spec(&canonical).expect("canonical form parses");
    assert_eq!(
        canonical,
        reparsed.to_spec(),
        "canonical form is a fixed point"
    );

    let none = parse_spec(
        "[scenario]\nname = cold\nseed = 1\n[trace]\nkind = borg\ndays = 0.02\n\
         [campaign]\ncache_path = none\n",
    )
    .expect("none sentinel parses");
    assert_eq!(none.config.cache_path, None);
    assert!(!none.config.cache_autosave);
    assert!(none.to_spec().contains("cache_path = none"));
}
