//! The campaign-level error type.
//!
//! [`WaterWiseError`] is the single error surface of `waterwise-core`: it
//! wraps the typed configuration and simulation errors of
//! `waterwise-cluster` and the solver errors of `waterwise-milp`, so callers
//! of [`crate::Campaign`] can match failures structurally instead of parsing
//! strings.

use std::fmt;
use waterwise_cluster::{ConfigError, SimulationError};
use waterwise_milp::{CachePersistError, MilpError};

/// Any failure while preparing or running a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum WaterWiseError {
    /// The simulation configuration failed validation.
    Config(ConfigError),
    /// The discrete-event engine rejected the run (for example a non-finite
    /// event timestamp produced by the trace or transfer model).
    Simulation(SimulationError),
    /// The MILP solver failed outside the scheduler's soft-constraint
    /// fallback path (the in-round scheduler degrades to a heuristic on
    /// solver failure; this variant surfaces solver errors from direct model
    /// construction, e.g. through `waterwise-milp` re-exports).
    Solver(MilpError),
    /// A declarative scenario spec failed to parse or validate.
    Scenario(crate::scenario::ScenarioError),
    /// Loading or saving the on-disk solution-cache snapshot failed
    /// (I/O, corruption, version skew, or a solver-config mismatch).
    CachePersist(CachePersistError),
}

impl fmt::Display for WaterWiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaterWiseError::Config(e) => write!(f, "campaign configuration error: {e}"),
            WaterWiseError::Simulation(e) => write!(f, "simulation error: {e}"),
            WaterWiseError::Solver(e) => write!(f, "solver error: {e}"),
            WaterWiseError::Scenario(e) => write!(f, "scenario spec error: {e}"),
            WaterWiseError::CachePersist(e) => write!(f, "cache persistence error: {e}"),
        }
    }
}

impl std::error::Error for WaterWiseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaterWiseError::Config(e) => Some(e),
            WaterWiseError::Simulation(e) => Some(e),
            WaterWiseError::Solver(e) => Some(e),
            WaterWiseError::Scenario(e) => Some(e),
            WaterWiseError::CachePersist(e) => Some(e),
        }
    }
}

impl From<ConfigError> for WaterWiseError {
    fn from(e: ConfigError) -> Self {
        WaterWiseError::Config(e)
    }
}

impl From<SimulationError> for WaterWiseError {
    fn from(e: SimulationError) -> Self {
        // Flatten nested config errors so callers can always match
        // `WaterWiseError::Config` for validation failures, regardless of
        // which layer detected them.
        match e {
            SimulationError::Config(c) => WaterWiseError::Config(c),
            other => WaterWiseError::Simulation(other),
        }
    }
}

impl From<MilpError> for WaterWiseError {
    fn from(e: MilpError) -> Self {
        WaterWiseError::Solver(e)
    }
}

impl From<CachePersistError> for WaterWiseError {
    fn from(e: CachePersistError) -> Self {
        WaterWiseError::CachePersist(e)
    }
}

impl From<crate::scenario::ScenarioError> for WaterWiseError {
    fn from(e: crate::scenario::ScenarioError) -> Self {
        // A spec that parsed but failed cross-field validation carries a
        // `ConfigError`; flatten it for the same reason as `SimulationError`.
        match e {
            crate::scenario::ScenarioError::Config(c) => WaterWiseError::Config(c),
            other => WaterWiseError::Scenario(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn config_errors_are_flattened_across_the_crate_boundary() {
        let nested = SimulationError::Config(ConfigError::NoRegions);
        assert_eq!(
            WaterWiseError::from(nested),
            WaterWiseError::Config(ConfigError::NoRegions)
        );
        let engine = SimulationError::NonFiniteEventTime {
            time: f64::INFINITY,
            event: "scheduling round".into(),
        };
        assert!(matches!(
            WaterWiseError::from(engine),
            WaterWiseError::Simulation(_)
        ));
    }

    #[test]
    fn solver_errors_convert() {
        let e = WaterWiseError::from(MilpError::Infeasible);
        assert_eq!(e, WaterWiseError::Solver(MilpError::Infeasible));
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_prefixes_identify_the_layer() {
        assert!(WaterWiseError::Config(ConfigError::NoRegions)
            .to_string()
            .starts_with("campaign configuration error"));
        assert!(WaterWiseError::Solver(MilpError::Unbounded)
            .to_string()
            .starts_with("solver error"));
    }
}
