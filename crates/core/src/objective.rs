//! Shared candidate-evaluation machinery for all schedulers.
//!
//! Every carbon/water-aware policy needs the same primitive: "if job *m*
//! ran in region *n* starting around time *t*, what carbon and water
//! footprint would it incur?" — evaluated with the job's *estimated*
//! execution time and energy (the scheduler never sees the actual values)
//! and the region's conditions at *t*. This module provides that primitive
//! plus the per-job normalization of Eq. 7.

use serde::{Deserialize, Serialize};
use waterwise_cluster::PendingJob;
use waterwise_sustain::{FootprintEstimator, JobResourceUsage, Seconds};
use waterwise_telemetry::{ConditionsProvider, Region};

/// The configurable objective weights of Eq. 7 / Eq. 8.
///
/// ```
/// use waterwise_core::ObjectiveWeights;
///
/// let weights = ObjectiveWeights::paper_default().with_carbon_weight(0.8);
/// assert_eq!(weights.lambda_co2, 0.8);
/// assert!((weights.lambda_h2o - 0.2).abs() < 1e-12); // always 1 − λ_CO2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight on the (normalized) carbon footprint, `λ_CO2`.
    pub lambda_co2: f64,
    /// Weight on the (normalized) water footprint, `λ_H2O`.
    pub lambda_h2o: f64,
    /// Weight on the history-learner reference term, `λ_ref`.
    pub lambda_ref: f64,
}

impl ObjectiveWeights {
    /// The paper's default: equal carbon/water weights (0.5 each) and a 0.1
    /// history weight.
    pub fn paper_default() -> Self {
        Self {
            lambda_co2: 0.5,
            lambda_h2o: 0.5,
            lambda_ref: 0.1,
        }
    }

    /// Set `λ_CO2 = w` and `λ_H2O = 1 − w` (the Fig. 8 sweep).
    pub fn with_carbon_weight(mut self, w: f64) -> Self {
        let w = w.clamp(0.0, 1.0);
        self.lambda_co2 = w;
        self.lambda_h2o = 1.0 - w;
        self
    }

    /// Validate that the carbon and water weights sum to one.
    pub fn is_normalized(&self) -> bool {
        (self.lambda_co2 + self.lambda_h2o - 1.0).abs() < 1e-9
            && self.lambda_co2 >= 0.0
            && self.lambda_h2o >= 0.0
            && self.lambda_ref >= 0.0
    }
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The estimated carbon and water footprint of one `(job, region)` candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateFootprint {
    /// Candidate region.
    pub region: Region,
    /// Estimated total carbon (gCO2) of executing the job there now.
    pub carbon: f64,
    /// Estimated total effective water (L) of executing the job there now.
    pub water: f64,
}

/// Evaluate the candidate footprints of a pending job across all candidate
/// regions at time `at`, using the scheduler-visible estimates.
pub fn candidate_footprints<P: ConditionsProvider + ?Sized>(
    job: &PendingJob,
    regions: &[Region],
    provider: &P,
    estimator: &FootprintEstimator,
    at: Seconds,
) -> Vec<CandidateFootprint> {
    let usage = JobResourceUsage::new(job.spec.estimated_energy, job.spec.estimated_execution_time);
    regions
        .iter()
        .map(|&region| {
            let conditions = provider.conditions(region, at);
            let breakdown = estimator.estimate(usage, conditions);
            CandidateFootprint {
                region,
                carbon: breakdown.total_carbon().value(),
                water: breakdown.total_water().value(),
            }
        })
        .collect()
}

/// Per-job normalization denominators of Eq. 7: the footprint in the *worst*
/// region, "to ensure that one objective does not skew the optimization".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Maximum carbon over all candidate regions (gCO2).
    pub max_carbon: f64,
    /// Maximum water over all candidate regions (L).
    pub max_water: f64,
}

impl Normalizer {
    /// Compute the normalizer from a candidate set.
    pub fn from_candidates(candidates: &[CandidateFootprint]) -> Self {
        let max_carbon = candidates
            .iter()
            .map(|c| c.carbon)
            .fold(f64::MIN_POSITIVE, f64::max);
        let max_water = candidates
            .iter()
            .map(|c| c.water)
            .fold(f64::MIN_POSITIVE, f64::max);
        Self {
            max_carbon,
            max_water,
        }
    }

    /// The normalized, weighted objective contribution of one candidate
    /// (the bracketed term of Eq. 8 without the history part).
    pub fn objective_term(
        &self,
        candidate: &CandidateFootprint,
        weights: &ObjectiveWeights,
    ) -> f64 {
        weights.lambda_co2 * candidate.carbon / self.max_carbon
            + weights.lambda_h2o * candidate.water / self.max_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_cluster::PendingJob;
    use waterwise_sustain::KilowattHours;
    use waterwise_telemetry::{SyntheticTelemetry, ALL_REGIONS};
    use waterwise_traces::{Benchmark, JobId, JobSpec};

    fn pending_job() -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id: JobId(1),
                benchmark: Benchmark::Canneal,
                submit_time: Seconds::new(0.0),
                home_region: Region::Oregon,
                actual_execution_time: Seconds::new(600.0),
                actual_energy: KilowattHours::new(0.05),
                estimated_execution_time: Seconds::new(620.0),
                estimated_energy: KilowattHours::new(0.052),
                package_bytes: 200 << 20,
            },
            received_at: Seconds::new(0.0),
            deferrals: 0,
        }
    }

    #[test]
    fn paper_default_weights_are_normalized() {
        let w = ObjectiveWeights::paper_default();
        assert!(w.is_normalized());
        assert_eq!(w.lambda_co2, 0.5);
        assert_eq!(w.lambda_ref, 0.1);
    }

    #[test]
    fn carbon_weight_sweep_keeps_sum_one() {
        for v in [0.3, 0.5, 0.7] {
            let w = ObjectiveWeights::paper_default().with_carbon_weight(v);
            assert!(w.is_normalized());
            assert!((w.lambda_co2 - v).abs() < 1e-12);
        }
        // Out-of-range values are clamped.
        assert!(ObjectiveWeights::paper_default()
            .with_carbon_weight(1.7)
            .is_normalized());
    }

    #[test]
    fn candidates_cover_all_regions_and_are_positive() {
        let provider = SyntheticTelemetry::with_seed(3);
        let estimator = FootprintEstimator::paper_default();
        let candidates = candidate_footprints(
            &pending_job(),
            &ALL_REGIONS,
            &provider,
            &estimator,
            Seconds::from_hours(4.0),
        );
        assert_eq!(candidates.len(), 5);
        for c in &candidates {
            assert!(c.carbon > 0.0);
            assert!(c.water > 0.0);
        }
    }

    #[test]
    fn mumbai_is_carbon_worst_zurich_water_heavy() {
        let provider = SyntheticTelemetry::with_seed(3);
        let estimator = FootprintEstimator::paper_default();
        let candidates = candidate_footprints(
            &pending_job(),
            &ALL_REGIONS,
            &provider,
            &estimator,
            Seconds::from_hours(12.0),
        );
        let by_region = |r: Region| candidates.iter().find(|c| c.region == r).unwrap();
        assert!(by_region(Region::Mumbai).carbon > by_region(Region::Zurich).carbon);
        // Zurich's offsite water (hydro EWIF) keeps its water footprint from
        // being the uniformly-best choice: it must exceed at least one other
        // region's water footprint. (The exact ordering varies with weather.)
        let zurich_water = by_region(Region::Zurich).water;
        assert!(candidates.iter().any(|c| c.water < zurich_water));
    }

    #[test]
    fn normalizer_bounds_objective_in_unit_range() {
        let provider = SyntheticTelemetry::with_seed(3);
        let estimator = FootprintEstimator::paper_default();
        let candidates = candidate_footprints(
            &pending_job(),
            &ALL_REGIONS,
            &provider,
            &estimator,
            Seconds::from_hours(12.0),
        );
        let norm = Normalizer::from_candidates(&candidates);
        let weights = ObjectiveWeights::paper_default();
        for c in &candidates {
            let term = norm.objective_term(c, &weights);
            assert!(term > 0.0 && term <= 1.0 + 1e-9, "term {term}");
        }
    }

    #[test]
    fn normalizer_handles_empty_candidates() {
        let norm = Normalizer::from_candidates(&[]);
        assert!(norm.max_carbon > 0.0);
        assert!(norm.max_water > 0.0);
    }
}
