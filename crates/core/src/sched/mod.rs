//! Scheduler implementations: WaterWise and every baseline the paper
//! compares against.

mod baseline;
mod ecovisor;
mod greedy_opt;
mod least_load;
mod round_robin;
mod waterwise;

#[cfg(test)]
pub(crate) mod test_support;

pub use baseline::BaselineScheduler;
pub use ecovisor::{max_wait_budget, EcovisorConfig, EcovisorScheduler};
pub use greedy_opt::{GreedyObjective, GreedyOptScheduler};
pub use least_load::LeastLoadScheduler;
pub use round_robin::RoundRobinScheduler;
pub use waterwise::{paper_default_scheduler, SolveStats, WaterWiseConfig, WaterWiseScheduler};
