//! Least-Load load balancing: each job goes to the region with the lowest
//! committed load, oblivious to carbon and water.

use waterwise_cluster::{Assignment, Scheduler, SchedulingContext, SchedulingDecision};

/// The Least-Load comparison scheme (Fig. 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadScheduler;

impl LeastLoadScheduler {
    /// Create a least-load scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for LeastLoadScheduler {
    fn name(&self) -> &str {
        "least-load"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        if ctx.regions.is_empty() {
            return SchedulingDecision::defer_all();
        }
        // Track load incrementally as we assign within the round so a large
        // batch still spreads out.
        let mut committed: Vec<(usize, f64, usize)> = ctx
            .regions
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    i,
                    (v.busy_servers + v.queued_jobs + v.inbound_jobs) as f64,
                    v.total_servers.max(1),
                )
            })
            .collect();
        let mut assignments = Vec::with_capacity(ctx.pending.len());
        for p in ctx.pending {
            // A region-less context has nowhere to place anything: return
            // the empty decision instead of panicking (DET003) — the engine
            // treats unplaced jobs as deferred, exactly like an infeasible
            // round.
            let Some(&(best_idx, _, _)) = committed.iter().min_by(|a, b| {
                (a.1 / a.2 as f64)
                    .partial_cmp(&(b.1 / b.2 as f64))
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) else {
                break;
            };
            assignments.push(Assignment {
                job: p.spec.id,
                region: ctx.regions[best_idx].region,
            });
            committed[best_idx].1 += 1.0;
        }
        SchedulingDecision { assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use waterwise_sustain::Seconds;
    use waterwise_telemetry::Region;

    #[test]
    fn prefers_the_emptiest_region_first() {
        let ContextFixture {
            pending,
            mut regions,
            transfer,
        } = context_fixture(1, 7);
        // Load up every region except Madrid.
        for v in &mut regions {
            if v.region != Region::Madrid {
                v.busy_servers = v.total_servers / 2;
            }
        }
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = LeastLoadScheduler::new().schedule(&ctx);
        assert_eq!(decision.assignments[0].region, Region::Madrid);
    }

    #[test]
    fn spreads_a_large_batch_instead_of_dogpiling() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(25, 9);
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = LeastLoadScheduler::new().schedule(&ctx);
        let mut counts = [0usize; 5];
        for a in &decision.assignments {
            counts[a.region.index()] += 1;
        }
        // With equal capacities, 25 jobs spread out exactly 5 per region.
        assert!(counts.iter().all(|&c| c == 5), "{counts:?}");
    }
}
