//! The WaterWise scheduler: MILP-based carbon/water co-optimization with
//! soft constraints and slack management (Sec. 4 of the paper).
//!
//! Each scheduling round the controller:
//!
//! 1. Collects all pending jobs (newly arrived plus previously deferred —
//!    the `J ∪ J_delay` of Algorithm 1).
//! 2. If the batch exceeds the total remaining capacity, the **slack
//!    manager** keeps only the most urgent `Σ cap(n)` jobs, ranked by the
//!    urgency score of Eq. 14 (ascending — smaller means closer to a
//!    violation).
//! 3. Builds the MILP of Eq. 8 with the assignment (Eq. 9), capacity
//!    (Eq. 10), and delay-tolerance (Eq. 11) constraints and solves it with
//!    the pure-Rust solver in `waterwise-milp`.
//! 4. If the hard-constrained model is infeasible, re-solves with **soft
//!    constraints** (Eq. 12–13): per-job penalty variables relax the delay
//!    constraint at a cost `σ` in the objective.

use crate::experiment::{run_indexed, Parallelism};
use crate::objective::{candidate_footprints, Normalizer, ObjectiveWeights};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use waterwise_cluster::{
    Assignment, PendingJob, Scheduler, SchedulingContext, SchedulingDecision, SolverActivity,
};
use waterwise_milp::{
    BranchBoundConfig, CacheStats, LinExpr, Model, Sense, SimplexConfig, SolutionCacheHandle,
    SolverWorkspace, Var, WarmStats,
};
use waterwise_sustain::FootprintEstimator;
use waterwise_telemetry::{ConditionsProvider, Region};
use waterwise_traces::JobId;

/// Configuration of the WaterWise decision controller.
///
/// ```
/// use waterwise_core::WaterWiseConfig;
///
/// let config = WaterWiseConfig::default()
///     .with_carbon_weight(0.7) // λ_H2O becomes 0.3
///     .with_horizon(Some(25)) // cap each MILP at the 25 most urgent jobs
///     .with_warm_start(true);
/// assert_eq!(config.weights.lambda_co2, 0.7);
/// assert_eq!(config.horizon, Some(25));
/// // A zero-job window would stall pending jobs forever; it clamps to 1.
/// assert_eq!(WaterWiseConfig::default().with_horizon(Some(0)).horizon, Some(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaterWiseConfig {
    /// Objective weights (`λ_CO2`, `λ_H2O`, `λ_ref`).
    pub weights: ObjectiveWeights,
    /// Window (hours) of the history learner feeding `CO2_ref` / `H2O_ref`.
    pub history_window_hours: usize,
    /// Penalty weight `σ` applied to delay-tolerance relaxation variables in
    /// the soft-constrained model (Eq. 12).
    pub soft_penalty: f64,
    /// Simplex configuration forwarded to the solver.
    pub simplex: SimplexConfig,
    /// Branch-and-bound configuration forwarded to the solver.
    pub branch_bound: BranchBoundConfig,
    /// Warm-start each slot's MILP from the carried-forward previous
    /// assignment plus a greedy completion (rolling-horizon mode). The
    /// schedule produced is identical to cold solving; only the solver work
    /// differs (see `SolveStats::warm`).
    pub warm_start: bool,
    /// Optional sliding-window cap on how many jobs enter one MILP. `None`
    /// bounds the window by the remaining cluster capacity only (the paper's
    /// behavior); `Some(h)` additionally caps it at the `h` most urgent
    /// jobs, deferring the rest to later slots.
    pub horizon: Option<usize>,
    /// Worker-pool sharding of the per-slot numerics preparation (candidate
    /// footprints, normalizers, and objective coefficients, Eq. 7/8). Each
    /// job's numerics are a pure function of the job and the slot context,
    /// so shards merge in job order and the produced schedule is
    /// byte-identical across settings; only wall-clock
    /// [`SolveStats::prepare_seconds`] changes. Defaults to
    /// [`Parallelism::Serial`] so campaigns that already parallelize at the
    /// campaign level do not nest worker pools.
    pub parallelism: Parallelism,
}

impl Default for WaterWiseConfig {
    fn default() -> Self {
        Self {
            weights: ObjectiveWeights::paper_default(),
            history_window_hours: 10,
            soft_penalty: 10.0,
            simplex: SimplexConfig::default(),
            branch_bound: BranchBoundConfig::default(),
            warm_start: true,
            horizon: None,
            parallelism: Parallelism::Serial,
        }
    }
}

impl WaterWiseConfig {
    /// Override the carbon weight (`λ_H2O` becomes `1 − λ_CO2`).
    pub fn with_carbon_weight(mut self, lambda_co2: f64) -> Self {
        self.weights = self.weights.with_carbon_weight(lambda_co2);
        self
    }

    /// Enable or disable warm-started solves.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Set the sliding-window job cap per solve.
    ///
    /// `Some(0)` is clamped to `Some(1)` at build time: a zero-job window
    /// would produce an empty solve batch every slot and stall pending jobs
    /// forever.
    pub fn with_horizon(mut self, horizon: Option<usize>) -> Self {
        self.horizon = horizon.map(|h| h.max(1));
        self
    }

    /// Shard the per-slot numerics preparation across a worker pool.
    ///
    /// ```
    /// use waterwise_core::{Parallelism, WaterWiseConfig};
    ///
    /// let sharded = WaterWiseConfig::default().with_parallelism(Parallelism::Auto);
    /// assert_eq!(sharded.parallelism, Parallelism::Auto);
    /// // Serial is the default: nested pools are opt-in.
    /// assert_eq!(WaterWiseConfig::default().parallelism, Parallelism::Serial);
    /// ```
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Statistics the controller keeps about its own solves (exposed for the
/// overhead experiment, Fig. 13).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Rounds in which the MILP was solved.
    pub rounds: usize,
    /// Rounds that required the soft-constrained fallback.
    pub soft_fallbacks: usize,
    /// Rounds in which the slack manager had to drop jobs.
    pub slack_truncations: usize,
    /// Total simplex iterations across all solves.
    pub simplex_iterations: usize,
    /// Total branch-and-bound nodes across all solves.
    pub nodes: usize,
    /// Cold-vs-warm solver split from the shared [`SolverWorkspace`].
    pub warm: WarmStats,
    /// Solution-cache traffic of this scheduler's workspace (all zero when
    /// no cache is attached).
    pub cache: CacheStats,
    /// Wall-clock seconds spent preparing per-job numerics (candidate
    /// footprints, normalizers, objective coefficients) ahead of the solves.
    /// A timing measurement, not deterministic work: it varies run to run
    /// and shrinks when [`WaterWiseConfig::parallelism`] shards the
    /// preparation.
    pub prepare_seconds: f64,
    /// Wall-clock seconds spent building and solving the MILPs, including
    /// the soft-constrained fallback when it engages. Timing, like
    /// [`SolveStats::prepare_seconds`].
    pub solve_seconds: f64,
}

/// Everything the MILP needs to know about one job in one slot: objective
/// coefficients (Eq. 7/8 plus the history-learner reference term), the
/// latency/execution ratios of the delay constraint (Eq. 11), and the
/// remaining delay tolerance after time already spent waiting.
///
/// A pure function of `(job, slot context)` — independent across jobs —
/// which is what makes the preparation shardable across workers with a
/// deterministic job-ordered merge (see [`WaterWiseConfig::parallelism`]).
/// Computing it once per slot also means the soft-constraint fallback
/// reuses the numbers instead of re-deriving them.
#[derive(Debug, Clone)]
struct JobNumerics {
    /// Objective coefficient per region (the cost of `x[m][n] = 1`).
    coeffs: Vec<f64>,
    /// `transfer_latency / execution_time` per region (Eq. 11 lhs).
    latency_ratio: Vec<f64>,
    /// `TOL% − waited/exec`, clamped at zero (Eq. 11 rhs).
    remaining_tolerance: f64,
}

/// The WaterWise scheduler.
///
/// ```
/// use std::sync::Arc;
/// use waterwise_core::WaterWiseScheduler;
/// use waterwise_telemetry::SyntheticTelemetry;
///
/// let scheduler = WaterWiseScheduler::with_defaults(Arc::new(
///     SyntheticTelemetry::with_seed(42),
/// ));
/// assert_eq!(scheduler.stats().rounds, 0);
/// assert!(scheduler.config().warm_start);
/// ```
pub struct WaterWiseScheduler {
    provider: Arc<dyn ConditionsProvider>,
    estimator: FootprintEstimator,
    config: WaterWiseConfig,
    stats: SolveStats,
    /// Reusable solver allocations + warm-start accounting; persists across
    /// scheduling rounds because the engine reuses the scheduler instance.
    workspace: SolverWorkspace,
    /// Previous slot's chosen region per still-pending job, carried forward
    /// as the warm-start hint of the next solve. Keyed by a `BTreeMap` so
    /// any future iteration is in job-id order by construction (DET001);
    /// today only point lookups and retain touch it.
    carried: BTreeMap<JobId, Region>,
}

impl WaterWiseScheduler {
    /// Create a WaterWise scheduler.
    ///
    /// `provider` supplies *current* (not future) conditions; `estimator`
    /// must match the simulator's data-center parameters so the scheduler
    /// optimizes the same quantities the evaluation measures.
    pub fn new(
        provider: Arc<dyn ConditionsProvider>,
        estimator: FootprintEstimator,
        config: WaterWiseConfig,
    ) -> Self {
        Self {
            provider,
            estimator,
            config,
            stats: SolveStats::default(),
            workspace: SolverWorkspace::new(),
            carried: BTreeMap::new(),
        }
    }

    /// With the paper's default configuration.
    pub fn with_defaults(provider: Arc<dyn ConditionsProvider>) -> Self {
        Self::new(
            provider,
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default(),
        )
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Attach a (possibly shared) solution cache to this scheduler's solver
    /// workspace. Subsequent solves consult it before cold/warm solving; an
    /// exact fingerprint match skips the solve, a structural match only
    /// contributes a warm-start hint, so the produced schedule is identical
    /// with or without the cache.
    pub fn attach_cache(&mut self, cache: SolutionCacheHandle) {
        self.workspace.attach_cache(cache);
    }

    /// Builder form of [`WaterWiseScheduler::attach_cache`].
    pub fn with_cache(mut self, cache: SolutionCacheHandle) -> Self {
        self.attach_cache(cache);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &WaterWiseConfig {
        &self.config
    }

    /// Urgency score of Eq. 14 (smaller = more urgent):
    /// `TOL% · t_m − L_avg_m − (T_current − T_start_m)`.
    fn urgency(&self, job: &PendingJob, ctx: &SchedulingContext<'_>, regions: &[Region]) -> f64 {
        let tol_budget = ctx.delay_tolerance * job.spec.estimated_execution_time.value();
        let avg_transfer = ctx
            .transfer
            .average_transfer_time(job.spec.home_region, job.spec.package_bytes, regions)
            .value();
        let waited = job.waiting_time(ctx.now).value();
        tol_budget - avg_transfer - waited
    }

    /// The slack manager: keep the `limit` most urgent jobs.
    fn slack_select<'j>(
        &mut self,
        jobs: &[&'j PendingJob],
        ctx: &SchedulingContext<'_>,
        regions: &[Region],
        limit: usize,
    ) -> Vec<&'j PendingJob> {
        if jobs.len() <= limit {
            return jobs.to_vec();
        }
        self.stats.slack_truncations += 1;
        let mut ranked: Vec<(&PendingJob, f64)> = jobs
            .iter()
            .map(|j| (*j, self.urgency(j, ctx, regions)))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.into_iter().take(limit).map(|(j, _)| j).collect()
    }

    /// Compute [`JobNumerics`] for every selected job, sharded across the
    /// worker pool named by [`WaterWiseConfig::parallelism`]. Jobs are
    /// partitioned by index and merged back in job order, so the output —
    /// and hence the schedule built from it — is byte-identical to the
    /// serial computation.
    fn prepare_numerics(
        &self,
        jobs: &[&PendingJob],
        ctx: &SchedulingContext<'_>,
        regions: &[Region],
        history: &[(f64, f64)],
    ) -> Vec<JobNumerics> {
        let provider = self.provider.as_ref();
        let estimator = &self.estimator;
        let weights = &self.config.weights;
        let workers = self.config.parallelism.worker_count(jobs.len());
        run_indexed(jobs.len(), workers, |m| {
            let job = jobs[m];
            // Candidate footprints and the per-job normalizer (Eq. 7).
            let candidates = candidate_footprints(job, regions, provider, estimator, ctx.now);
            let normalizer = Normalizer::from_candidates(&candidates);
            let exec = job.spec.estimated_execution_time.value().max(1.0);
            let waited = job.waiting_time(ctx.now).value();
            let remaining_tolerance = (ctx.delay_tolerance - waited / exec).max(0.0);
            let mut coeffs = Vec::with_capacity(regions.len());
            let mut latency_ratio = Vec::with_capacity(regions.len());
            for (n, region) in regions.iter().enumerate() {
                let mut coefficient = normalizer.objective_term(&candidates[n], weights);
                // History-learner reference term (normalized trailing means).
                let (carbon_ref, water_ref) = history[n];
                coefficient += weights.lambda_ref
                    * (weights.lambda_co2 * carbon_ref + weights.lambda_h2o * water_ref);
                coeffs.push(coefficient);
                let latency = ctx
                    .transfer
                    .transfer_time(job.spec.home_region, *region, job.spec.package_bytes)
                    .value();
                latency_ratio.push(latency / exec);
            }
            JobNumerics {
                coeffs,
                latency_ratio,
                remaining_tolerance,
            }
        })
    }

    /// Build and solve the MILP for the selected jobs. `soften` enables the
    /// penalty relaxation of Eq. 12/13.
    fn solve_assignment(
        &mut self,
        jobs: &[&PendingJob],
        ctx: &SchedulingContext<'_>,
        regions: &[Region],
        numerics: &[JobNumerics],
        soften: bool,
    ) -> Option<Vec<Assignment>> {
        let n_regions = regions.len();
        let mut model = Model::new(if soften {
            "waterwise-soft"
        } else {
            "waterwise-hard"
        });

        // Decision variables x[m][n].
        let mut x: Vec<Vec<Var>> = Vec::with_capacity(jobs.len());
        for (m, job) in jobs.iter().enumerate() {
            let row: Vec<Var> = (0..n_regions)
                .map(|n| model.add_binary(format!("x_{}_{}", job.spec.id.0, n)))
                .collect();
            x.push(row);
            let _ = m;
        }
        // Penalty variables P[m] for the softened delay constraint.
        let penalties: Vec<Option<Var>> = jobs
            .iter()
            .map(|job| {
                if soften {
                    Some(model.add_non_negative(format!("p_{}", job.spec.id.0)))
                } else {
                    None
                }
            })
            .collect();

        // Objective (Eq. 8 / Eq. 12) from the precomputed per-job numerics
        // (shared with the warm-start hint and the soft fallback).
        let mut objective = LinExpr::zero();
        for (m, _) in jobs.iter().enumerate() {
            for n in 0..n_regions {
                objective.add_term(x[m][n], numerics[m].coeffs[n]);
            }
        }
        if soften {
            for p in penalties.iter().flatten() {
                objective.add_term(*p, self.config.soft_penalty);
            }
        }
        model.minimize(objective);

        // Eq. 9: each job is assigned to exactly one region.
        for (m, job) in jobs.iter().enumerate() {
            let expr = LinExpr::sum((0..n_regions).map(|n| LinExpr::from(x[m][n])));
            model.add_constraint(format!("assign_{}", job.spec.id.0), expr, Sense::Equal, 1.0);
        }
        // Eq. 10: regional capacity.
        for (n, view) in ctx.regions.iter().enumerate() {
            let expr = LinExpr::sum((0..jobs.len()).map(|m| LinExpr::from(x[m][n])));
            model.add_constraint(
                format!("cap_{}", view.region.name()),
                expr,
                Sense::LessEqual,
                view.remaining_capacity() as f64,
            );
        }
        // Eq. 11 / Eq. 13: delay tolerance on the transfer-latency ratio,
        // tightened by the time the job has already spent waiting.
        for (m, job) in jobs.iter().enumerate() {
            let mut expr = LinExpr::zero();
            for n in 0..n_regions {
                expr.add_term(x[m][n], numerics[m].latency_ratio[n]);
            }
            if let Some(p) = penalties[m] {
                expr.add_term(p, -1.0);
            }
            model.add_constraint(
                format!("delay_{}", job.spec.id.0),
                expr,
                Sense::LessEqual,
                numerics[m].remaining_tolerance,
            );
        }

        let hint = if self.config.warm_start {
            self.build_hint(jobs, ctx, &model, &x, &penalties, numerics, soften)
        } else {
            None
        };
        let solution = model
            .solve_warm(
                &self.config.simplex,
                &self.config.branch_bound,
                hint.as_deref(),
                &mut self.workspace,
            )
            .ok()?;
        self.stats.simplex_iterations += solution.simplex_iterations;
        self.stats.nodes += solution.nodes_explored;
        self.stats.warm = self.workspace.stats();
        self.stats.cache = self.workspace.cache_stats();
        if !solution.status.has_solution() {
            return None;
        }
        let mut assignments = Vec::with_capacity(jobs.len());
        for (m, job) in jobs.iter().enumerate() {
            let mut chosen: Option<Region> = None;
            for (n, region) in regions.iter().enumerate() {
                if solution.is_one(x[m][n]) {
                    chosen = Some(*region);
                    break;
                }
            }
            if let Some(region) = chosen {
                // Carried forward as the next slot's warm-start hint should
                // the job remain pending (e.g. the engine rejects the
                // placement); pruned at the end of `schedule` once the job
                // leaves the pending pool.
                self.carried.insert(job.spec.id, region);
                assignments.push(Assignment {
                    job: job.spec.id,
                    region,
                });
            }
        }
        Some(assignments)
    }

    /// Build the warm-start hint for the current model: the previous slot's
    /// region choice where one is carried and still feasible, completed
    /// greedily (cheapest feasible region per job under remaining capacity).
    /// Returns `None` when no complete feasible candidate exists — the solve
    /// then starts cold, exactly as without warm starting.
    #[allow(clippy::too_many_arguments)]
    fn build_hint(
        &self,
        jobs: &[&PendingJob],
        ctx: &SchedulingContext<'_>,
        model: &Model,
        x: &[Vec<Var>],
        penalties: &[Option<Var>],
        numerics: &[JobNumerics],
        soften: bool,
    ) -> Option<Vec<f64>> {
        let n_regions = x.first()?.len();
        let mut capacity_left: Vec<usize> =
            ctx.regions.iter().map(|v| v.remaining_capacity()).collect();
        let mut hint = vec![0.0; model.num_vars()];
        for (m, job) in jobs.iter().enumerate() {
            let numbers = &numerics[m];
            let feasible = |n: usize, capacity_left: &[usize]| {
                capacity_left[n] > 0
                    && (soften || numbers.latency_ratio[n] <= numbers.remaining_tolerance + 1e-12)
            };
            let carried = self
                .carried
                .get(&job.spec.id)
                .and_then(|region| ctx.regions.iter().position(|v| v.region == *region))
                .filter(|&n| feasible(n, &capacity_left));
            let chosen = carried.or_else(|| {
                (0..n_regions)
                    .filter(|&n| feasible(n, &capacity_left))
                    .min_by(|&a, &b| {
                        numbers.coeffs[a]
                            .partial_cmp(&numbers.coeffs[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    })
            })?;
            capacity_left[chosen] -= 1;
            hint[x[m][chosen].index()] = 1.0;
            if let Some(p) = penalties[m] {
                hint[p.index()] =
                    (numbers.latency_ratio[chosen] - numbers.remaining_tolerance).max(0.0);
            }
        }
        Some(hint)
    }

    /// Normalized trailing-window footprints per region, the `CO2_ref` /
    /// `H2O_ref` history terms of Eq. 8.
    fn history_terms(&self, ctx: &SchedulingContext<'_>, regions: &[Region]) -> Vec<(f64, f64)> {
        let pue = self.estimator.params.pue;
        let raw: Vec<(f64, f64)> = regions
            .iter()
            .map(|&r| {
                let carbon = self
                    .provider
                    .trailing_carbon(r, ctx.now, self.config.history_window_hours)
                    .value();
                let water = self.provider.trailing_water_intensity(
                    r,
                    ctx.now,
                    self.config.history_window_hours,
                    pue,
                );
                (carbon, water)
            })
            .collect();
        let max_carbon = raw
            .iter()
            .map(|(c, _)| *c)
            .fold(f64::MIN_POSITIVE, f64::max);
        let max_water = raw
            .iter()
            .map(|(_, w)| *w)
            .fold(f64::MIN_POSITIVE, f64::max);
        raw.iter()
            .map(|(c, w)| (c / max_carbon, w / max_water))
            .collect()
    }
}

impl Scheduler for WaterWiseScheduler {
    fn name(&self) -> &str {
        "waterwise"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        if ctx.pending.is_empty() || ctx.regions.is_empty() {
            return SchedulingDecision::defer_all();
        }
        let regions = ctx.region_list();
        let total_capacity = ctx.total_remaining_capacity();
        if total_capacity == 0 {
            // Nothing can start this round; everything stays pending.
            return SchedulingDecision::defer_all();
        }
        self.stats.rounds += 1;

        // Algorithm 1, lines 5–7: slack management when over capacity. The
        // rolling-horizon window additionally caps the batch at the most
        // urgent `horizon` jobs; the rest stay pending for later slots.
        let window = self
            .config
            .horizon
            .map_or(total_capacity, |h| h.max(1).min(total_capacity));
        let all_jobs: Vec<&PendingJob> = ctx.pending.iter().collect();
        let selected = self.slack_select(&all_jobs, ctx, &regions, window);

        // Per-job numerics (candidate footprints, normalizers, objective
        // coefficients — Eq. 7/8), sharded across the configured worker
        // pool. The history terms are per-region (a handful of trailing
        // means) and stay serial.
        let history = self.history_terms(ctx, &regions);
        // lint:allow(DET002: prepare_seconds timing capture; scrubbed from schedules by without_wall_clock)
        let prepare_start = Instant::now();
        let numerics = self.prepare_numerics(&selected, ctx, &regions, &history);
        self.stats.prepare_seconds += prepare_start.elapsed().as_secs_f64();

        // Hard-constrained solve first; soften on infeasibility
        // (Algorithm 1, lines 8–11). The fallback reuses the numerics.
        // lint:allow(DET002: solve_seconds timing capture; scrubbed from schedules by without_wall_clock)
        let solve_start = Instant::now();
        let hard = self.solve_assignment(&selected, ctx, &regions, &numerics, false);
        let assignments = match hard {
            Some(a) => a,
            None => {
                self.stats.soft_fallbacks += 1;
                self.solve_assignment(&selected, ctx, &regions, &numerics, true)
                    .unwrap_or_default()
            }
        };
        self.stats.solve_seconds += solve_start.elapsed().as_secs_f64();
        // Prune carried-forward choices for jobs that already left the
        // pending pool. Entries for jobs assigned *this* round survive one
        // more round on purpose: if the engine rejects a placement the job
        // stays pending and its carried region seeds the next hint;
        // otherwise the job disappears from `pending` and the entry is
        // dropped here next round.
        self.carried
            .retain(|id, _| ctx.pending.iter().any(|p| p.spec.id == *id));
        SchedulingDecision { assignments }
    }

    fn solver_activity(&self) -> Option<SolverActivity> {
        let warm = self.workspace.stats();
        let cache = self.workspace.cache_stats();
        Some(SolverActivity {
            solves: warm.cold_solves + warm.warm_solves,
            warm_solves: warm.warm_solves,
            simplex_pivots: warm.cold_pivots + warm.warm_pivots,
            warm_pivots: warm.warm_pivots,
            nodes: self.stats.nodes,
            dual_restarts: warm.dual_restarts,
            basis_reuse_hits: warm.basis_reuse_hits,
            bound_flips: warm.bound_flips,
            cache_exact_hits: cache.exact_hits,
            cache_hint_hits: cache.hint_hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        })
    }
}

/// Convenience constructor mirroring the paper's default deployment.
pub fn paper_default_scheduler(provider: Arc<dyn ConditionsProvider>) -> WaterWiseScheduler {
    WaterWiseScheduler::with_defaults(provider)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use waterwise_sustain::Seconds;
    use waterwise_telemetry::SyntheticTelemetry;

    fn scheduler() -> WaterWiseScheduler {
        WaterWiseScheduler::with_defaults(Arc::new(SyntheticTelemetry::with_seed(3)))
    }

    fn ctx_from<'a>(
        fixture: &'a ContextFixture,
        now_hours: f64,
        tolerance: f64,
    ) -> SchedulingContext<'a> {
        SchedulingContext {
            now: Seconds::from_hours(now_hours),
            pending: &fixture.pending,
            regions: &fixture.regions,
            delay_tolerance: tolerance,
            transfer: &fixture.transfer,
        }
    }

    #[test]
    fn assigns_every_job_when_capacity_allows() {
        let mut fixture = context_fixture(12, 3);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let ctx = ctx_from(&fixture, 6.0, 0.5);
        let mut sched = scheduler();
        let decision = sched.schedule(&ctx);
        assert_eq!(decision.assignments.len(), 12);
        assert_eq!(sched.stats().rounds, 1);
        assert_eq!(sched.stats().slack_truncations, 0);
    }

    #[test]
    fn respects_capacity_via_slack_manager() {
        let mut fixture = context_fixture(30, 5);
        for v in &mut fixture.regions {
            v.total_servers = 2; // 10 total slots for 30 jobs.
        }
        let ctx = ctx_from(&fixture, 6.0, 0.5);
        let mut sched = scheduler();
        let decision = sched.schedule(&ctx);
        assert!(decision.assignments.len() <= 10);
        assert!(!decision.assignments.is_empty());
        assert_eq!(sched.stats().slack_truncations, 1);
        let mut counts = [0usize; 5];
        for a in &decision.assignments {
            counts[a.region.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2), "{counts:?}");
    }

    #[test]
    fn avoids_the_carbon_worst_region_under_equal_weights() {
        let mut fixture = context_fixture(20, 7);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(12.0);
        }
        let ctx = ctx_from(&fixture, 12.0, 1.0);
        let decision = scheduler().schedule(&ctx);
        let mumbai_jobs = decision
            .assignments
            .iter()
            .filter(|a| a.region == waterwise_telemetry::Region::Mumbai)
            .count();
        // Mumbai jobs should only be those submitted there whose migration
        // would violate tolerance — with generous tolerance that is few.
        assert!(
            mumbai_jobs <= decision.assignments.len() / 3,
            "{mumbai_jobs} of {} jobs in Mumbai",
            decision.assignments.len()
        );
    }

    #[test]
    fn tight_tolerance_keeps_jobs_near_home() {
        let fixture = context_fixture(15, 9);
        // Zero tolerance: any transfer latency violates Eq. 11, so the hard
        // model forces home-region execution (latency 0).
        let ctx = ctx_from(&fixture, 3.0, 0.0);
        let decision = scheduler().schedule(&ctx);
        for a in &decision.assignments {
            let job = fixture.pending.iter().find(|p| p.spec.id == a.job).unwrap();
            assert_eq!(a.region, job.spec.home_region, "job {} migrated", a.job.0);
        }
    }

    #[test]
    fn soft_fallback_engages_when_hard_model_is_infeasible() {
        let mut fixture = context_fixture(6, 11);
        // Make the home regions unavailable so every job *must* migrate, and
        // set a zero tolerance so the hard delay constraint is unsatisfiable.
        fixture
            .regions
            .retain(|v| v.region == waterwise_telemetry::Region::Milan);
        for p in &mut fixture.pending {
            p.spec.home_region = waterwise_telemetry::Region::Oregon;
        }
        let ctx = ctx_from(&fixture, 3.0, 0.0);
        let mut sched = scheduler();
        let decision = sched.schedule(&ctx);
        // The soft model still assigns the jobs (at a penalty).
        assert_eq!(decision.assignments.len(), 6);
        assert!(sched.stats().soft_fallbacks >= 1);
        assert!(decision
            .assignments
            .iter()
            .all(|a| a.region == waterwise_telemetry::Region::Milan));
    }

    #[test]
    fn carbon_weight_shifts_the_placement_mix() {
        let mut fixture = context_fixture(25, 13);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(12.0);
        }
        let provider: Arc<dyn ConditionsProvider> = Arc::new(SyntheticTelemetry::with_seed(3));
        let mut carbon_heavy = WaterWiseScheduler::new(
            provider.clone(),
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default().with_carbon_weight(0.95),
        );
        let mut water_heavy = WaterWiseScheduler::new(
            provider,
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default().with_carbon_weight(0.05),
        );
        let ctx = ctx_from(&fixture, 12.0, 1.0);
        let a = carbon_heavy.schedule(&ctx);
        let b = water_heavy.schedule(&ctx);
        let dist = |d: &SchedulingDecision| {
            let mut counts = [0usize; 5];
            for a in &d.assignments {
                counts[a.region.index()] += 1;
            }
            counts
        };
        assert_ne!(dist(&a), dist(&b), "weights should change the distribution");
    }

    #[test]
    fn warm_start_produces_identical_decisions_to_cold() {
        // Several rounds over the same fixture with evolving time: warm and
        // cold schedulers must agree on every single placement.
        let mut fixture = context_fixture(18, 21);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let provider: Arc<dyn ConditionsProvider> = Arc::new(SyntheticTelemetry::with_seed(3));
        let mut warm = WaterWiseScheduler::new(
            provider.clone(),
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default().with_warm_start(true),
        );
        let mut cold = WaterWiseScheduler::new(
            provider,
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default().with_warm_start(false),
        );
        for hour in [6.0, 6.5, 7.0, 9.0] {
            let ctx = ctx_from(&fixture, hour, 0.5);
            let a = warm.schedule(&ctx);
            let b = cold.schedule(&ctx);
            assert_eq!(a, b, "warm and cold schedules diverged at hour {hour}");
        }
        let warm_stats = warm.stats().warm;
        let cold_stats = cold.stats().warm;
        assert!(warm_stats.warm_solves > 0, "warm path never engaged");
        assert_eq!(cold_stats.warm_solves, 0);
        assert!(
            warm_stats.warm_pivots * 2 <= cold_stats.cold_pivots + cold_stats.warm_pivots,
            "warm pivots {} should be at most half of cold pivots {}",
            warm_stats.warm_pivots,
            cold_stats.cold_pivots
        );
    }

    #[test]
    fn sharded_preparation_matches_serial_byte_for_byte() {
        // The per-job numerics are pure and merged in job order, so every
        // parallelism setting must reproduce the serial schedule exactly —
        // across several stateful rounds (carried hints included).
        let mut fixture = context_fixture(24, 31);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let provider: Arc<dyn ConditionsProvider> = Arc::new(SyntheticTelemetry::with_seed(3));
        for parallelism in [Parallelism::Auto, Parallelism::Threads(3)] {
            let mut serial = WaterWiseScheduler::new(
                provider.clone(),
                FootprintEstimator::paper_default(),
                WaterWiseConfig::default(),
            );
            let mut sharded = WaterWiseScheduler::new(
                provider.clone(),
                FootprintEstimator::paper_default(),
                WaterWiseConfig::default().with_parallelism(parallelism),
            );
            for hour in [6.0, 6.5, 7.5] {
                let ctx = ctx_from(&fixture, hour, 0.5);
                let a = serial.schedule(&ctx);
                let b = sharded.schedule(&ctx);
                assert_eq!(a, b, "{parallelism:?} diverged from serial at hour {hour}");
            }
            // The deterministic solver work must match too; only wall-clock
            // timing may differ between the runs.
            assert_eq!(serial.stats().warm, sharded.stats().warm);
            assert_eq!(serial.stats().nodes, sharded.stats().nodes);
            assert_eq!(
                serial.stats().simplex_iterations,
                sharded.stats().simplex_iterations
            );
        }
    }

    #[test]
    fn stats_time_the_prepare_and_solve_phases() {
        let fixture = context_fixture(10, 17);
        let ctx = ctx_from(&fixture, 6.0, 0.5);
        let mut sched = scheduler();
        assert_eq!(sched.stats().prepare_seconds, 0.0);
        assert_eq!(sched.stats().solve_seconds, 0.0);
        sched.schedule(&ctx);
        let stats = sched.stats();
        assert!(stats.prepare_seconds > 0.0, "prepare phase was never timed");
        assert!(stats.solve_seconds > 0.0, "solve phase was never timed");
    }

    #[test]
    fn solver_activity_mirrors_dual_restart_counters() {
        let fixture = context_fixture(12, 19);
        let ctx = ctx_from(&fixture, 6.0, 0.5);
        let mut sched = scheduler();
        sched.schedule(&ctx);
        let activity = sched.solver_activity().unwrap();
        let warm = sched.stats().warm;
        assert_eq!(activity.dual_restarts, warm.dual_restarts);
        assert_eq!(activity.basis_reuse_hits, warm.basis_reuse_hits);
        assert_eq!(activity.bound_flips, warm.bound_flips);
        assert!(activity.basis_reuse_hits <= activity.dual_restarts);
    }

    #[test]
    fn horizon_caps_the_solve_window_and_defers_the_rest() {
        let mut fixture = context_fixture(20, 23);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let ctx = ctx_from(&fixture, 6.0, 1.0);
        let mut sched = WaterWiseScheduler::new(
            Arc::new(SyntheticTelemetry::with_seed(3)),
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default().with_horizon(Some(5)),
        );
        let decision = sched.schedule(&ctx);
        assert_eq!(decision.assignments.len(), 5, "window must cap the batch");
        assert_eq!(sched.stats().slack_truncations, 1);
    }

    #[test]
    fn zero_horizon_is_clamped_at_config_build_time() {
        // Regression: `with_horizon(Some(0))` used to yield an empty solve
        // batch every slot, deferring every pending job forever. The config
        // builder now clamps to a one-job window.
        let config = WaterWiseConfig::default().with_horizon(Some(0));
        assert_eq!(config.horizon, Some(1));

        let mut fixture = context_fixture(8, 27);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let ctx = ctx_from(&fixture, 6.0, 1.0);
        let mut sched = WaterWiseScheduler::new(
            Arc::new(SyntheticTelemetry::with_seed(3)),
            FootprintEstimator::paper_default(),
            config,
        );
        let decision = sched.schedule(&ctx);
        assert_eq!(
            decision.assignments.len(),
            1,
            "a clamped zero horizon must still make progress"
        );
    }

    #[test]
    fn attached_cache_never_changes_decisions_and_reports_traffic() {
        let mut fixture = context_fixture(14, 29);
        for p in &mut fixture.pending {
            p.received_at = Seconds::from_hours(6.0);
        }
        let provider: Arc<dyn ConditionsProvider> = Arc::new(SyntheticTelemetry::with_seed(3));
        let mut plain = WaterWiseScheduler::new(
            provider.clone(),
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default(),
        );
        let mut cached = WaterWiseScheduler::new(
            provider,
            FootprintEstimator::paper_default(),
            WaterWiseConfig::default(),
        )
        .with_cache(waterwise_milp::SolutionCache::shared());
        for hour in [6.0, 6.25, 6.5, 7.0] {
            let ctx = ctx_from(&fixture, hour, 0.5);
            let a = plain.schedule(&ctx);
            let b = cached.schedule(&ctx);
            assert_eq!(a, b, "cache changed the schedule at hour {hour}");
        }
        assert_eq!(plain.stats().cache, waterwise_milp::CacheStats::default());
        let stats = cached.stats().cache;
        assert!(stats.lookups() > 0, "cache was never consulted");
        assert!(stats.insertions > 0, "optimal solves were never published");
        let activity = cached.solver_activity().unwrap();
        assert_eq!(activity.cache_exact_hits, stats.exact_hits);
        assert_eq!(activity.cache_hint_hits, stats.hint_hits);
        assert_eq!(activity.cache_misses, stats.misses);
    }

    #[test]
    fn solver_activity_reports_cumulative_work() {
        let fixture = context_fixture(10, 25);
        let ctx = ctx_from(&fixture, 6.0, 0.5);
        let mut sched = scheduler();
        assert_eq!(sched.solver_activity().unwrap(), SolverActivity::default());
        sched.schedule(&ctx);
        let activity = sched.solver_activity().unwrap();
        assert!(activity.solves > 0);
        assert!(activity.simplex_pivots > 0);
        assert_eq!(
            activity.simplex_pivots,
            sched.stats().simplex_iterations,
            "workspace pivots and solution iterations must agree"
        );
    }

    #[test]
    fn empty_pending_or_zero_capacity_defers() {
        let mut fixture = context_fixture(5, 15);
        let empty_ctx = SchedulingContext {
            now: Seconds::zero(),
            pending: &[],
            regions: &fixture.regions,
            delay_tolerance: 0.5,
            transfer: &fixture.transfer,
        };
        assert!(scheduler().schedule(&empty_ctx).assignments.is_empty());

        for v in &mut fixture.regions {
            v.busy_servers = v.total_servers;
        }
        let ctx = ctx_from(&fixture, 1.0, 0.5);
        assert!(scheduler().schedule(&ctx).assignments.is_empty());
    }
}
