//! Shared fixtures for scheduler unit tests.

use waterwise_cluster::{PendingJob, RegionView, TransferModel};
use waterwise_sustain::{KilowattHours, Seconds, Watts};
use waterwise_telemetry::{Region, ALL_REGIONS};
use waterwise_traces::{Benchmark, JobId, JobSpec, ALL_BENCHMARKS};

/// A ready-made scheduling context's building blocks.
pub struct ContextFixture {
    /// Pending jobs with deterministic pseudo-random characteristics.
    pub pending: Vec<PendingJob>,
    /// One view per region, all servers free by default.
    pub regions: Vec<RegionView>,
    /// The default transfer model.
    pub transfer: TransferModel,
}

/// Build `n` pending jobs (deterministic in `seed`) plus fresh region views
/// with 50 servers each.
pub fn context_fixture(n: usize, seed: u64) -> ContextFixture {
    let pending = (0..n)
        .map(|i| {
            let mix = seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 40503);
            let benchmark: Benchmark = ALL_BENCHMARKS[(mix % 10) as usize];
            let home_region: Region = ALL_REGIONS[((mix / 10) % 5) as usize];
            let profile = benchmark.profile();
            let exec = Seconds::new(
                profile.mean_execution_time.value() * (0.9 + (mix % 20) as f64 / 100.0),
            );
            let energy = Watts::new(profile.mean_power.value()).energy_over(exec);
            PendingJob {
                spec: JobSpec {
                    id: JobId(i as u64),
                    benchmark,
                    submit_time: Seconds::new(i as f64),
                    home_region,
                    actual_execution_time: exec,
                    actual_energy: energy,
                    estimated_execution_time: exec,
                    estimated_energy: KilowattHours::new(energy.value() * 1.02),
                    package_bytes: profile.package_bytes,
                },
                received_at: Seconds::new(i as f64),
                deferrals: 0,
            }
        })
        .collect();
    let regions = ALL_REGIONS
        .iter()
        .map(|&region| RegionView {
            region,
            total_servers: 50,
            busy_servers: 0,
            queued_jobs: 0,
            inbound_jobs: 0,
        })
        .collect();
    ContextFixture {
        pending,
        regions,
        transfer: TransferModel::paper_default(),
    }
}
