//! Round-Robin load balancing: jobs are handed to regions in circular order,
//! oblivious to carbon, water, and load.

use waterwise_cluster::{Assignment, Scheduler, SchedulingContext, SchedulingDecision};

/// The Round-Robin comparison scheme (Fig. 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Create a round-robin scheduler.
    pub fn new() -> Self {
        Self { cursor: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        let regions = ctx.region_list();
        if regions.is_empty() {
            return SchedulingDecision::defer_all();
        }
        let mut assignments = Vec::with_capacity(ctx.pending.len());
        for p in ctx.pending {
            let region = regions[self.cursor % regions.len()];
            self.cursor = self.cursor.wrapping_add(1);
            assignments.push(Assignment {
                job: p.spec.id,
                region,
            });
        }
        SchedulingDecision { assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use std::collections::HashMap;
    use waterwise_sustain::Seconds;

    #[test]
    fn distributes_jobs_evenly_across_regions() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(20, 3);
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = RoundRobinScheduler::new().schedule(&ctx);
        assert_eq!(decision.assignments.len(), 20);
        let mut counts: HashMap<_, usize> = HashMap::new();
        for a in &decision.assignments {
            *counts.entry(a.region).or_default() += 1;
        }
        // 20 jobs across 5 regions => exactly 4 each.
        assert!(counts.values().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn cursor_persists_across_rounds() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(3, 5);
        let mut sched = RoundRobinScheduler::new();
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let first = sched.schedule(&ctx);
        let second = sched.schedule(&ctx);
        // The second round continues where the first left off.
        assert_ne!(first.assignments[0].region, second.assignments[0].region);
    }
}
