//! The carbon- and water-unaware baseline: every job runs in its home
//! region, immediately, with no migration and no opportunistic delay.

use waterwise_cluster::{Assignment, Scheduler, SchedulingContext, SchedulingDecision};

/// The paper's Baseline scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineScheduler;

impl BaselineScheduler {
    /// Create a baseline scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &str {
        "baseline"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        let regions = ctx.region_list();
        SchedulingDecision {
            assignments: ctx
                .pending
                .iter()
                .map(|p| {
                    // If the home region is not part of the campaign (region
                    // availability study), fall back to the first available
                    // region.
                    let region = if regions.contains(&p.spec.home_region) {
                        p.spec.home_region
                    } else {
                        regions[0]
                    };
                    Assignment {
                        job: p.spec.id,
                        region,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use waterwise_telemetry::Region;

    #[test]
    fn assigns_every_job_to_its_home_region() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(4, 10);
        let ctx = SchedulingContext {
            now: waterwise_sustain::Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = BaselineScheduler::new().schedule(&ctx);
        assert_eq!(decision.assignments.len(), pending.len());
        for (a, p) in decision.assignments.iter().zip(pending.iter()) {
            assert_eq!(a.job, p.spec.id);
            assert_eq!(a.region, p.spec.home_region);
        }
    }

    #[test]
    fn falls_back_when_home_region_unavailable() {
        let ContextFixture {
            pending,
            mut regions,
            transfer,
        } = context_fixture(3, 11);
        // Remove every region except Milan; home regions may differ.
        regions.retain(|v| v.region == Region::Milan);
        let ctx = SchedulingContext {
            now: waterwise_sustain::Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = BaselineScheduler::new().schedule(&ctx);
        for a in &decision.assignments {
            assert_eq!(a.region, Region::Milan);
        }
    }
}
