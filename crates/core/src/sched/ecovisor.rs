//! An Ecovisor-style carbon-only comparator (Fig. 7).
//!
//! Ecovisor [Souza et al., ASPLOS 2023] virtualizes the energy system of a
//! rack and lets applications scale their resources against the current
//! carbon signal ("carbon scaler"). As the paper notes, its scope differs
//! from WaterWise: it optimizes *operational carbon only*, executes every job
//! in its home region, and is unaware of water.
//!
//! The simulator does not model per-container power scaling, so the
//! comparator is modeled as the scheduling-visible effect of a carbon
//! scaler: a job is *deferred at home* while the home region's carbon
//! intensity is above its recent average (running the container scaled-down
//! would stretch it past its tolerance anyway), and is released once the
//! signal improves or the job's delay-tolerance slack runs out. This
//! reproduces the qualitative behaviour the paper reports: modest carbon
//! savings, essentially no water savings, and no cross-region shifting.

use std::sync::Arc;
use waterwise_cluster::{Assignment, PendingJob, Scheduler, SchedulingContext, SchedulingDecision};
use waterwise_sustain::Seconds;
use waterwise_telemetry::ConditionsProvider;

/// Configuration of the Ecovisor-style comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcovisorConfig {
    /// Trailing window (hours) used to compute the carbon-intensity target.
    pub target_window_hours: usize,
    /// A job is deferred while the current carbon intensity exceeds
    /// `target × (1 + headroom)`.
    pub headroom: f64,
    /// Fraction of the delay-tolerance budget the scaler is willing to spend
    /// waiting for a better carbon signal.
    pub max_slack_fraction: f64,
}

impl Default for EcovisorConfig {
    fn default() -> Self {
        Self {
            target_window_hours: 12,
            headroom: 0.05,
            max_slack_fraction: 0.6,
        }
    }
}

/// The Ecovisor-style scheduler.
pub struct EcovisorScheduler {
    provider: Arc<dyn ConditionsProvider>,
    config: EcovisorConfig,
}

impl EcovisorScheduler {
    /// Create the comparator with the given carbon-signal provider.
    pub fn new(provider: Arc<dyn ConditionsProvider>, config: EcovisorConfig) -> Self {
        Self { provider, config }
    }

    fn should_defer(&self, job: &PendingJob, ctx: &SchedulingContext<'_>) -> bool {
        let home = job.spec.home_region;
        if ctx.region_view(home).is_none() {
            return false;
        }
        let now = ctx.now;
        let current = self.provider.conditions(home, now).carbon_intensity.value();
        let target = self
            .provider
            .trailing_carbon(home, now, self.config.target_window_hours)
            .value();
        let signal_is_bad = current > target * (1.0 + self.config.headroom);
        if !signal_is_bad {
            return false;
        }
        // Only defer while enough of the tolerance budget remains.
        let budget = ctx.delay_tolerance
            * job.spec.estimated_execution_time.value()
            * self.config.max_slack_fraction;
        job.waiting_time(now).value() < budget
    }
}

impl Scheduler for EcovisorScheduler {
    fn name(&self) -> &str {
        "ecovisor"
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        let regions = ctx.region_list();
        let mut assignments = Vec::new();
        for job in ctx.pending {
            if self.should_defer(job, ctx) {
                continue;
            }
            let region = if regions.contains(&job.spec.home_region) {
                job.spec.home_region
            } else {
                regions[0]
            };
            assignments.push(Assignment {
                job: job.spec.id,
                region,
            });
        }
        SchedulingDecision { assignments }
    }
}

/// Helper for tests and experiments: the time the scaler would tell a job to
/// wait is bounded by its slack budget.
pub fn max_wait_budget(job: &PendingJob, delay_tolerance: f64, config: &EcovisorConfig) -> Seconds {
    Seconds::new(
        delay_tolerance * job.spec.estimated_execution_time.value() * config.max_slack_fraction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use waterwise_telemetry::{Region, SyntheticTelemetry};

    fn scheduler() -> EcovisorScheduler {
        EcovisorScheduler::new(
            Arc::new(SyntheticTelemetry::with_seed(5)),
            EcovisorConfig::default(),
        )
    }

    #[test]
    fn never_migrates_jobs() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(15, 3);
        let ctx = SchedulingContext {
            now: Seconds::from_hours(30.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.5,
            transfer: &transfer,
        };
        let decision = scheduler().schedule(&ctx);
        for a in &decision.assignments {
            let job = pending.iter().find(|p| p.spec.id == a.job).unwrap();
            assert_eq!(a.region, job.spec.home_region);
        }
    }

    #[test]
    fn eventually_releases_every_job() {
        let ContextFixture {
            mut pending,
            regions,
            transfer,
        } = context_fixture(10, 7);
        // Pretend the jobs have been waiting a very long time already.
        for p in &mut pending {
            p.received_at = Seconds::new(-1.0e6);
        }
        let ctx = SchedulingContext {
            now: Seconds::from_hours(10.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.5,
            transfer: &transfer,
        };
        let decision = scheduler().schedule(&ctx);
        assert_eq!(decision.assignments.len(), pending.len());
    }

    #[test]
    fn wait_budget_scales_with_tolerance() {
        let ContextFixture { pending, .. } = context_fixture(1, 9);
        let small = max_wait_budget(&pending[0], 0.25, &EcovisorConfig::default());
        let large = max_wait_budget(&pending[0], 1.0, &EcovisorConfig::default());
        assert!(large.value() > small.value() * 3.0);
    }

    #[test]
    fn falls_back_when_home_region_missing() {
        let ContextFixture {
            pending,
            mut regions,
            transfer,
        } = context_fixture(5, 11);
        regions.retain(|v| v.region == Region::Zurich);
        let ctx = SchedulingContext {
            now: Seconds::from_hours(5.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        let decision = scheduler().schedule(&ctx);
        assert!(decision
            .assignments
            .iter()
            .all(|a| a.region == Region::Zurich));
    }
}
