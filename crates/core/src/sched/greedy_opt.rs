//! The Carbon-Greedy-Opt and Water-Greedy-Opt oracles (Sec. 5).
//!
//! These infeasible-in-practice schemes know the *future* carbon and water
//! intensity of every region (they hold the same telemetry provider the
//! simulator uses) and greedily pick, for each job independently, the
//! `(region, start time)` combination within the job's delay-tolerance
//! budget that minimizes a single objective — carbon for Carbon-Greedy-Opt,
//! water for Water-Greedy-Opt. They do not know future job arrivals, so they
//! are not truly optimal (as the paper notes), but they bound what
//! single-objective optimization can achieve.

use crate::objective::candidate_footprints;
use std::sync::Arc;
use waterwise_cluster::{Assignment, PendingJob, Scheduler, SchedulingContext, SchedulingDecision};
use waterwise_sustain::{FootprintEstimator, Seconds};
use waterwise_telemetry::{ConditionsProvider, Region};

/// Which single objective the oracle minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyObjective {
    /// Minimize the carbon footprint (Carbon-Greedy-Opt).
    Carbon,
    /// Minimize the effective water footprint (Water-Greedy-Opt).
    Water,
}

impl GreedyObjective {
    fn label(self) -> &'static str {
        match self {
            GreedyObjective::Carbon => "carbon-greedy-opt",
            GreedyObjective::Water => "water-greedy-opt",
        }
    }
}

/// The greedy-optimal oracle scheduler.
pub struct GreedyOptScheduler {
    objective: GreedyObjective,
    provider: Arc<dyn ConditionsProvider>,
    estimator: FootprintEstimator,
    /// Granularity of the future start-time search.
    search_step: Seconds,
}

impl GreedyOptScheduler {
    /// Create an oracle with future knowledge provided by `provider`.
    pub fn new(
        objective: GreedyObjective,
        provider: Arc<dyn ConditionsProvider>,
        estimator: FootprintEstimator,
    ) -> Self {
        Self {
            objective,
            provider,
            estimator,
            search_step: Seconds::from_minutes(30.0),
        }
    }

    /// Override the future-search granularity (default 30 minutes).
    pub fn with_search_step(mut self, step: Seconds) -> Self {
        self.search_step = Seconds::new(step.value().max(60.0));
        self
    }

    fn objective_of(&self, carbon: f64, water: f64) -> f64 {
        match self.objective {
            GreedyObjective::Carbon => carbon,
            GreedyObjective::Water => water,
        }
    }

    /// The slack (in seconds) the job can still afford to spend waiting and
    /// transferring without violating its delay tolerance.
    fn remaining_slack(&self, job: &PendingJob, ctx: &SchedulingContext<'_>) -> f64 {
        let tolerance_budget = ctx.delay_tolerance * job.spec.estimated_execution_time.value();
        let already_waited = job.waiting_time(ctx.now).value();
        tolerance_budget - already_waited
    }

    /// Decide the best `(region, extra delay)` for one job. Returns `None`
    /// when deferring to a later round is strictly better.
    fn best_choice(&self, job: &PendingJob, ctx: &SchedulingContext<'_>) -> Option<Region> {
        let regions = ctx.region_list();
        let slack = self.remaining_slack(job, ctx);
        let step = self.search_step.value();
        let round_interval = step.min(300.0);

        let mut best_now: Option<(f64, Region)> = None;
        let mut best_later: Option<f64> = None;

        // Candidate start delays: 0, step, 2*step, ... bounded by the slack.
        let mut delay = 0.0;
        while delay <= slack.max(0.0) {
            let at = Seconds::new(ctx.now.value() + delay);
            let candidates =
                candidate_footprints(job, &regions, self.provider.as_ref(), &self.estimator, at);
            for c in &candidates {
                let transfer = ctx
                    .transfer
                    .transfer_time(job.spec.home_region, c.region, job.spec.package_bytes)
                    .value();
                // The transfer + the candidate delay must fit in the slack.
                if delay + transfer > slack && slack >= 0.0 {
                    continue;
                }
                let value = self.objective_of(c.carbon, c.water);
                if delay <= round_interval {
                    if best_now.map(|(v, _)| value < v).unwrap_or(true) {
                        best_now = Some((value, c.region));
                    }
                } else if best_later.map(|v| value < v).unwrap_or(true) {
                    best_later = Some(value);
                }
            }
            if step <= 0.0 {
                break;
            }
            delay += step;
        }

        match (best_now, best_later) {
            // Waiting for a clearly better future slot: defer this round.
            (Some((now_value, _)), Some(later_value)) if later_value < now_value * 0.98 => None,
            (Some((_, region)), _) => Some(region),
            // No feasible in-slack option: fall back to the cheapest region
            // right now (the job will likely violate its tolerance, as the
            // oracles also do in the paper when capacity is tight).
            (None, _) => {
                let candidates = candidate_footprints(
                    job,
                    &regions,
                    self.provider.as_ref(),
                    &self.estimator,
                    ctx.now,
                );
                candidates
                    .iter()
                    .min_by(|a, b| {
                        self.objective_of(a.carbon, a.water)
                            .partial_cmp(&self.objective_of(b.carbon, b.water))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|c| c.region)
            }
        }
    }
}

impl Scheduler for GreedyOptScheduler {
    fn name(&self) -> &str {
        self.objective.label()
    }

    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        // Respect remaining capacity greedily: most-urgent (least slack)
        // jobs first.
        let mut capacity: Vec<(Region, usize)> = ctx
            .regions
            .iter()
            .map(|v| (v.region, v.remaining_capacity()))
            .collect();
        let mut order: Vec<&PendingJob> = ctx.pending.iter().collect();
        order.sort_by(|a, b| {
            self.remaining_slack(a, ctx)
                .partial_cmp(&self.remaining_slack(b, ctx))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut assignments = Vec::new();
        for job in order {
            let Some(region) = self.best_choice(job, ctx) else {
                continue; // Defer: a later slot is better and slack allows it.
            };
            let slot = capacity.iter_mut().find(|(r, _)| *r == region);
            match slot {
                Some((_, cap)) if *cap > 0 => {
                    *cap -= 1;
                    assignments.push(Assignment {
                        job: job.spec.id,
                        region,
                    });
                }
                _ => {
                    // Preferred region full: take any region with capacity,
                    // cheapest first.
                    let regions = ctx.region_list();
                    let candidates = candidate_footprints(
                        job,
                        &regions,
                        self.provider.as_ref(),
                        &self.estimator,
                        ctx.now,
                    );
                    let mut sorted = candidates.clone();
                    sorted.sort_by(|a, b| {
                        self.objective_of(a.carbon, a.water)
                            .partial_cmp(&self.objective_of(b.carbon, b.water))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    if let Some(c) = sorted
                        .iter()
                        .find(|c| capacity.iter().any(|(r, cap)| *r == c.region && *cap > 0))
                    {
                        if let Some((_, cap)) = capacity.iter_mut().find(|(r, _)| *r == c.region) {
                            *cap -= 1;
                        }
                        assignments.push(Assignment {
                            job: job.spec.id,
                            region: c.region,
                        });
                    }
                    // Otherwise every region is full: leave the job pending.
                }
            }
        }
        SchedulingDecision { assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::test_support::{context_fixture, ContextFixture};
    use waterwise_telemetry::SyntheticTelemetry;

    fn oracle(objective: GreedyObjective) -> GreedyOptScheduler {
        GreedyOptScheduler::new(
            objective,
            Arc::new(SyntheticTelemetry::with_seed(3)),
            FootprintEstimator::paper_default(),
        )
    }

    #[test]
    fn carbon_oracle_avoids_the_dirtiest_region() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(10, 3);
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.5,
            transfer: &transfer,
        };
        let decision = oracle(GreedyObjective::Carbon).schedule(&ctx);
        // No job should land in Mumbai (by far the highest carbon intensity).
        assert!(decision
            .assignments
            .iter()
            .all(|a| a.region != Region::Mumbai));
    }

    #[test]
    fn carbon_and_water_oracles_disagree() {
        let ContextFixture {
            pending,
            regions,
            transfer,
        } = context_fixture(12, 5);
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.5,
            transfer: &transfer,
        };
        let carbon = oracle(GreedyObjective::Carbon).schedule(&ctx);
        let water = oracle(GreedyObjective::Water).schedule(&ctx);
        // The two single-objective solutions place jobs differently — the
        // core tension motivating WaterWise (Fig. 3(b)).
        let carbon_regions: Vec<_> = carbon.assignments.iter().map(|a| a.region).collect();
        let water_regions: Vec<_> = water.assignments.iter().map(|a| a.region).collect();
        assert_ne!(carbon_regions, water_regions);
    }

    #[test]
    fn capacity_limits_are_respected() {
        let ContextFixture {
            pending,
            mut regions,
            transfer,
        } = context_fixture(20, 7);
        for v in &mut regions {
            v.total_servers = 2;
        }
        let ctx = SchedulingContext {
            now: Seconds::new(0.0),
            pending: &pending,
            regions: &regions,
            delay_tolerance: 0.5,
            transfer: &transfer,
        };
        let decision = oracle(GreedyObjective::Carbon).schedule(&ctx);
        let mut counts = [0usize; 5];
        for a in &decision.assignments {
            counts[a.region.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2), "{counts:?}");
        // With 10 total slots and 20 jobs, at most 10 can be placed.
        assert!(decision.assignments.len() <= 10);
    }

    #[test]
    fn names_distinguish_the_two_oracles() {
        assert_eq!(oracle(GreedyObjective::Carbon).name(), "carbon-greedy-opt");
        assert_eq!(oracle(GreedyObjective::Water).name(), "water-greedy-opt");
    }
}
