//! # waterwise-core
//!
//! The WaterWise carbon- and water-aware scheduler, the baseline schedulers
//! it is evaluated against, and the experiment runner that ties together
//! telemetry, traces, the cluster simulator, and a scheduler into one
//! campaign.
//!
//! * [`sched`] — scheduler implementations:
//!   * [`sched::WaterWiseScheduler`] — the paper's contribution: a MILP
//!     formulation (Eq. 8–11) with soft-constraint relaxation (Eq. 12–13)
//!     and urgency-based slack management (Eq. 14, Algorithm 1).
//!   * [`sched::BaselineScheduler`] — carbon/water-unaware home-region
//!     execution.
//!   * [`sched::GreedyOptScheduler`] — the Carbon-Greedy-Opt and
//!     Water-Greedy-Opt oracles with future knowledge of intensities.
//!   * [`sched::RoundRobinScheduler`] and [`sched::LeastLoadScheduler`] —
//!     classic load balancers.
//!   * [`sched::EcovisorScheduler`] — a carbon-only comparator modeled after
//!     Ecovisor's carbon scaler (home region, no water awareness).
//! * [`objective`] — the shared candidate-evaluation machinery: estimated
//!   carbon/water footprint of running job *m* in region *n* right now, and
//!   the normalization used by the objective function (Eq. 7).
//! * [`experiment`] — campaign configuration and the runner used by the
//!   examples, integration tests, and the benchmark harness.
//! * [`scenario`] — declarative scenario specs (`scenarios/*.spec` files
//!   that parse into a ready [`CampaignConfig`]) and the golden-snapshot
//!   harness that pins their results byte-for-byte.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod experiment;
pub mod objective;
pub mod scenario;
pub mod sched;

pub use error::WaterWiseError;
pub use experiment::{
    build_scheduler, Campaign, CampaignConfig, CampaignOutcome, Parallelism, SchedulerKind,
    SolutionCacheMode,
};
// Solution-cache handle types, re-exported so campaign drivers can build a
// shared cache without depending on `waterwise-milp` directly.
pub use objective::{CandidateFootprint, ObjectiveWeights};
pub use scenario::{load_spec, parse_spec, Scenario, ScenarioError, Snapshot, SnapshotError};
pub use sched::{
    BaselineScheduler, EcovisorScheduler, GreedyObjective, GreedyOptScheduler, LeastLoadScheduler,
    RoundRobinScheduler, WaterWiseConfig, WaterWiseScheduler,
};
// Engine-mode types, re-exported so campaign drivers can pick the pipelined
// engine without depending on `waterwise-cluster` directly.
pub use waterwise_cluster::{EngineMode, PipelineStats};
pub use waterwise_milp::{
    solver_config_hash, CacheAutosave, CachePersistError, CacheStats, SolutionCache,
    SolutionCacheHandle,
};
