//! Declarative scenario specs and golden-snapshot verification.
//!
//! The WaterWise experiments used to hand-code every scenario — trace shape,
//! regions, telemetry horizon, objective weights, engine/cache/clock config —
//! in a bespoke Rust binary, and hand-roll every byte-identity assert. This
//! module turns both into data:
//!
//! * [`spec`] defines a strict, line-based `key = value` spec format (see
//!   `docs/SCENARIOS.md` for the grammar). [`load_spec`] parses a
//!   `scenarios/*.spec` file into a [`Scenario`] — a named, seeded, ready
//!   [`crate::experiment::CampaignConfig`]. Parsing is hand-rolled in the
//!   style of the service wire codec (the vendored `serde` is a no-op) and
//!   every rejection is a typed [`ScenarioError`] with a 1-based line number.
//! * [`snapshot`] renders campaign results to a stable canonical text form
//!   ([`Snapshot`]) and compares them against goldens stored as
//!   `tests/snapshots/<scenario>.snap`, with line-level drift diffs and an
//!   `UPDATE_SNAPSHOTS=1` bless path ([`assert_snapshot`]).
//!
//! Together they enforce the repo's standing determinism invariant:
//! the schedule a spec produces is byte-identical across engine modes,
//! warm/cold solver starts, and cache modes — "snapshot == replay".

pub mod snapshot;
pub mod spec;

pub use snapshot::{
    assert_snapshot, check_snapshot, diff_lines, orphaned_snapshots, snapshot_path, update_mode,
    Snapshot, SnapshotCheck, SnapshotError,
};
pub use spec::{load_spec, parse_spec, Scenario, ScenarioError};
