//! Golden-snapshot verification: canonical rendering, drift diffs, and the
//! `UPDATE_SNAPSHOTS=1` bless path.
//!
//! A [`Snapshot`] is a set of `key = value` entries rendered in sorted key
//! order — insertion order (and therefore `HashMap` iteration order in the
//! caller) never changes the output. [`Snapshot::of`] renders the
//! deterministic view of a [`CampaignSummary`] by reusing
//! [`CampaignSummary::without_wall_clock`] and additionally omitting the
//! solver-activity counters: solver effort legitimately differs across
//! warm/cold solves and cache modes while the *schedule contract* — every
//! other field, plus the [`waterwise_cluster::schedule_digest`] — must stay
//! byte-identical. That is exactly what a golden snapshot pins.
//!
//! [`assert_snapshot`] compares a rendering against
//! `<dir>/<scenario>.snap`. On drift it fails with a line-level diff that
//! names the snapshot file; setting `UPDATE_SNAPSHOTS=1` rewrites the file
//! instead (the bless workflow, see `docs/SCENARIOS.md`).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use waterwise_cluster::{schedule_digest, CampaignSummary, JobOutcome};

/// A canonical, order-independent `key = value` rendering of campaign
/// results.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: BTreeMap<String, String>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical snapshot of one campaign summary (entries under the
    /// `summary.` prefix).
    pub fn of(summary: &CampaignSummary) -> Self {
        let mut snapshot = Self::new();
        snapshot.add_summary("summary", summary);
        snapshot
    }

    /// Add one entry. Keys must be unique; re-adding a key is a
    /// test-authoring bug and panics.
    pub fn entry(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        let key = key.into();
        let value = value.to_string();
        assert!(
            self.entries.insert(key.clone(), value).is_none(),
            "snapshot key `{key}` added twice"
        );
    }

    /// Add the deterministic fields of `summary` under `prefix.`.
    ///
    /// Canonicalization reuses [`CampaignSummary::without_wall_clock`] (so
    /// decision timings and pipeline occupancy can never leak into a
    /// golden) and leaves out [`CampaignSummary::solver`], which measures
    /// solver *effort* — a property of warm starts and caches, not of the
    /// schedule the snapshot certifies.
    pub fn add_summary(&mut self, prefix: &str, summary: &CampaignSummary) {
        let s = summary.without_wall_clock();
        self.entry(format!("{prefix}.total_jobs"), s.total_jobs);
        self.entry(
            format!("{prefix}.total_carbon_g"),
            format!("{:?}", s.total_carbon.value()),
        );
        self.entry(
            format!("{prefix}.total_water_l"),
            format!("{:?}", s.total_water.value()),
        );
        self.entry(
            format!("{prefix}.mean_service_stretch"),
            format!("{:?}", s.mean_service_stretch),
        );
        self.entry(
            format!("{prefix}.violation_fraction"),
            format!("{:?}", s.violation_fraction),
        );
        self.entry(
            format!("{prefix}.migration_fraction"),
            format!("{:?}", s.migration_fraction),
        );
        self.entry(
            format!("{prefix}.jobs_per_region"),
            format!("{:?}", s.jobs_per_region),
        );
        self.entry(
            format!("{prefix}.mean_utilization"),
            format!("{:?}", s.mean_utilization),
        );
    }

    /// Add a schedule's length and order-sensitive digest under `prefix.`.
    pub fn add_schedule(&mut self, prefix: &str, outcomes: &[JobOutcome]) {
        self.entry(format!("{prefix}.jobs"), outcomes.len());
        self.entry(
            format!("{prefix}.digest"),
            format!("{:016x}", schedule_digest(outcomes)),
        );
    }

    /// Render to the stable text form: one `key = value` line per entry,
    /// sorted by key, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(value);
            out.push('\n');
        }
        out
    }
}

/// Whether the bless path is active (`UPDATE_SNAPSHOTS=1` in the
/// environment). CI guards that this is never set there.
pub fn update_mode() -> bool {
    matches!(
        std::env::var("UPDATE_SNAPSHOTS").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// Path of a scenario's golden snapshot inside `dir`.
pub fn snapshot_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{scenario}.snap"))
}

/// Outcome of a successful [`check_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCheck {
    /// The rendering matches the stored golden byte for byte.
    Match,
    /// Bless mode: the golden was (re)written from the rendering.
    Updated,
}

/// A failed snapshot comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// No golden exists yet for this scenario.
    Missing {
        /// Path where the golden was expected.
        path: String,
    },
    /// The rendering differs from the stored golden.
    Drift {
        /// Path of the stored golden.
        path: String,
        /// Line-level diff, `-` golden / `+` actual.
        diff: String,
    },
    /// The golden could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// Underlying error message.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Missing { path } => write!(
                f,
                "missing golden snapshot `{path}`\n  bless it with: UPDATE_SNAPSHOTS=1 cargo test"
            ),
            SnapshotError::Drift { path, diff } => write!(
                f,
                "snapshot drift against `{path}`:\n{diff}  if the change is intended, \
                 re-bless with: UPDATE_SNAPSHOTS=1 cargo test (and commit the diff)"
            ),
            SnapshotError::Io { path, message } => {
                write!(f, "snapshot I/O error at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Compare `rendered` against `<dir>/<scenario>.snap`.
///
/// In bless mode ([`update_mode`]) the golden is rewritten and the check
/// reports [`SnapshotCheck::Updated`]; otherwise a missing golden or any
/// byte difference is a typed error whose message names the snapshot file
/// and shows a line-level diff.
pub fn check_snapshot(
    dir: &Path,
    scenario: &str,
    rendered: &str,
) -> Result<SnapshotCheck, SnapshotError> {
    let path = snapshot_path(dir, scenario);
    let shown = path.display().to_string();
    if update_mode() {
        std::fs::create_dir_all(dir).map_err(|e| SnapshotError::Io {
            path: shown.clone(),
            message: e.to_string(),
        })?;
        std::fs::write(&path, rendered).map_err(|e| SnapshotError::Io {
            path: shown.clone(),
            message: e.to_string(),
        })?;
        return Ok(SnapshotCheck::Updated);
    }
    let stored = match std::fs::read_to_string(&path) {
        Ok(stored) => stored,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(SnapshotError::Missing { path: shown })
        }
        Err(e) => {
            return Err(SnapshotError::Io {
                path: shown,
                message: e.to_string(),
            })
        }
    };
    if stored == rendered {
        return Ok(SnapshotCheck::Match);
    }
    Err(SnapshotError::Drift {
        path: shown,
        diff: diff_lines(&stored, rendered),
    })
}

/// Assert that `rendered` matches the stored golden, panicking with the
/// full diff (naming the `.snap` file) on drift — the `assert_snapshot`
/// idiom. In bless mode the golden is written instead.
pub fn assert_snapshot(dir: &Path, scenario: &str, rendered: &str) {
    if let Err(error) = check_snapshot(dir, scenario, rendered) {
        // lint:allow(DET003: this is the test-harness assert itself — panicking with the diff is the whole point; non-panicking callers use check_snapshot)
        panic!("{error}");
    }
}

/// Line-level diff between a stored golden (`-`) and an actual rendering
/// (`+`). Snapshot lines are sorted `key = value` pairs, so the diff merges
/// by key when both sides have that shape and falls back to a positional
/// comparison otherwise.
pub fn diff_lines(expected: &str, actual: &str) -> String {
    fn keyed(text: &str) -> Option<BTreeMap<&str, &str>> {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let (key, _) = line.split_once(" = ")?;
            if map.insert(key, line).is_some() {
                return None; // duplicate keys: not canonical, fall back
            }
        }
        Some(map)
    }

    let mut out = String::new();
    match (keyed(expected), keyed(actual)) {
        (Some(want), Some(got)) => {
            for key in want
                .keys()
                .chain(got.keys())
                .collect::<std::collections::BTreeSet<_>>()
            {
                match (want.get(*key), got.get(*key)) {
                    (Some(w), Some(g)) if w == g => {}
                    (Some(w), Some(g)) => {
                        out.push_str(&format!("  - {w}\n  + {g}\n"));
                    }
                    (Some(w), None) => out.push_str(&format!("  - {w}\n")),
                    (None, Some(g)) => out.push_str(&format!("  + {g}\n")),
                    // lint:allow(DET003: every key iterated comes from the union of the two maps, so at least one lookup must succeed)
                    (None, None) => unreachable!("key from union of both maps"),
                }
            }
        }
        _ => {
            let want: Vec<&str> = expected.lines().collect();
            let got: Vec<&str> = actual.lines().collect();
            for i in 0..want.len().max(got.len()) {
                match (want.get(i), got.get(i)) {
                    (Some(w), Some(g)) if w == g => {}
                    (w, g) => {
                        if let Some(w) = w {
                            out.push_str(&format!("  - {w}\n"));
                        }
                        if let Some(g) = g {
                            out.push_str(&format!("  + {g}\n"));
                        }
                    }
                }
            }
        }
    }
    out
}

/// `.snap` files in `dir` that belong to no expected scenario — stale
/// goldens left behind by a renamed or deleted scenario. A missing
/// directory has no orphans.
pub fn orphaned_snapshots(dir: &Path, expected: &[&str]) -> Result<Vec<String>, SnapshotError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(SnapshotError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    let mut orphans = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| SnapshotError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("snap") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        if !expected.contains(&stem) {
            orphans.push(path.display().to_string());
        }
    }
    orphans.sort();
    Ok(orphans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use waterwise_cluster::{PipelineStats, SolverActivity};
    use waterwise_sustain::{Co2Grams, Liters, Seconds};

    fn summary() -> CampaignSummary {
        CampaignSummary {
            total_jobs: 120,
            total_carbon: Co2Grams::new(321.5),
            total_water: Liters::new(9.25),
            mean_service_stretch: 1.0625,
            violation_fraction: 0.025,
            migration_fraction: 0.4,
            jobs_per_region: [30, 20, 40, 20, 10],
            mean_utilization: 0.15,
            mean_decision_time: Seconds::zero(),
            decision_overhead_fraction: 0.0,
            solver: SolverActivity::default(),
            pipeline: None,
        }
    }

    #[test]
    fn rendering_is_stable_across_insertion_and_hashmap_order() {
        let pairs: HashMap<String, String> = (0..16)
            .map(|i| (format!("k{i:02}"), format!("v{i}")))
            .collect();
        let mut forward = Snapshot::new();
        for (k, v) in pairs.iter() {
            forward.entry(k.clone(), v);
        }
        let mut reversed = Snapshot::new();
        let mut collected: Vec<_> = pairs.iter().collect();
        collected.reverse();
        for (k, v) in collected {
            reversed.entry(k.clone(), v);
        }
        assert_eq!(forward.render(), reversed.render());
        // And the render is actually sorted.
        let rendered = forward.render();
        let lines: Vec<&str> = rendered.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn summary_rendering_excludes_wall_clock_and_solver_effort() {
        let clean = summary();
        let mut noisy = summary();
        noisy.mean_decision_time = Seconds::new(0.125);
        noisy.decision_overhead_fraction = 0.5;
        noisy.pipeline = Some(PipelineStats {
            workers: 4,
            solve_requests: 9,
            ..PipelineStats::default()
        });
        noisy.solver.solves = 500;
        noisy.solver.simplex_pivots = 12_345;
        assert_eq!(
            Snapshot::of(&clean).render(),
            Snapshot::of(&noisy).render(),
            "wall-clock and solver-effort fields must not reach the golden"
        );
        // The fields the snapshot *does* pin are all present.
        let rendered = Snapshot::of(&clean).render();
        for key in [
            "summary.total_jobs",
            "summary.total_carbon_g",
            "summary.total_water_l",
            "summary.mean_service_stretch",
            "summary.violation_fraction",
            "summary.migration_fraction",
            "summary.jobs_per_region",
            "summary.mean_utilization",
        ] {
            assert!(rendered.contains(key), "missing `{key}` in:\n{rendered}");
        }
    }

    #[test]
    fn drift_reports_a_line_diff_naming_the_snapshot_file() {
        if update_mode() {
            return; // bless runs rewrite instead of failing; nothing to test
        }
        let dir = std::env::temp_dir().join(format!("ww-snap-drift-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            snapshot_path(&dir, "demo"),
            "a = 1\nsummary.total_jobs = 120\n",
        )
        .unwrap();
        let err = check_snapshot(&dir, "demo", "a = 1\nsummary.total_jobs = 121\n").unwrap_err();
        let message = err.to_string();
        assert!(message.contains("demo.snap"), "diff must name the file");
        assert!(message.contains("- summary.total_jobs = 120"));
        assert!(message.contains("+ summary.total_jobs = 121"));
        assert!(!message.contains("- a = 1"), "unchanged lines stay out");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_points_at_the_bless_workflow() {
        if update_mode() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("ww-snap-missing-{}", std::process::id()));
        let err = check_snapshot(&dir, "nope", "x = 1\n").unwrap_err();
        assert!(matches!(err, SnapshotError::Missing { .. }));
        assert!(err.to_string().contains("UPDATE_SNAPSHOTS=1"));
    }

    #[test]
    fn orphaned_snapshots_are_detected() {
        let dir = std::env::temp_dir().join(format!("ww-snap-orphan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(snapshot_path(&dir, "kept"), "x = 1\n").unwrap();
        std::fs::write(snapshot_path(&dir, "stale"), "x = 1\n").unwrap();
        std::fs::write(dir.join("README.md"), "not a snapshot").unwrap();
        let orphans = orphaned_snapshots(&dir, &["kept"]).unwrap();
        assert_eq!(orphans.len(), 1);
        assert!(orphans[0].ends_with("stale.snap"));
        assert_eq!(
            orphaned_snapshots(&dir.join("missing-subdir"), &["kept"]).unwrap(),
            Vec::<String>::new()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedule_entries_pin_length_and_digest() {
        let mut snapshot = Snapshot::new();
        snapshot.add_schedule("waterwise", &[]);
        let rendered = snapshot.render();
        assert!(rendered.contains("waterwise.jobs = 0"));
        assert!(rendered.contains(&format!(
            "waterwise.digest = {:016x}",
            waterwise_cluster::schedule_digest(&[])
        )));
    }
}
