//! The declarative scenario spec format and its strict parser.
//!
//! A *scenario* is everything a campaign run needs, written down as data: the
//! workload trace shape, the simulated cluster, synthetic telemetry,
//! objective weights, the WaterWise solver knobs, and the engine/clock/cache
//! execution modes. Specs live in `scenarios/*.spec` at the repository root
//! and are loaded by the bench binaries (`--scenario` / `WATERWISE_SCENARIO`)
//! and by `placement_server`; see `docs/SCENARIOS.md` for the grammar and a
//! worked example.
//!
//! The format is line-based `key = value` pairs under `[section]` headers,
//! with `#` comments. Compat `serde` is a no-op, so the parser is hand-rolled
//! in the style of `waterwise_service::wire`: strict (unknown sections/keys,
//! duplicates, malformed or out-of-range values are typed errors, never
//! panics), and every error carries the offending line number so callers can
//! report `path:line: message`.

use crate::experiment::{CampaignConfig, Parallelism, SolutionCacheMode};
use crate::objective::ObjectiveWeights;
use std::fmt;
use std::path::Path;
use waterwise_cluster::{ClockMode, ConfigError, EngineMode};
use waterwise_sustain::Seconds;
use waterwise_telemetry::Region;
use waterwise_traces::{Benchmark, TraceConfig, TraceKind};

/// One parsed scenario: a named, seeded, ready-to-run [`CampaignConfig`]
/// plus the service clock mode (which only the online paths consume).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name; also names the golden snapshot file
    /// (`tests/snapshots/<name>.snap`).
    pub name: String,
    /// The campaign seed (trace and, unless overridden, telemetry).
    pub seed: u64,
    /// Trace duration in days, kept verbatim so serialization roundtrips
    /// bit-exactly (the duration in [`CampaignConfig::trace`] is derived
    /// from it).
    pub days: f64,
    /// Clock mode for the online service paths (`placement_server`,
    /// `fig17`); offline campaigns ignore it.
    pub clock: ClockMode,
    /// The assembled campaign configuration.
    pub config: CampaignConfig,
}

impl Scenario {
    /// Rescale the trace duration (the `WATERWISE_DAYS` override), keeping
    /// the derived telemetry horizon in sync exactly as
    /// [`CampaignConfig::paper_default`] would: `max(ceil(days) + 2, 3)`
    /// days. An explicit `horizon_days` from the spec is recomputed too —
    /// the override rescales the whole scenario.
    pub fn with_days(mut self, days: f64) -> Self {
        let days = days.max(0.01);
        self.days = days;
        self.config.trace.duration = Seconds::from_hours(days * 24.0);
        self.config.telemetry.horizon_days = (days.ceil() as usize + 2).max(3);
        self
    }

    /// Reseed the scenario (the `WATERWISE_SEED` override): trace and
    /// telemetry seeds both follow.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.config.trace.seed = seed;
        self.config.telemetry.seed = seed;
        self
    }

    /// Render the scenario back to canonical spec text: every key explicit,
    /// sections in fixed order, floats in shortest-roundtrip form. Parsing
    /// the result yields an identical scenario (the property the roundtrip
    /// tests pin). A runtime-only [`SolutionCacheMode::Shared`] handle has
    /// no declarative form and renders as `off`.
    pub fn to_spec(&self) -> String {
        let c = &self.config;
        let mut out = String::with_capacity(1024);
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!(
            "# WaterWise scenario `{}` (canonical form)",
            self.name
        ));
        line("[scenario]".into());
        line(format!("name = {}", self.name));
        line(format!("seed = {}", self.seed));
        line(String::new());
        line("[trace]".into());
        line(format!(
            "kind = {}",
            match c.trace.kind {
                TraceKind::BorgLike => "borg",
                TraceKind::AlibabaLike => "alibaba",
            }
        ));
        line(format!("days = {:?}", self.days));
        line(format!("rate_multiplier = {:?}", c.trace.rate_multiplier));
        line(format!(
            "benchmarks = {}",
            c.trace
                .benchmarks
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        line(format!(
            "regions = {}",
            c.simulation
                .regions
                .iter()
                .map(|(r, _)| r.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        line(String::new());
        line("[simulation]".into());
        line(format!(
            "servers_per_region = {}",
            c.simulation.regions.first().map_or(0, |(_, n)| *n)
        ));
        line(format!(
            "delay_tolerance = {:?}",
            c.simulation.delay_tolerance
        ));
        line(format!(
            "scheduling_interval_s = {:?}",
            c.simulation.scheduling_interval.value()
        ));
        line(format!(
            "engine = {}",
            match c.simulation.engine {
                EngineMode::Sync => "sync".to_string(),
                EngineMode::Pipelined { workers } => format!("pipelined:{workers}"),
            }
        ));
        line(format!(
            "clock = {}",
            match self.clock {
                ClockMode::Discrete => "discrete".to_string(),
                ClockMode::RealTime { scale } => format!("real-time:{scale:?}"),
            }
        ));
        line(format!(
            "embodied_perturbation = {:?}",
            c.simulation.embodied_perturbation
        ));
        line(String::new());
        line("[telemetry]".into());
        line(format!(
            "dataset = {}",
            match c.telemetry.dataset {
                waterwise_sustain::EwifDataset::Primary => "primary",
                waterwise_sustain::EwifDataset::WorldResourcesInstitute => "wri",
            }
        ));
        line(format!("horizon_days = {}", c.telemetry.horizon_days));
        line(format!("seed = {}", c.telemetry.seed));
        line(String::new());
        line("[objective]".into());
        line(format!("lambda_co2 = {:?}", c.waterwise.weights.lambda_co2));
        line(format!("lambda_ref = {:?}", c.waterwise.weights.lambda_ref));
        line(String::new());
        line("[waterwise]".into());
        line(format!("warm_start = {}", c.waterwise.warm_start));
        line(format!(
            "horizon = {}",
            c.waterwise
                .horizon
                .map_or("capacity".to_string(), |h| h.to_string())
        ));
        line(format!(
            "parallelism = {}",
            parallelism_label(c.waterwise.parallelism)
        ));
        line(format!(
            "history_window_hours = {}",
            c.waterwise.history_window_hours
        ));
        line(format!("soft_penalty = {:?}", c.waterwise.soft_penalty));
        line(String::new());
        line("[campaign]".into());
        line(format!(
            "solution_cache = {}",
            match c.solution_cache {
                SolutionCacheMode::Off | SolutionCacheMode::Shared(_) => "off",
                SolutionCacheMode::PerCampaign => "per-campaign",
            }
        ));
        line(format!(
            "parallelism = {}",
            parallelism_label(c.parallelism)
        ));
        line(format!(
            "estimate_carbon_error = {:?}",
            c.estimate_carbon_error
        ));
        line(format!(
            "estimate_water_error = {:?}",
            c.estimate_water_error
        ));
        line(format!(
            "cache_path = {}",
            c.cache_path
                .as_ref()
                .map_or_else(|| "none".to_string(), |p| p.display().to_string())
        ));
        line(format!("cache_autosave = {}", c.cache_autosave));
        out
    }
}

fn parallelism_label(p: Parallelism) -> String {
    match p {
        Parallelism::Serial => "serial".to_string(),
        Parallelism::Auto => "auto".to_string(),
        Parallelism::Threads(n) => format!("threads:{n}"),
    }
}

/// Any failure while reading, parsing, or validating a scenario spec.
///
/// Every parse-time variant carries the 1-based line number of the offending
/// line (see [`ScenarioError::line`]); [`ScenarioError::Config`] wraps the
/// typed [`ConfigError`] of `waterwise-cluster` for cross-field validation
/// failures detected after assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The spec file could not be read.
    Io {
        /// Path that failed to read.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A line is not a comment, a `[section]` header, or a `key = value`
    /// pair — or a key appeared before any section header.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A section header names no known section.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The unrecognized section name.
        section: String,
    },
    /// A key is not defined in its section.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// Section the key appeared in.
        section: &'static str,
        /// The unrecognized key.
        key: String,
    },
    /// The same key was assigned twice in one section.
    DuplicateKey {
        /// 1-based line number of the second assignment.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A value has the wrong form for its key (not a number, an unknown
    /// label, a malformed list, ...).
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// Key whose value is invalid.
        key: &'static str,
        /// What was wrong.
        message: String,
    },
    /// A value parsed but lies outside the key's permitted range.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// Key whose value is out of range.
        key: &'static str,
        /// The violated bound.
        message: String,
    },
    /// A required key is absent.
    MissingKey {
        /// Section the key belongs to.
        section: &'static str,
        /// The missing key.
        key: &'static str,
    },
    /// The assembled configuration failed `waterwise-cluster` validation.
    Config(ConfigError),
}

impl ScenarioError {
    /// The 1-based source line of the error, when it has one.
    pub fn line(&self) -> Option<usize> {
        match self {
            ScenarioError::Syntax { line, .. }
            | ScenarioError::UnknownSection { line, .. }
            | ScenarioError::UnknownKey { line, .. }
            | ScenarioError::DuplicateKey { line, .. }
            | ScenarioError::InvalidValue { line, .. }
            | ScenarioError::OutOfRange { line, .. } => Some(*line),
            ScenarioError::Io { .. }
            | ScenarioError::MissingKey { .. }
            | ScenarioError::Config(_) => None,
        }
    }

    /// The error message without any location prefix.
    fn message(&self) -> String {
        match self {
            ScenarioError::Io { path, message } => {
                format!("cannot read scenario spec `{path}`: {message}")
            }
            ScenarioError::Syntax { message, .. } => message.clone(),
            ScenarioError::UnknownSection { section, .. } => {
                format!("unknown section `[{section}]`")
            }
            ScenarioError::UnknownKey { section, key, .. } => {
                format!("unknown key `{key}` in `[{section}]`")
            }
            ScenarioError::DuplicateKey { key, .. } => format!("duplicate key `{key}`"),
            ScenarioError::InvalidValue { key, message, .. } => {
                format!("invalid value for `{key}`: {message}")
            }
            ScenarioError::OutOfRange { key, message, .. } => {
                format!("value for `{key}` out of range: {message}")
            }
            ScenarioError::MissingKey { section, key } => {
                format!("missing required key `{key}` in `[{section}]`")
            }
            ScenarioError::Config(e) => format!("invalid scenario configuration: {e}"),
        }
    }

    /// Render as `path:line: message` (or `path: message` for errors without
    /// a line), the fail-fast format `run_all` prints before exiting.
    pub fn located(&self, path: impl fmt::Display) -> String {
        match self.line() {
            Some(line) => format!("{path}:{line}: {}", self.message()),
            None => format!("{path}: {}", self.message()),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line() {
            Some(line) => write!(f, "line {line}: {}", self.message()),
            None => f.write_str(&self.message()),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

/// Read and parse a scenario spec file.
pub fn load_spec(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_spec(&text)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Scenario,
    Trace,
    Simulation,
    Telemetry,
    Objective,
    WaterWise,
    Campaign,
}

impl Section {
    fn name(self) -> &'static str {
        match self {
            Section::Scenario => "scenario",
            Section::Trace => "trace",
            Section::Simulation => "simulation",
            Section::Telemetry => "telemetry",
            Section::Objective => "objective",
            Section::WaterWise => "waterwise",
            Section::Campaign => "campaign",
        }
    }

    fn from_name(name: &str) -> Option<Section> {
        match name {
            "scenario" => Some(Section::Scenario),
            "trace" => Some(Section::Trace),
            "simulation" => Some(Section::Simulation),
            "telemetry" => Some(Section::Telemetry),
            "objective" => Some(Section::Objective),
            "waterwise" => Some(Section::WaterWise),
            "campaign" => Some(Section::Campaign),
            _ => None,
        }
    }
}

/// Every optional field of a spec, collected before assembly. Required keys
/// are checked in [`RawSpec::build`].
#[derive(Default)]
struct RawSpec {
    name: Option<String>,
    seed: Option<u64>,
    kind: Option<TraceKind>,
    days: Option<f64>,
    rate_multiplier: Option<f64>,
    benchmarks: Option<Vec<Benchmark>>,
    regions: Option<Vec<Region>>,
    servers_per_region: Option<usize>,
    delay_tolerance: Option<f64>,
    scheduling_interval_s: Option<f64>,
    engine: Option<EngineMode>,
    clock: Option<ClockMode>,
    embodied_perturbation: Option<f64>,
    dataset: Option<waterwise_sustain::EwifDataset>,
    horizon_days: Option<usize>,
    telemetry_seed: Option<u64>,
    lambda_co2: Option<f64>,
    lambda_ref: Option<f64>,
    warm_start: Option<bool>,
    horizon: Option<Option<usize>>,
    ww_parallelism: Option<Parallelism>,
    history_window_hours: Option<usize>,
    soft_penalty: Option<f64>,
    solution_cache: Option<SolutionCacheMode>,
    campaign_parallelism: Option<Parallelism>,
    estimate_carbon_error: Option<f64>,
    estimate_water_error: Option<f64>,
    cache_path: Option<Option<std::path::PathBuf>>,
    cache_autosave: Option<bool>,
}

/// Parse spec text into a [`Scenario`]. Strict: every line must be blank, a
/// comment, a known `[section]` header, or a known `key = value` pair with a
/// well-formed, in-range value; anything else is a typed [`ScenarioError`].
pub fn parse_spec(text: &str) -> Result<Scenario, ScenarioError> {
    let mut raw = RawSpec::default();
    let mut section: Option<Section> = None;
    for (idx, full_line) in text.lines().enumerate() {
        let line = idx + 1;
        // `#` starts a comment anywhere on the line; no spec value contains
        // a literal `#`.
        let content = full_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if let Some(rest) = content.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ScenarioError::Syntax {
                    line,
                    message: format!("unterminated section header `{content}`"),
                });
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(ScenarioError::Syntax {
                    line,
                    message: "empty section header `[]`".to_string(),
                });
            }
            section =
                Some(
                    Section::from_name(name).ok_or_else(|| ScenarioError::UnknownSection {
                        line,
                        section: name.to_string(),
                    })?,
                );
            continue;
        }
        let Some((key, value)) = content.split_once('=') else {
            return Err(ScenarioError::Syntax {
                line,
                message: format!("expected `key = value` or `[section]`, got `{content}`"),
            });
        };
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() {
            return Err(ScenarioError::Syntax {
                line,
                message: "empty key before `=`".to_string(),
            });
        }
        let Some(section) = section else {
            return Err(ScenarioError::Syntax {
                line,
                message: format!("key `{key}` before any `[section]` header"),
            });
        };
        set_key(&mut raw, section, key, value, line)?;
    }
    raw.build()
}

/// `Some(already_set)` → duplicate-key error; otherwise store.
fn store<T>(slot: &mut Option<T>, value: T, key: &str, line: usize) -> Result<(), ScenarioError> {
    if slot.is_some() {
        return Err(ScenarioError::DuplicateKey {
            line,
            key: key.to_string(),
        });
    }
    *slot = Some(value);
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn set_key(
    raw: &mut RawSpec,
    section: Section,
    key: &str,
    value: &str,
    line: usize,
) -> Result<(), ScenarioError> {
    match (section, key) {
        (Section::Scenario, "name") => store(&mut raw.name, parse_name(value, line)?, key, line),
        (Section::Scenario, "seed") => {
            store(&mut raw.seed, parse_u64(value, "seed", line)?, key, line)
        }
        (Section::Trace, "kind") => store(
            &mut raw.kind,
            match value {
                "borg" => TraceKind::BorgLike,
                "alibaba" => TraceKind::AlibabaLike,
                other => {
                    return Err(ScenarioError::InvalidValue {
                        line,
                        key: "kind",
                        message: format!("unknown trace kind `{other}` (borg | alibaba)"),
                    })
                }
            },
            key,
            line,
        ),
        (Section::Trace, "days") => {
            let days = parse_f64(value, "days", line)?;
            if days <= 0.0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "days",
                    message: format!("trace duration must be positive, got {days}"),
                });
            }
            store(&mut raw.days, days, key, line)
        }
        (Section::Trace, "rate_multiplier") => {
            let rate = parse_f64(value, "rate_multiplier", line)?;
            if rate <= 0.0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "rate_multiplier",
                    message: format!("arrival-rate multiplier must be positive, got {rate}"),
                });
            }
            store(&mut raw.rate_multiplier, rate, key, line)
        }
        (Section::Trace, "benchmarks") => store(
            &mut raw.benchmarks,
            parse_benchmarks(value, line)?,
            key,
            line,
        ),
        (Section::Trace, "regions") => {
            store(&mut raw.regions, parse_regions(value, line)?, key, line)
        }
        (Section::Simulation, "servers_per_region") => {
            let servers = parse_usize(value, "servers_per_region", line)?;
            if servers == 0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "servers_per_region",
                    message: "every region needs at least one server".to_string(),
                });
            }
            store(&mut raw.servers_per_region, servers, key, line)
        }
        (Section::Simulation, "delay_tolerance") => {
            let tol = parse_f64(value, "delay_tolerance", line)?;
            if tol < 0.0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "delay_tolerance",
                    message: format!("delay tolerance cannot be negative, got {tol}"),
                });
            }
            store(&mut raw.delay_tolerance, tol, key, line)
        }
        (Section::Simulation, "scheduling_interval_s") => store(
            &mut raw.scheduling_interval_s,
            // Positivity is deliberately left to `SimulationConfig::validate`
            // so non-positive intervals surface as the typed cluster
            // `ConfigError::NonPositiveSchedulingInterval`.
            parse_f64(value, "scheduling_interval_s", line)?,
            key,
            line,
        ),
        (Section::Simulation, "engine") => {
            store(&mut raw.engine, parse_engine(value, line)?, key, line)
        }
        (Section::Simulation, "clock") => {
            store(&mut raw.clock, parse_clock(value, line)?, key, line)
        }
        (Section::Simulation, "embodied_perturbation") => store(
            &mut raw.embodied_perturbation,
            // Positivity via `validate` → `ConfigError::NonPositiveEmbodiedPerturbation`.
            parse_f64(value, "embodied_perturbation", line)?,
            key,
            line,
        ),
        (Section::Telemetry, "dataset") => store(
            &mut raw.dataset,
            match value {
                "primary" | "electricity-maps" => waterwise_sustain::EwifDataset::Primary,
                "wri" | "world-resources-institute" => {
                    waterwise_sustain::EwifDataset::WorldResourcesInstitute
                }
                other => {
                    return Err(ScenarioError::InvalidValue {
                        line,
                        key: "dataset",
                        message: format!("unknown EWIF dataset `{other}` (primary | wri)"),
                    })
                }
            },
            key,
            line,
        ),
        (Section::Telemetry, "horizon_days") => {
            let days = parse_usize(value, "horizon_days", line)?;
            if days == 0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "horizon_days",
                    message: "telemetry horizon must cover at least one day".to_string(),
                });
            }
            store(&mut raw.horizon_days, days, key, line)
        }
        (Section::Telemetry, "seed") => store(
            &mut raw.telemetry_seed,
            parse_u64(value, "seed", line)?,
            key,
            line,
        ),
        (Section::Objective, "lambda_co2") => {
            let lambda = parse_f64(value, "lambda_co2", line)?;
            if !(0.0..=1.0).contains(&lambda) {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "lambda_co2",
                    message: format!(
                        "carbon weight must lie in [0, 1] (λ_H2O = 1 − λ_CO2), got {lambda}"
                    ),
                });
            }
            store(&mut raw.lambda_co2, lambda, key, line)
        }
        (Section::Objective, "lambda_ref") => {
            let lambda = parse_f64(value, "lambda_ref", line)?;
            if lambda < 0.0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "lambda_ref",
                    message: format!("reference weight cannot be negative, got {lambda}"),
                });
            }
            store(&mut raw.lambda_ref, lambda, key, line)
        }
        (Section::WaterWise, "warm_start") => store(
            &mut raw.warm_start,
            parse_bool(value, "warm_start", line)?,
            key,
            line,
        ),
        (Section::WaterWise, "horizon") => store(
            &mut raw.horizon,
            if value == "capacity" {
                None
            } else {
                let h = parse_usize(value, "horizon", line)?;
                if h == 0 {
                    return Err(ScenarioError::OutOfRange {
                        line,
                        key: "horizon",
                        message: "a sliding-window horizon must admit at least one job \
                                  (use `capacity` for the unbounded window)"
                            .to_string(),
                    });
                }
                Some(h)
            },
            key,
            line,
        ),
        (Section::WaterWise, "parallelism") => store(
            &mut raw.ww_parallelism,
            parse_parallelism(value, line)?,
            key,
            line,
        ),
        (Section::WaterWise, "history_window_hours") => {
            let hours = parse_usize(value, "history_window_hours", line)?;
            if hours == 0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "history_window_hours",
                    message: "the reference-footprint history window cannot be empty".to_string(),
                });
            }
            store(&mut raw.history_window_hours, hours, key, line)
        }
        (Section::WaterWise, "soft_penalty") => {
            let sigma = parse_f64(value, "soft_penalty", line)?;
            if sigma <= 0.0 {
                return Err(ScenarioError::OutOfRange {
                    line,
                    key: "soft_penalty",
                    message: format!("the relaxation penalty σ must be positive, got {sigma}"),
                });
            }
            store(&mut raw.soft_penalty, sigma, key, line)
        }
        (Section::Campaign, "solution_cache") => store(
            &mut raw.solution_cache,
            match value {
                "off" => SolutionCacheMode::Off,
                "per-campaign" => SolutionCacheMode::PerCampaign,
                "shared" => {
                    return Err(ScenarioError::InvalidValue {
                        line,
                        key: "solution_cache",
                        message: "a shared cache holds a runtime handle and cannot be \
                                  declared in a spec (off | per-campaign)"
                            .to_string(),
                    })
                }
                other => {
                    return Err(ScenarioError::InvalidValue {
                        line,
                        key: "solution_cache",
                        message: format!("unknown cache mode `{other}` (off | per-campaign)"),
                    })
                }
            },
            key,
            line,
        ),
        (Section::Campaign, "parallelism") => store(
            &mut raw.campaign_parallelism,
            parse_parallelism(value, line)?,
            key,
            line,
        ),
        (Section::Campaign, "estimate_carbon_error") => store(
            &mut raw.estimate_carbon_error,
            parse_estimate_error(value, "estimate_carbon_error", line)?,
            key,
            line,
        ),
        (Section::Campaign, "estimate_water_error") => store(
            &mut raw.estimate_water_error,
            parse_estimate_error(value, "estimate_water_error", line)?,
            key,
            line,
        ),
        // `none` is the explicit no-persistence sentinel: `#` starts a
        // comment anywhere on a line, so a literal path is any other
        // non-empty `#`-free string.
        (Section::Campaign, "cache_path") => store(
            &mut raw.cache_path,
            match value {
                "none" => None,
                "" => {
                    return Err(ScenarioError::InvalidValue {
                        line,
                        key: "cache_path",
                        message: "expected `none` or a snapshot file path".to_string(),
                    })
                }
                path => Some(std::path::PathBuf::from(path)),
            },
            key,
            line,
        ),
        (Section::Campaign, "cache_autosave") => store(
            &mut raw.cache_autosave,
            parse_bool(value, "cache_autosave", line)?,
            key,
            line,
        ),
        (section, key) => Err(ScenarioError::UnknownKey {
            line,
            section: section.name(),
            key: key.to_string(),
        }),
    }
}

impl RawSpec {
    fn build(self) -> Result<Scenario, ScenarioError> {
        let name = self.name.ok_or(ScenarioError::MissingKey {
            section: "scenario",
            key: "name",
        })?;
        let seed = self.seed.ok_or(ScenarioError::MissingKey {
            section: "scenario",
            key: "seed",
        })?;
        let days = self.days.ok_or(ScenarioError::MissingKey {
            section: "trace",
            key: "days",
        })?;

        let mut config =
            CampaignConfig::paper_default(days, self.delay_tolerance.unwrap_or(0.5), seed);
        if self.kind == Some(TraceKind::AlibabaLike) {
            config.trace = TraceConfig::alibaba(days, seed);
        }
        if let Some(rate) = self.rate_multiplier {
            config.trace.rate_multiplier = rate;
        }
        if let Some(benchmarks) = self.benchmarks {
            config.trace.benchmarks = benchmarks;
        }
        if let Some(servers) = self.servers_per_region {
            config = config.with_servers_per_region(servers);
        }
        if let Some(interval) = self.scheduling_interval_s {
            config.simulation.scheduling_interval = Seconds::new(interval);
        }
        if let Some(perturbation) = self.embodied_perturbation {
            config.simulation.embodied_perturbation = perturbation;
        }
        config.simulation.engine = self.engine.unwrap_or(EngineMode::Sync);
        if let Some(dataset) = self.dataset {
            config.telemetry.dataset = dataset;
        }
        if let Some(horizon_days) = self.horizon_days {
            config.telemetry.horizon_days = horizon_days;
        }
        if let Some(telemetry_seed) = self.telemetry_seed {
            config.telemetry.seed = telemetry_seed;
        }
        let mut weights =
            ObjectiveWeights::paper_default().with_carbon_weight(self.lambda_co2.unwrap_or(0.5));
        if let Some(lambda_ref) = self.lambda_ref {
            weights.lambda_ref = lambda_ref;
        }
        config.waterwise.weights = weights;
        if let Some(warm) = self.warm_start {
            config.waterwise.warm_start = warm;
        }
        if let Some(horizon) = self.horizon {
            config.waterwise.horizon = horizon;
        }
        if let Some(parallelism) = self.ww_parallelism {
            config.waterwise.parallelism = parallelism;
        }
        if let Some(hours) = self.history_window_hours {
            config.waterwise.history_window_hours = hours;
        }
        if let Some(sigma) = self.soft_penalty {
            config.waterwise.soft_penalty = sigma;
        }
        config.solution_cache = self.solution_cache.unwrap_or(SolutionCacheMode::Off);
        config.parallelism = self.campaign_parallelism.unwrap_or(Parallelism::Auto);
        if let Some(error) = self.estimate_carbon_error {
            config.estimate_carbon_error = error;
        }
        if let Some(error) = self.estimate_water_error {
            config.estimate_water_error = error;
        }
        config.cache_path = self.cache_path.unwrap_or(None);
        config.cache_autosave = self.cache_autosave.unwrap_or(false);
        if let Some(regions) = self.regions {
            config = config.with_regions(&regions);
        }
        // Cross-field validation through the cluster layer, so its typed
        // `ConfigError`s (no regions, non-positive interval, ...) surface
        // unchanged.
        config.simulation.validate()?;
        Ok(Scenario {
            name,
            seed,
            days,
            clock: self.clock.unwrap_or(ClockMode::Discrete),
            config,
        })
    }
}

// ---------------------------------------------------------------------------
// Value parsers
// ---------------------------------------------------------------------------

fn parse_name(value: &str, line: usize) -> Result<String, ScenarioError> {
    let valid = !value.is_empty()
        && value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if !valid {
        return Err(ScenarioError::InvalidValue {
            line,
            key: "name",
            message: format!(
                "`{value}` is not a valid scenario name \
                 (ASCII letters, digits, `-`, `_`; it names the snapshot file)"
            ),
        });
    }
    Ok(value.to_string())
}

fn parse_f64(value: &str, key: &'static str, line: usize) -> Result<f64, ScenarioError> {
    let number: f64 = value.parse().map_err(|_| ScenarioError::InvalidValue {
        line,
        key,
        message: format!("`{value}` is not a number"),
    })?;
    if !number.is_finite() {
        return Err(ScenarioError::OutOfRange {
            line,
            key,
            message: format!("`{value}` is not finite"),
        });
    }
    Ok(number)
}

fn parse_u64(value: &str, key: &'static str, line: usize) -> Result<u64, ScenarioError> {
    value.parse().map_err(|_| ScenarioError::InvalidValue {
        line,
        key,
        message: format!("`{value}` is not an unsigned integer"),
    })
}

fn parse_usize(value: &str, key: &'static str, line: usize) -> Result<usize, ScenarioError> {
    value.parse().map_err(|_| ScenarioError::InvalidValue {
        line,
        key,
        message: format!("`{value}` is not an unsigned integer"),
    })
}

fn parse_bool(value: &str, key: &'static str, line: usize) -> Result<bool, ScenarioError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(ScenarioError::InvalidValue {
            line,
            key,
            message: format!("`{other}` is not a boolean (true | false)"),
        }),
    }
}

fn parse_estimate_error(value: &str, key: &'static str, line: usize) -> Result<f64, ScenarioError> {
    let factor = parse_f64(value, key, line)?;
    if factor <= 0.0 {
        return Err(ScenarioError::OutOfRange {
            line,
            key,
            message: format!("a multiplicative estimate error must be positive, got {factor}"),
        });
    }
    Ok(factor)
}

fn parse_engine(value: &str, line: usize) -> Result<EngineMode, ScenarioError> {
    if value == "sync" {
        return Ok(EngineMode::Sync);
    }
    if let Some(rest) = value.strip_prefix("pipelined:") {
        let workers = parse_usize(rest, "engine", line)?;
        if workers == 0 {
            return Err(ScenarioError::OutOfRange {
                line,
                key: "engine",
                message: "pipelined workers must be ≥ 1 (use `sync` for the synchronous engine)"
                    .to_string(),
            });
        }
        return Ok(EngineMode::Pipelined { workers });
    }
    Err(ScenarioError::InvalidValue {
        line,
        key: "engine",
        message: format!("unknown engine mode `{value}` (sync | pipelined:<workers>)"),
    })
}

fn parse_clock(value: &str, line: usize) -> Result<ClockMode, ScenarioError> {
    if value == "discrete" {
        return Ok(ClockMode::Discrete);
    }
    if let Some(rest) = value
        .strip_prefix("real-time:")
        .or_else(|| value.strip_prefix("realtime:"))
    {
        let scale = parse_f64(rest, "clock", line)?;
        if scale <= 0.0 {
            return Err(ScenarioError::OutOfRange {
                line,
                key: "clock",
                message: format!("real-time scale must be positive, got {scale}"),
            });
        }
        return Ok(ClockMode::RealTime { scale });
    }
    Err(ScenarioError::InvalidValue {
        line,
        key: "clock",
        message: format!("unknown clock mode `{value}` (discrete | real-time:<scale>)"),
    })
}

fn parse_parallelism(value: &str, line: usize) -> Result<Parallelism, ScenarioError> {
    match value {
        "serial" => return Ok(Parallelism::Serial),
        "auto" => return Ok(Parallelism::Auto),
        _ => {}
    }
    if let Some(rest) = value.strip_prefix("threads:") {
        let threads = parse_usize(rest, "parallelism", line)?;
        if threads == 0 {
            return Err(ScenarioError::OutOfRange {
                line,
                key: "parallelism",
                message: "a thread pool needs at least one worker (or use `serial`)".to_string(),
            });
        }
        return Ok(Parallelism::Threads(threads));
    }
    Err(ScenarioError::InvalidValue {
        line,
        key: "parallelism",
        message: format!("unknown parallelism `{value}` (serial | auto | threads:<n>)"),
    })
}

fn parse_list<'a>(
    value: &'a str,
    key: &'static str,
    line: usize,
) -> Result<Vec<&'a str>, ScenarioError> {
    let items: Vec<&str> = value.split(',').map(str::trim).collect();
    if items.iter().any(|item| item.is_empty()) {
        return Err(ScenarioError::InvalidValue {
            line,
            key,
            message: "empty list entry (trailing or doubled comma?)".to_string(),
        });
    }
    Ok(items)
}

fn parse_benchmarks(value: &str, line: usize) -> Result<Vec<Benchmark>, ScenarioError> {
    let mut benchmarks = Vec::new();
    for item in parse_list(value, "benchmarks", line)? {
        let benchmark = Benchmark::from_name(item).ok_or_else(|| ScenarioError::InvalidValue {
            line,
            key: "benchmarks",
            message: format!("unknown benchmark `{item}`"),
        })?;
        if benchmarks.contains(&benchmark) {
            return Err(ScenarioError::InvalidValue {
                line,
                key: "benchmarks",
                message: format!("duplicate benchmark `{item}` (it would skew the workload mix)"),
            });
        }
        benchmarks.push(benchmark);
    }
    Ok(benchmarks)
}

fn parse_regions(value: &str, line: usize) -> Result<Vec<Region>, ScenarioError> {
    let mut regions = Vec::new();
    for item in parse_list(value, "regions", line)? {
        let region = Region::from_name(item).ok_or_else(|| ScenarioError::InvalidValue {
            line,
            key: "regions",
            message: format!("unknown region `{item}` (Zurich | Madrid | Oregon | Milan | Mumbai)"),
        })?;
        if regions.contains(&region) {
            return Err(ScenarioError::InvalidValue {
                line,
                key: "regions",
                message: format!("duplicate region `{item}`"),
            });
        }
        regions.push(region);
    }
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "[scenario]\nname = t\nseed = 7\n[trace]\ndays = 0.02\n";

    #[test]
    fn minimal_spec_gets_paper_defaults() {
        let scenario = parse_spec(MINIMAL).expect("minimal spec parses");
        assert_eq!(scenario.name, "t");
        assert_eq!(scenario.seed, 7);
        let reference = CampaignConfig::paper_default(0.02, 0.5, 7);
        assert_eq!(
            format!("{:?}", scenario.config),
            format!("{reference:?}"),
            "minimal spec must equal paper_default"
        );
        assert_eq!(scenario.clock, ClockMode::Discrete);
    }

    #[test]
    fn comments_whitespace_and_ordering_are_immaterial() {
        let spec = "  # leading comment\n[trace]\ndays = 0.02   # trailing\n\n\
                    [scenario]\n  seed=7\nname =   t\n";
        let a = parse_spec(MINIMAL).unwrap();
        let b = parse_spec(spec).unwrap();
        assert_eq!(format!("{:?}", a.config), format!("{:?}", b.config));
    }

    #[test]
    fn canonical_form_roundtrips() {
        let spec = "[scenario]\nname = rt\nseed = 11\n[trace]\nkind = alibaba\ndays = 0.03\n\
                    rate_multiplier = 2.0\nbenchmarks = dedup, canneal\n\
                    regions = Zurich, Oregon, Mumbai\n[simulation]\nservers_per_region = 64\n\
                    delay_tolerance = 0.75\nengine = pipelined:3\nclock = real-time:120.5\n\
                    [objective]\nlambda_co2 = 0.3\n[waterwise]\nwarm_start = false\n\
                    horizon = 32\nparallelism = threads:2\n[campaign]\n\
                    solution_cache = per-campaign\nparallelism = serial\n";
        let a = parse_spec(spec).unwrap();
        let b = parse_spec(&a.to_spec()).expect("canonical form parses");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.to_spec(), b.to_spec());
    }

    #[test]
    fn day_and_seed_overrides_rescale_consistently() {
        let scenario = parse_spec(MINIMAL).unwrap().with_days(2.5).with_seed(99);
        let reference = CampaignConfig::paper_default(2.5, 0.5, 99);
        assert_eq!(
            format!("{:?}", scenario.config.trace),
            format!("{:?}", reference.trace)
        );
        assert_eq!(
            scenario.config.telemetry.horizon_days,
            reference.telemetry.horizon_days
        );
        assert_eq!(scenario.config.telemetry.seed, 99);
    }

    #[test]
    fn located_errors_carry_path_and_line() {
        let err = parse_spec("[scenario]\nbogus = 1\n").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(
            err.located("scenarios/x.spec"),
            "scenarios/x.spec:2: unknown key `bogus` in `[scenario]`"
        );
        let missing = parse_spec("[scenario]\nseed = 1\n[trace]\ndays = 0.1\n").unwrap_err();
        assert_eq!(missing.line(), None);
        assert!(missing.located("x.spec").starts_with("x.spec: missing"));
    }
}
