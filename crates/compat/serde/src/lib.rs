//! Offline stand-in for the `serde` crate.
//!
//! The WaterWise workspace builds in environments without access to a crates
//! registry, so this crate provides the exact `serde` surface the workspace
//! uses: the `Serialize` / `Deserialize` derive macros (re-exported from the
//! sibling `serde_derive` stub, where they expand to marker impls) and the
//! corresponding marker traits. No wire format is implemented; the derives
//! exist so that workspace types stay annotated identically to how they
//! would be against the real `serde`, keeping a later swap to the crates.io
//! version a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The stub derive implements it for the annotated type; no serializer
/// machinery exists, so the trait carries no methods.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize {}
