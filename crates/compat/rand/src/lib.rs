//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact surface the WaterWise workspace uses — a seedable
//! [`rngs::StdRng`] plus [`Rng::gen_range`] over `f64`, and unsigned integer
//! ranges — backed by a genuine xoshiro256++ generator (seeded through
//! SplitMix64, the same expansion `rand_xoshiro` uses). The streams are
//! deterministic per seed, which is all the workspace's reproducibility
//! guarantees require; they do *not* match the streams of the crates.io
//! `rand`, so regenerated traces differ numerically (but not statistically)
//! from ones produced with the real crate.

#![deny(unsafe_code)]

/// Core random-source trait: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling within a range, mirroring `rand::distributions::uniform`'s
/// `SampleRange`. Implemented for the `Range<T>` types the workspace draws
/// from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}",
            self
        );
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's widening-multiply bounded sampling (bias is at
                // most 2^-64 per draw, irrelevant at workspace spans).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, usize, u32);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`rng.gen_range(0.0..1.0)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw from `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        self.gen_range(0.0f64..1.0)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same algorithm as `rand::rngs::StdRng` (ChaCha12), but a
    /// high-quality, fast, deterministic small-state generator, which is what
    /// the synthetic trace/telemetry generators need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as used by rand_xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..16).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.gen_range(0.0..1.0)).collect();
        let vc: Vec<f64> = (0..16).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.05f64..0.05);
            assert!((-0.05..0.05).contains(&v));
            let u = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_draws_look_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
