//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stub. They accept the same attribute grammar as the real derives (the
//! `serde` helper attribute is registered) and expand to nothing: the
//! workspace never serializes through serde at build time, it only keeps the
//! annotations so that swapping the real crates.io `serde` back in is a
//! manifest-only change.

use proc_macro::TokenStream;

/// Derive macro mirroring `serde_derive::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro mirroring `serde_derive::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
