//! Value-generation strategies, mirroring `proptest::strategy`.
//!
//! A [`Strategy`] deterministically maps draws from a seeded generator to
//! values. Ranges over the numeric types the workspace tests with, tuples of
//! strategies, and [`Just`] are provided; collections live in
//! [`crate::collection`].

use rand::rngs::StdRng;
use rand::Rng;

/// Produces random values of an associated type from a seeded generator.
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug + Clone;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy that always yields a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u64, usize, u32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn just_yields_its_value() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Just(42u64).sample(&mut rng), 42);
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, n) = (0.0f64..1.0, 5usize..9).sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
        assert!((5..9).contains(&n));
    }
}
