//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface the WaterWise property tests use: the
//! [`proptest!`] macro over `name(arg in strategy, ...)` test functions,
//! range and tuple strategies, `prop::collection::vec`, `ProptestConfig`,
//! and the `prop_assert*` macros. Cases are sampled from a generator seeded
//! deterministically per test (seeded by the test name), so failures
//! reproduce across runs. Unlike the real proptest there is no shrinking:
//! on failure the offending inputs are printed verbatim.

#![deny(unsafe_code)]

// Re-exported so the `proptest!` macro can name the generator through
// `$crate::rand` from crates that do not themselves depend on `rand`.
pub use rand;

pub mod strategy;

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A size specification: a fixed length or a half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            use rand::Rng;
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration, mirroring `proptest::test_runner`.

    /// How many random cases each property test executes.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Deterministic per-test seed: FNV-1a of the test's name, so every test
/// draws an independent but reproducible stream.
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Assert inside a property test; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block macro: wraps `fn name(arg in strategy, ...)` items
/// into `#[test]` functions that sample and run `cases` random cases each.
///
/// The user-visible `#[test]` attribute is captured by the `$(#[$meta])*`
/// repetition (exactly as in the real proptest) and re-emitted on the
/// generated zero-argument function.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases!($config, $name, ($($arg in $strat),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases!(
                    $crate::test_runner::Config::default(), $name,
                    ($($arg in $strat),+), $body
                );
            }
        )*
    };
}

/// Internal: the per-test case loop shared by both `proptest!` arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __run_cases {
    ($config:expr, $name:ident, ($($arg:ident in $strat:expr),+), $body:block) => {{
        use $crate::strategy::Strategy as _;
        let config: $crate::test_runner::Config = $config;
        let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
            $crate::seed_for_test(stringify!($name)),
        );
        for case in 0..config.cases {
            $(let $arg = ($strat).sample(&mut rng);)+
            let description = format!(
                concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), " = {:?}"),+),
                case, $(&$arg),+
            );
            let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                $(let $arg = $arg.clone();)+
                $body
            }));
            if let Err(panic) = result {
                eprintln!("proptest failure in {description}");
                ::std::panic::resume_unwind(panic);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.0, n in 1usize..5) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategies_respect_sizes(
            fixed in prop::collection::vec(0.0f64..1.0, 3),
            ranged in prop::collection::vec(0u64..10, 2..6),
            pairs in prop::collection::vec((0.0f64..1.0, 1.0f64..2.0), 4),
        ) {
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
            prop_assert_eq!(pairs.len(), 4);
            for (a, b) in pairs {
                prop_assert!(a < 1.0 && b >= 1.0);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_block_works(seed in 0u64..100) {
            prop_assert!(seed < 100);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::seed_for_test("a"), crate::seed_for_test("b"));
        assert_eq!(crate::seed_for_test("a"), crate::seed_for_test("a"));
    }
}
