//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the surface the WaterWise benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`/`bench_with_input`,
//! `bench_function`, and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple mean/min timing loop instead of criterion's statistical
//! machinery. Reported numbers are wall-clock means over `sample_size`
//! timed iterations after one warm-up iteration.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Mean and minimum iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine`: one warm-up iteration, then `sample_size` timed ones.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        let mean = total / self.sample_size.max(1) as u32;
        self.result = Some((mean, min));
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => println!(
            "bench: {name:<50} mean {:>12.3?}  min {:>12.3?}  ({sample_size} samples)",
            mean, min
        ),
        None => println!("bench: {name:<50} (no iter() call)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut |b| routine(b, input));
        self
    }

    /// Benchmark a routine with no extra input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut routine);
        self
    }

    /// Finish the group (report formatting hook in real criterion; no-op here).
    pub fn finish(&mut self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default configuration: 10 timed samples per benchmark.
    pub fn new() -> Self {
        Self { sample_size: 10 }
    }

    /// Override the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.max(1),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let sample_size = self.sample_size.max(1);
        run_one(name, sample_size, &mut routine);
        self
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_routine() {
        let mut c = Criterion::new().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &i| {
            b.iter(|| i * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
