//! Golden regression tests for the headline paper figures.
//!
//! These pin the carbon/water savings the Fig. 5 and Fig. 8 experiments
//! report at a fixed scale (0.05 days, seed 42) so that solver or scheduler
//! refactors cannot silently shift the reproduced results. The campaigns are
//! fully deterministic for a fixed seed, so the real output matches the
//! golden values exactly today; the tolerance below only absorbs genuine
//! float-level reorderings (e.g. a different but equivalent pivot order).
//!
//! If a change moves a number past the tolerance on purpose (a modeling
//! change, a new dataset), re-run the bins with `WATERWISE_DAYS=0.05
//! WATERWISE_SEED=42` and update the goldens in the same commit, explaining
//! why in the commit message.

use waterwise_bench::experiments::{fig05_waterwise_google, fig08_weight_sensitivity};
use waterwise_bench::{ExperimentScale, Table};

/// Tolerance in percentage points on the reported savings.
const TOLERANCE_PP: f64 = 0.25;

fn golden_scale() -> ExperimentScale {
    ExperimentScale {
        days: 0.05,
        seed: 42,
    }
}

fn parse_pct(cell: &str) -> f64 {
    cell.trim()
        .trim_end_matches('%')
        .parse()
        .unwrap_or_else(|_| panic!("cell `{cell}` is not a percentage"))
}

/// Assert that `table` row `row` holds the expected label prefix cells and
/// carbon/water savings (last two columns) within [`TOLERANCE_PP`].
fn assert_savings_row(table: &Table, row: usize, labels: &[&str], carbon: f64, water: f64) {
    for (col, expected) in labels.iter().enumerate() {
        assert_eq!(
            table.cell(row, col),
            *expected,
            "row {row} label column {col}"
        );
    }
    let carbon_cell = parse_pct(table.cell(row, labels.len()));
    let water_cell = parse_pct(table.cell(row, labels.len() + 1));
    assert!(
        (carbon_cell - carbon).abs() <= TOLERANCE_PP,
        "row {row} ({labels:?}): carbon saving {carbon_cell}% drifted from golden {carbon}%"
    );
    assert!(
        (water_cell - water).abs() <= TOLERANCE_PP,
        "row {row} ({labels:?}): water saving {water_cell}% drifted from golden {water}%"
    );
}

#[test]
fn fig05_headline_savings_match_goldens() {
    let tables = fig05_waterwise_google(golden_scale());
    let table = &tables[0];
    assert_eq!(table.len(), 12, "4 tolerances x 3 schedulers");
    // (tolerance, scheduler, carbon saving %, water saving %), captured from
    // `WATERWISE_DAYS=0.05 WATERWISE_SEED=42 fig05_waterwise_google`.
    let goldens = [
        ("25%", "carbon-greedy-opt", 50.9, -16.1),
        ("25%", "water-greedy-opt", -9.0, 40.4),
        ("25%", "waterwise", 17.0, 21.7),
        ("50%", "carbon-greedy-opt", 51.1, -16.1),
        ("50%", "water-greedy-opt", -9.0, 40.6),
        ("50%", "waterwise", 17.1, 21.9),
        ("75%", "carbon-greedy-opt", 51.1, -16.1),
        ("75%", "water-greedy-opt", -9.0, 40.6),
        ("75%", "waterwise", 17.1, 21.9),
        ("100%", "carbon-greedy-opt", 51.1, -16.1),
        ("100%", "water-greedy-opt", -9.0, 40.6),
        ("100%", "waterwise", 17.1, 21.9),
    ];
    for (row, (tolerance, scheduler, carbon, water)) in goldens.iter().enumerate() {
        assert_savings_row(table, row, &[tolerance, scheduler], *carbon, *water);
    }
}

#[test]
fn fig08_weight_sensitivity_matches_goldens() {
    let tables = fig08_weight_sensitivity(golden_scale());
    let table = &tables[0];
    assert_eq!(table.len(), 3, "three lambda values");
    let goldens = [
        ("0.3", -6.1, 40.1),
        ("0.5", 17.1, 21.9),
        ("0.7", 51.1, -16.1),
    ];
    for (row, (lambda, carbon, water)) in goldens.iter().enumerate() {
        assert_savings_row(table, row, &[lambda], *carbon, *water);
    }
    // The qualitative Fig. 8 trend must hold regardless of exact values:
    // higher lambda_co2 -> more carbon saving, less water saving.
    let carbon: Vec<f64> = (0..3).map(|r| parse_pct(table.cell(r, 1))).collect();
    let water: Vec<f64> = (0..3).map(|r| parse_pct(table.cell(r, 2))).collect();
    assert!(carbon[0] < carbon[1] && carbon[1] < carbon[2]);
    assert!(water[0] > water[1] && water[1] > water[2]);
}
