//! Golden-snapshot verification of the declarative scenarios.
//!
//! Each `scenarios/*.spec` workload is replayed and its canonical result
//! rendering ([`Snapshot`]) compared byte-for-byte against the committed
//! golden under `tests/snapshots/<scenario>.snap`. These tests replace the
//! former `golden_figures.rs` percentage-table regressions (Figs. 5 and 8)
//! and the in-bench identity asserts of Fig. 17: any schedule or summary
//! drift fails with a line-level diff naming the drifted snapshot file.
//!
//! Blessing: `UPDATE_SNAPSHOTS=1 cargo test -p waterwise-bench` rewrites the
//! goldens; commit the resulting diff. CI guards that the variable is never
//! set there, so drift can only be accepted deliberately.
//!
//! The determinism sweep re-runs each scenario across engine mode (sync /
//! pipelined) × warm/cold solver starts × solution-cache mode and demands a
//! byte-identical rendering from every cell — "snapshot == replay"
//! (ARCHITECTURE.md invariant table).

use std::path::PathBuf;
use waterwise_bench::experiments::{scenario_spec_path, validate_scenarios, SCENARIO_NAMES};
use waterwise_core::scenario::{
    assert_snapshot, check_snapshot, orphaned_snapshots, snapshot_path, update_mode, Snapshot,
    SnapshotError,
};
use waterwise_core::{
    load_spec, Campaign, EngineMode, ObjectiveWeights, Parallelism, Scenario, SchedulerKind,
    SolutionCacheMode,
};

fn snapshots_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
}

/// Load a scenario at its spec scale. Deliberately *not*
/// `experiments::load_scenario`: goldens are pinned at the committed spec's
/// own days/seed, immune to `WATERWISE_DAYS`/`WATERWISE_SEED` in the
/// environment.
fn load(name: &str) -> Scenario {
    load_spec(scenario_spec_path(name)).expect("committed scenario spec must load")
}

/// Snapshot one campaign outcome (summary + schedule digest) under `prefix`.
fn add_outcome(snap: &mut Snapshot, prefix: &str, outcome: &waterwise_core::CampaignOutcome) {
    snap.add_summary(prefix, &outcome.summary);
    snap.add_schedule(prefix, &outcome.report.outcomes);
}

// ---------------------------------------------------------------------------
// Per-scenario goldens
// ---------------------------------------------------------------------------

#[test]
fn fig05_scenario_matches_golden_snapshot() {
    let scenario = load("fig05");
    let tolerances = [
        (0.25, "tol25"),
        (0.50, "tol50"),
        (0.75, "tol75"),
        (1.00, "tol100"),
    ];
    let configs: Vec<_> = tolerances
        .iter()
        .map(|&(tol, _)| scenario.config.clone().with_delay_tolerance(tol))
        .collect();
    let kinds = [
        SchedulerKind::Baseline,
        SchedulerKind::CarbonGreedyOpt,
        SchedulerKind::WaterGreedyOpt,
        SchedulerKind::WaterWise,
    ];
    let matrix =
        Campaign::run_matrix(&configs, &kinds, Parallelism::Auto).expect("campaign must run");
    let mut snap = Snapshot::new();
    for ((_, label), row) in tolerances.iter().zip(&matrix) {
        for outcome in row {
            add_outcome(
                &mut snap,
                &format!("{label}.{}", outcome.kind.label()),
                outcome,
            );
        }
    }
    assert_snapshot(&snapshots_dir(), "fig05", &snap.render());
}

#[test]
fn fig08_scenario_matches_golden_snapshot() {
    let scenario = load("fig08");
    let lambdas = [(0.3, "lambda30"), (0.5, "lambda50"), (0.7, "lambda70")];
    let configs: Vec<_> = lambdas
        .iter()
        .map(|&(lambda, _)| {
            scenario
                .config
                .clone()
                .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(lambda))
        })
        .collect();
    let matrix = Campaign::run_matrix(
        &configs,
        &[SchedulerKind::Baseline, SchedulerKind::WaterWise],
        Parallelism::Auto,
    )
    .expect("campaign must run");
    let mut snap = Snapshot::new();
    for ((_, label), row) in lambdas.iter().zip(&matrix) {
        for outcome in row {
            add_outcome(
                &mut snap,
                &format!("{label}.{}", outcome.kind.label()),
                outcome,
            );
        }
    }
    assert_snapshot(&snapshots_dir(), "fig08", &snap.render());
}

#[test]
fn fig14_scenario_matches_golden_and_warm_equals_cold() {
    let scenario = load("fig14");
    let mut snap = Snapshot::new();
    for (horizon, label) in [(Some(16), "h16"), (None, "hcap")] {
        let run = |warm: bool| {
            let mut config = scenario.config.clone();
            config.waterwise.warm_start = warm;
            config.waterwise.horizon = horizon;
            Campaign::new(config)
                .run(SchedulerKind::WaterWise)
                .expect("campaign must run")
        };
        let cold = run(false);
        let warm = run(true);
        // The warm-start identity, byte for byte: warm starts accelerate
        // solves, they must never change a schedule.
        assert_eq!(
            cold.report.outcomes, warm.report.outcomes,
            "warm-started solves changed the {label} schedule"
        );
        add_outcome(&mut snap, label, &warm);
    }
    assert_snapshot(&snapshots_dir(), "fig14", &snap.render());
}

#[test]
fn fig17_scenario_online_sessions_match_offline_golden() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use waterwise_cluster::{ClockMode, Simulator};
    use waterwise_core::build_scheduler;
    use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
    use waterwise_sustain::FootprintEstimator;
    use waterwise_telemetry::SyntheticTelemetry;
    use waterwise_traces::TraceGenerator;

    let scenario = load("fig17");
    let jobs = TraceGenerator::new(scenario.config.trace.clone()).generate();
    let simulation = scenario.config.simulation.clone();
    let telemetry = scenario.config.telemetry;
    let make_scheduler = || {
        build_scheduler(
            SchedulerKind::WaterWise,
            SyntheticTelemetry::generate(telemetry).shared(),
            FootprintEstimator::new(simulation.datacenter),
            &scenario.config.waterwise,
            None,
        )
    };

    let offline = Simulator::new(
        simulation.clone(),
        SyntheticTelemetry::generate(telemetry).shared(),
    )
    .expect("valid simulation config")
    .run(&jobs, make_scheduler().as_mut())
    .expect("offline reference campaign must run");

    // The former in-bench identity asserts, now under `cargo test`: a live
    // TCP session under the discrete clock must reproduce the offline
    // schedule byte for byte, under both engines.
    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        let config = ServiceConfig::new(simulation.clone().with_engine_mode(engine), telemetry)
            .with_clock(ClockMode::Discrete);
        let service = PlacementService::new(config).expect("valid service config");
        let server = TcpPlacementServer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let report = std::thread::scope(|scope| {
            let jobs = &jobs;
            let client = scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect to service");
                let mut writer = stream.try_clone().expect("clone stream");
                std::thread::scope(|inner| {
                    // Drain responses concurrently or the two directions
                    // deadlock on full socket buffers.
                    let reader = inner.spawn(move || {
                        for line in BufReader::new(stream).lines() {
                            line.expect("read response line");
                        }
                    });
                    for spec in jobs.iter() {
                        writeln!(writer, "{}", waterwise_service::wire::encode_request(spec))
                            .expect("send request");
                    }
                    writer.flush().expect("flush requests");
                    let _ = writer.shutdown(std::net::Shutdown::Write);
                    reader.join().expect("response reader panicked");
                });
            });
            let report = server
                .serve_connection(&service, make_scheduler().as_mut())
                .expect("serving session must complete");
            client.join().expect("client panicked");
            report
        });
        assert_eq!(report.accepted, jobs.len(), "every request admitted");
        assert_eq!(
            report.report.outcomes,
            offline.outcomes,
            "online session ({}) diverged from the offline replay",
            engine.label()
        );
    }

    let mut snap = Snapshot::new();
    snap.add_summary("offline", &offline.summary);
    snap.add_schedule("offline", &offline.outcomes);
    assert_snapshot(&snapshots_dir(), "fig17", &snap.render());
}

#[test]
fn server_multi_scenario_live_tcp_sessions_match_golden() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use waterwise_cluster::ClockMode;
    use waterwise_core::build_scheduler;
    use waterwise_service::{
        wire, AdmissionConfig, AdmissionMode, ClusterHost, PlacementService, ServiceConfig,
        TcpClusterServer,
    };
    use waterwise_sustain::FootprintEstimator;
    use waterwise_traces::TraceGenerator;

    let scenario = load("server_multi");
    let jobs = TraceGenerator::new(scenario.config.trace.clone()).generate();
    let simulation = scenario.config.simulation.clone();
    let telemetry = scenario.config.telemetry;
    // Round-robin split across four tenant streams — a pure function of the
    // trace, independent of any live-run race.
    let tenants = ["tenant-a", "tenant-b", "tenant-c", "tenant-d"];
    let streams: Vec<Vec<_>> = (0..tenants.len())
        .map(|t| {
            jobs.iter()
                .skip(t)
                .step_by(tenants.len())
                .cloned()
                .collect()
        })
        .collect();

    let make_service = |engine| {
        PlacementService::new(
            ServiceConfig::new(simulation.clone().with_engine_mode(engine), telemetry)
                .with_clock(ClockMode::Discrete),
        )
        .expect("valid service config")
    };
    let make_scheduler = |service: &PlacementService| {
        build_scheduler(
            SchedulerKind::WaterWise,
            service.telemetry(),
            FootprintEstimator::new(simulation.datacenter),
            &scenario.config.waterwise,
            None,
        )
    };

    // Gated admission: every request is held until all four sessions end,
    // then released in canonical (submit_time, tenant, id) order — the
    // merged schedule cannot depend on accept order or interleaving, which
    // is what makes a live multi-session TCP run goldenable at all.
    let admission = AdmissionConfig {
        tenant_inflight_quota: jobs.len().max(1),
        mode: AdmissionMode::Gated {
            sessions: tenants.len(),
        },
        ..AdmissionConfig::default()
    };

    let mut reference: Option<String> = None;
    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        let service = make_service(engine);
        let scheduler = make_scheduler(&service);
        let host = ClusterHost::start_with_service(service, admission.clone(), scheduler)
            .expect("host must start");
        let server = TcpClusterServer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve_sessions(&host, tenants.len()));
            let clients: Vec<_> = tenants
                .iter()
                .zip(&streams)
                .map(|(tenant, stream)| {
                    scope.spawn(move || {
                        let mut socket = TcpStream::connect(addr).expect("connect");
                        let reader = BufReader::new(socket.try_clone().expect("clone stream"));
                        for spec in stream {
                            writeln!(socket, "{}", wire::encode_tenant_request(tenant, spec))
                                .expect("send request");
                        }
                        socket.flush().expect("flush requests");
                        let _ = socket.shutdown(std::net::Shutdown::Write);
                        reader
                            .lines()
                            .filter_map(|l| wire::placement_job_id(&l.expect("read line")))
                            .count()
                    })
                })
                .collect();
            for (client, stream) in clients.into_iter().zip(&streams) {
                assert_eq!(
                    client.join().expect("client panicked"),
                    stream.len(),
                    "every request of every tenant must be placed"
                );
            }
            serving.join().expect("server panicked").expect("sessions");
        });
        let report = host.shutdown().expect("host shutdown");
        assert_eq!(report.accepted, jobs.len());
        assert_eq!(report.served, jobs.len());
        assert_eq!(report.sessions, tenants.len());

        // journal == replay, byte for byte: the live run's admission
        // journal replayed offline reproduces the schedule exactly.
        let replay_service = make_service(EngineMode::Sync);
        let mut replay_scheduler = make_scheduler(&replay_service);
        let replay = report
            .journal
            .replay(&replay_service, replay_scheduler.as_mut())
            .expect("journal must replay");
        assert_eq!(
            report.report.outcomes, replay.report.report.outcomes,
            "offline journal replay diverged from the live multi-session run"
        );
        assert_eq!(report.schedule_digest(), replay.schedule_digest());

        let mut snap = Snapshot::new();
        snap.add_summary("host", &report.report.summary);
        snap.add_schedule("host", &report.report.outcomes);
        snap.entry("host.sessions", report.sessions);
        snap.entry("host.accepted", report.accepted);
        for (tenant, stats) in &report.tenants {
            snap.entry(format!("tenant.{tenant}.served"), stats.served);
        }
        let rendered = snap.render();
        match &reference {
            None => reference = Some(rendered),
            Some(expected) => assert_eq!(
                expected,
                &rendered,
                "multi-session run diverged between engines ({})",
                engine.label()
            ),
        }
    }
    assert_snapshot(
        &snapshots_dir(),
        "server_multi",
        &reference.expect("at least one engine ran"),
    );
}

#[test]
fn server_resume_scenario_pins_a_save_restart_resume_cycle() {
    let scenario = load("server_resume");
    let dir = std::env::temp_dir().join(format!("ww-resume-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let cache_path = dir.join("cache.snapshot");
    let _ = std::fs::remove_file(&cache_path);
    let config = scenario.config.clone().with_cache_path(&cache_path);

    // Cold half: sweep from an empty cache, persist the snapshot.
    let cold_campaign = Campaign::try_new(config.clone()).expect("cold start");
    let cold = cold_campaign
        .run(SchedulerKind::WaterWise)
        .expect("cold campaign must run");
    assert!(cold_campaign.save_cache().expect("snapshot must save"));

    // "Restart": a brand-new campaign whose only link to the cold run is
    // the snapshot file on disk.
    let resumed_campaign = Campaign::try_new(config).expect("warm load");
    let cache = resumed_campaign
        .solution_cache()
        .expect("cache path implies a handle");
    assert!(!cache.is_empty(), "the snapshot must arrive warm");
    let resumed = resumed_campaign
        .run(SchedulerKind::WaterWise)
        .expect("resumed campaign must run");

    // resume == uninterrupted (ARCHITECTURE.md invariant table).
    assert_eq!(
        cold.report.outcomes, resumed.report.outcomes,
        "resumed-from-disk schedule diverged from the cold run"
    );
    assert!(
        cache.stats().exact_hits > 0,
        "the resumed sweep never hit the loaded entries"
    );

    let mut snap = Snapshot::new();
    add_outcome(&mut snap, "cold", &cold);
    add_outcome(&mut snap, "resumed", &resumed);
    assert_snapshot(&snapshots_dir(), "server_resume", &snap.render());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Determinism sweep: engine mode × warm/cold × cache mode, per scenario
// ---------------------------------------------------------------------------

/// Replay the scenario's base campaign in every
/// engine × warm/cold × cache-mode cell and demand a byte-identical
/// snapshot rendering from each — the "snapshot == replay" invariant.
fn sweep_renders_byte_identical(name: &str) {
    let scenario = load(name);
    let mut reference: Option<(String, String)> = None;
    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        for warm in [true, false] {
            for cache in [SolutionCacheMode::Off, SolutionCacheMode::PerCampaign] {
                let mut config = scenario.config.clone().with_engine_mode(engine);
                config.waterwise.warm_start = warm;
                let config = config.with_solution_cache(cache.clone());
                let outcome = Campaign::new(config)
                    .run(SchedulerKind::WaterWise)
                    .expect("campaign must run");
                let mut snap = Snapshot::new();
                add_outcome(&mut snap, "waterwise", &outcome);
                let rendered = snap.render();
                let cell = format!("{}/warm={warm}/{}", engine.label(), cache.label());
                match &reference {
                    None => reference = Some((rendered, cell)),
                    Some((expected, reference_cell)) => assert_eq!(
                        expected, &rendered,
                        "scenario {name}: cell {cell} rendered differently from {reference_cell}"
                    ),
                }
            }
        }
    }
}

#[test]
fn fig05_sweep_is_byte_identical_across_engine_warm_cache() {
    sweep_renders_byte_identical("fig05");
}

#[test]
fn fig08_sweep_is_byte_identical_across_engine_warm_cache() {
    sweep_renders_byte_identical("fig08");
}

#[test]
fn fig14_sweep_is_byte_identical_across_engine_warm_cache() {
    sweep_renders_byte_identical("fig14");
}

// ---------------------------------------------------------------------------
// Harness negatives and hygiene
// ---------------------------------------------------------------------------

/// The deliberate-drift negative test: a single flipped digit in a schedule
/// digest must be caught and reported as a readable diff naming the
/// drifted `.snap` file.
#[test]
fn deliberate_drift_fails_with_a_diff_naming_the_scenario_file() {
    if update_mode() {
        return; // bless runs rewrite instead of diffing
    }
    let dir = snapshots_dir();
    let committed =
        std::fs::read_to_string(snapshot_path(&dir, "fig05")).expect("committed fig05.snap");
    // Flip the last hex digit of the first schedule digest.
    let drifted: String = {
        let target = committed
            .lines()
            .find(|l| l.contains(".digest = "))
            .expect("fig05.snap has digest lines");
        let flipped = {
            let mut chars: Vec<char> = target.chars().collect();
            let last = chars.last_mut().expect("non-empty digest line");
            *last = if *last == '0' { '1' } else { '0' };
            chars.into_iter().collect::<String>()
        };
        committed.replacen(target, &flipped, 1)
    };
    let err = check_snapshot(&dir, "fig05", &drifted).expect_err("drift must be detected");
    let SnapshotError::Drift { path, diff } = &err else {
        panic!("expected Drift, got {err:?}");
    };
    assert!(path.ends_with("fig05.snap"), "diff must name the file");
    assert!(diff.contains("- "), "diff shows the golden line");
    assert!(diff.contains("+ "), "diff shows the drifted line");
    assert!(diff.contains(".digest = "), "diff names the drifted key");
}

#[test]
fn no_orphaned_snapshot_files() {
    let orphans = orphaned_snapshots(&snapshots_dir(), &SCENARIO_NAMES)
        .expect("snapshot directory must be readable");
    assert!(
        orphans.is_empty(),
        "stale goldens with no scenario: {orphans:?} — delete them or restore their specs"
    );
}

#[test]
fn committed_scenario_specs_all_validate() {
    if let Err(located) = validate_scenarios(&SCENARIO_NAMES) {
        panic!("committed scenario spec failed validation: {located}");
    }
    // The server's default spec is not a fig scenario but ships alongside.
    load_spec(scenario_spec_path("server_default")).expect("server_default.spec must load");
}

#[test]
fn update_snapshots_is_never_set_in_ci() {
    if std::env::var_os("CI").is_some() {
        assert!(
            !update_mode(),
            "UPDATE_SNAPSHOTS must never be set in CI: goldens would silently re-bless"
        );
    }
}
