//! Criterion bench: MILP solver scaling with batch size.
//!
//! Supports the Fig. 13 overhead claim: the assignment MILP WaterWise builds
//! (jobs × regions binary variables, assignment + capacity + delay rows)
//! solves in milliseconds at realistic batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waterwise_milp::{LinExpr, Model, Sense};

/// Build a WaterWise-shaped assignment MILP with `jobs` jobs and 5 regions.
fn assignment_model(jobs: usize) -> Model {
    let regions = 5usize;
    let mut model = Model::new("bench-assignment");
    let mut vars = Vec::with_capacity(jobs * regions);
    for m in 0..jobs {
        for n in 0..regions {
            vars.push(model.add_binary(format!("x_{m}_{n}")));
        }
    }
    let x = |m: usize, n: usize| vars[m * regions + n];
    for m in 0..jobs {
        let expr = LinExpr::sum((0..regions).map(|n| LinExpr::from(x(m, n))));
        model.add_constraint(format!("assign_{m}"), expr, Sense::Equal, 1.0);
    }
    for n in 0..regions {
        let expr = LinExpr::sum((0..jobs).map(|m| LinExpr::from(x(m, n))));
        model.add_constraint(
            format!("cap_{n}"),
            expr,
            Sense::LessEqual,
            (jobs as f64 / 2.0).ceil(),
        );
    }
    let mut objective = LinExpr::zero();
    for m in 0..jobs {
        for n in 0..regions {
            // Deterministic pseudo-random costs in [0, 1).
            let cost = (((m * 2654435761 + n * 40503) % 1000) as f64) / 1000.0;
            objective.add_term(x(m, n), cost);
        }
        // Delay-tolerance-style row: a weighted sum bounded by a constant.
        let expr =
            LinExpr::sum((0..regions).map(|n| LinExpr::from(x(m, n)) * ((n as f64 + 1.0) * 0.01)));
        model.add_constraint(format!("delay_{m}"), expr, Sense::LessEqual, 0.5);
    }
    model.minimize(objective);
    model
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_assignment_solve");
    group.sample_size(10);
    for &jobs in &[8usize, 16, 32, 64] {
        let model = assignment_model(jobs);
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &model, |b, model| {
            b.iter(|| {
                let solution = model.solve().expect("solvable");
                assert!(solution.status.has_solution());
                solution.objective
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
