//! Criterion bench: discrete-event simulator throughput — how many trace
//! hours per second the engine replays under the baseline and WaterWise
//! schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waterwise_core::{Campaign, CampaignConfig, SchedulerKind};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    for kind in [SchedulerKind::Baseline, SchedulerKind::WaterWise] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let campaign = Campaign::new(CampaignConfig::small_demo(5));
                b.iter(|| {
                    let outcome = campaign.run(kind).expect("campaign runs");
                    outcome.summary.total_jobs
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
