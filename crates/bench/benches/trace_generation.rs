//! Criterion bench: workload-trace generation throughput (Borg-like and
//! Alibaba-like arrival processes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waterwise_traces::{TraceConfig, TraceGenerator};

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    for &days in &[0.1f64, 0.5] {
        group.bench_with_input(BenchmarkId::new("borg", days), &days, |b, &days| {
            b.iter(|| {
                TraceGenerator::new(TraceConfig::borg(days, 7))
                    .generate()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("alibaba", days), &days, |b, &days| {
            b.iter(|| {
                TraceGenerator::new(TraceConfig::alibaba(days, 7))
                    .generate()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
