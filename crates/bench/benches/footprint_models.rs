//! Criterion bench: throughput of the carbon/water footprint models (Eq. 1–6),
//! which are evaluated for every (job, region) candidate every round.

use criterion::{criterion_group, criterion_main, Criterion};
use waterwise_sustain::{FootprintEstimator, JobResourceUsage, KilowattHours, Seconds};
use waterwise_telemetry::{ConditionsProvider, SyntheticTelemetry, ALL_REGIONS};

fn bench_footprints(c: &mut Criterion) {
    let telemetry = SyntheticTelemetry::with_seed(11);
    let estimator = FootprintEstimator::paper_default();
    let usage = JobResourceUsage::new(KilowattHours::new(0.08), Seconds::new(900.0));

    c.bench_function("footprint_estimate_5_regions", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (h, &region) in ALL_REGIONS.iter().enumerate() {
                let conditions = telemetry.conditions(region, Seconds::from_hours(h as f64));
                let fp = estimator.estimate(usage, conditions);
                total += fp.total_carbon().value() + fp.total_water().value();
            }
            total
        })
    });

    c.bench_function("water_intensity_eq6", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for hour in 0..24 {
                let conditions =
                    telemetry.conditions(ALL_REGIONS[hour % 5], Seconds::from_hours(hour as f64));
                total += estimator.water_intensity(conditions).value();
            }
            total
        })
    });

    c.bench_function("telemetry_conditions_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for hour in 0..168 {
                let c =
                    telemetry.conditions(ALL_REGIONS[hour % 5], Seconds::from_hours(hour as f64));
                acc += c.carbon_intensity.value();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_footprints);
criterion_main!(benches);
