//! Criterion bench: end-to-end WaterWise decision latency per scheduling
//! round (the quantity plotted in Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use waterwise_cluster::{PendingJob, RegionView, Scheduler, SchedulingContext, TransferModel};
use waterwise_core::{BaselineScheduler, WaterWiseScheduler};
use waterwise_sustain::{KilowattHours, Seconds, Watts};
use waterwise_telemetry::{SyntheticTelemetry, ALL_REGIONS};
use waterwise_traces::{JobId, JobSpec, ALL_BENCHMARKS};

fn pending_batch(n: usize) -> Vec<PendingJob> {
    (0..n)
        .map(|i| {
            let benchmark = ALL_BENCHMARKS[i % ALL_BENCHMARKS.len()];
            let profile = benchmark.profile();
            let exec = profile.mean_execution_time;
            let energy = Watts::new(profile.mean_power.value()).energy_over(exec);
            PendingJob {
                spec: JobSpec {
                    id: JobId(i as u64),
                    benchmark,
                    submit_time: Seconds::new(0.0),
                    home_region: ALL_REGIONS[i % 5],
                    actual_execution_time: exec,
                    actual_energy: energy,
                    estimated_execution_time: exec,
                    estimated_energy: KilowattHours::new(energy.value()),
                    package_bytes: profile.package_bytes,
                },
                received_at: Seconds::new(0.0),
                deferrals: 0,
            }
        })
        .collect()
}

fn region_views() -> Vec<RegionView> {
    ALL_REGIONS
        .iter()
        .map(|&region| RegionView {
            region,
            total_servers: 280,
            busy_servers: 40,
            queued_jobs: 0,
            inbound_jobs: 0,
        })
        .collect()
}

fn bench_decision(c: &mut Criterion) {
    let provider = Arc::new(SyntheticTelemetry::with_seed(3));
    let transfer = TransferModel::paper_default();
    let regions = region_views();

    let mut group = c.benchmark_group("scheduler_decision");
    group.sample_size(10);
    for &batch in &[8usize, 16, 32, 64] {
        let pending = pending_batch(batch);
        group.bench_with_input(
            BenchmarkId::new("waterwise", batch),
            &pending,
            |b, pending| {
                let mut scheduler = WaterWiseScheduler::with_defaults(provider.clone());
                b.iter(|| {
                    let ctx = SchedulingContext {
                        now: Seconds::from_hours(6.0),
                        pending,
                        regions: &regions,
                        delay_tolerance: 0.5,
                        transfer: &transfer,
                    };
                    scheduler.schedule(&ctx).assignments.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", batch),
            &pending,
            |b, pending| {
                let mut scheduler = BaselineScheduler::new();
                b.iter(|| {
                    let ctx = SchedulingContext {
                        now: Seconds::from_hours(6.0),
                        pending,
                        regions: &regions,
                        delay_tolerance: 0.5,
                        transfer: &transfer,
                    };
                    scheduler.schedule(&ctx).assignments.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
