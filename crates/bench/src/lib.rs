//! # waterwise-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! WaterWise paper's evaluation, plus Criterion micro-benchmarks for the
//! performance-critical components (MILP solver, scheduler decision latency,
//! footprint models, trace generation, simulator throughput).
//!
//! Each paper artifact has a dedicated binary (see `src/bin/`); all binaries
//! share the machinery in [`experiments`] and print fixed-width tables whose
//! rows correspond to the series plotted in the paper. Absolute numbers are
//! not expected to match the paper (the substrate here is a simulator seeded
//! with synthetic telemetry, not the authors' AWS deployment); the *shape* —
//! who wins, by roughly what factor, and how trends move with delay
//! tolerance, weights, utilization, and region availability — is the
//! reproduction target. `EXPERIMENTS.md` records paper-reported versus
//! measured values.
//!
//! ## Scaling experiments
//!
//! By default the campaigns replay a fraction of a day of Borg-like arrivals
//! so that the full suite completes in minutes. Two environment variables
//! rescale every experiment:
//!
//! * `WATERWISE_DAYS` — trace length in days (default 0.25).
//! * `WATERWISE_SEED` — RNG seed (default 42).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod table;

pub use experiments::ExperimentScale;
pub use table::{json_string, tables_to_json, write_json_report, Table};
