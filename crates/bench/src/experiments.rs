//! One function per paper table/figure. Every function returns the tables it
//! prints so that integration tests can assert on the numbers.

use crate::table::{fmt2, pct, Table};
use std::path::{Path, PathBuf};
use waterwise_core::{
    Campaign, CampaignConfig, ObjectiveWeights, Parallelism, Scenario, ScenarioError,
    SchedulerKind, SolutionCache, SolutionCacheMode,
};
use waterwise_sustain::{EwifDataset, FootprintEstimator, Seconds};
use waterwise_telemetry::{
    ConditionsProvider, Region, SyntheticTelemetry, TelemetryConfig, ALL_REGIONS,
};
use waterwise_traces::ALL_BENCHMARKS;

/// Shared scale knobs for all experiments, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Borg-like trace duration in days (`WATERWISE_DAYS`, default 0.25).
    pub days: f64,
    /// RNG seed (`WATERWISE_SEED`, default 42).
    pub seed: u64,
}

impl ExperimentScale {
    /// Read the scale from the environment.
    pub fn from_env() -> Self {
        let days: f64 = std::env::var("WATERWISE_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25);
        let days = days.max(0.01);
        let seed = std::env::var("WATERWISE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        Self { days, seed }
    }

    /// The Alibaba trace carries ~8.5× the jobs; scale its duration down so
    /// the experiment finishes in comparable time.
    pub fn alibaba_days(&self) -> f64 {
        (self.days / 4.0).max(0.02)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            days: 0.25,
            seed: 42,
        }
    }
}

/// Print a set of tables.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        t.print();
    }
}

/// Write an experiment's tables to `BENCH_<name>.json` in the current
/// directory (the machine-readable artifact archived by CI alongside the
/// printed tables). Failures are reported on stderr but never abort the
/// experiment — the printed tables remain the source of truth.
pub fn save_json(name: &str, tables: &[Table]) {
    let path = format!("BENCH_{name}.json");
    match crate::table::write_json_report(tables, &path) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

fn tolerance_label(t: f64) -> String {
    format!("{:.0}%", t * 100.0)
}

// ---------------------------------------------------------------------------
// Declarative scenarios (scenarios/*.spec)
// ---------------------------------------------------------------------------

/// Directory holding the repo's scenario spec files: `WATERWISE_SCENARIO_DIR`
/// if set, else the workspace-level `scenarios/` directory.
pub fn scenario_dir() -> PathBuf {
    std::env::var_os("WATERWISE_SCENARIO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("scenarios")
        })
}

/// Path of the named scenario's spec file inside [`scenario_dir`].
pub fn scenario_spec_path(name: &str) -> PathBuf {
    scenario_dir().join(format!("{name}.spec"))
}

/// Load the named scenario from [`scenario_dir`], then apply the
/// `WATERWISE_DAYS` / `WATERWISE_SEED` environment overrides when they are
/// explicitly set (CI smoke runs rescale every campaign this way).
pub fn load_scenario(name: &str) -> Result<Scenario, ScenarioError> {
    Ok(apply_env_scale(waterwise_core::load_spec(
        scenario_spec_path(name),
    )?))
}

/// Apply explicit `WATERWISE_DAYS` / `WATERWISE_SEED` overrides to a loaded
/// scenario; unset (or unparsable) variables leave the spec untouched.
pub fn apply_env_scale(mut scenario: Scenario) -> Scenario {
    if let Some(days) = std::env::var("WATERWISE_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        scenario = scenario.with_days(days);
    }
    if let Some(seed) = std::env::var("WATERWISE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        scenario = scenario.with_seed(seed);
    }
    scenario
}

/// Resolve a fig binary's scenario: `--scenario <path>` on the command line
/// (or `WATERWISE_SCENARIO=<path>`) names an explicit spec file; otherwise
/// the named default under [`scenario_dir`] is loaded. On any read, parse,
/// or validation failure the process exits with status 2 after printing the
/// offending `file:line`.
pub fn scenario_or_exit(name: &str) -> Scenario {
    let path = scenario_cli_path().unwrap_or_else(|| scenario_spec_path(name));
    match waterwise_core::load_spec(&path) {
        Ok(scenario) => apply_env_scale(scenario),
        Err(err) => {
            eprintln!("{}", err.located(path.display()));
            std::process::exit(2);
        }
    }
}

/// `--scenario <path>` (or `--scenario=<path>`) from the command line, else
/// `WATERWISE_SCENARIO` from the environment.
fn scenario_cli_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scenario" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--scenario=") {
            return Some(PathBuf::from(path));
        }
    }
    std::env::var_os("WATERWISE_SCENARIO").map(PathBuf::from)
}

/// Validate every spec file a `run_all` sweep will load, returning the first
/// failure as a ready-to-print `file:line: message` string. Called up front
/// so a malformed spec fails the whole suite immediately instead of dying
/// mid-sweep after the earlier figures have already burned their runtime.
pub fn validate_scenarios(names: &[&str]) -> Result<(), String> {
    for name in names {
        let path = scenario_spec_path(name);
        if let Err(err) = waterwise_core::load_spec(&path) {
            return Err(err.located(path.display()));
        }
    }
    Ok(())
}

/// The golden-snapshotted scenarios: the fig binaries' defaults in fig
/// order, plus the multi-session host scenario pinned over live TCP and
/// the save→restart→resume persistence scenario.
pub const SCENARIO_NAMES: [&str; 6] = [
    "fig05",
    "fig08",
    "fig14",
    "fig17",
    "server_multi",
    "server_resume",
];

// ---------------------------------------------------------------------------
// Fig. 1 — carbon intensity and EWIF per energy source
// ---------------------------------------------------------------------------

/// Fig. 1: carbon intensity and water requirement (EWIF) per energy source.
pub fn fig01_energy_sources() -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 1 — per-source carbon intensity and EWIF",
        &[
            "source",
            "renewable",
            "carbon (gCO2/kWh)",
            "EWIF (L/kWh)",
            "EWIF WRI (L/kWh)",
        ],
    );
    for source in waterwise_sustain::ALL_SOURCES {
        t.row(&[
            source.label().to_string(),
            source.is_renewable().to_string(),
            fmt2(source.carbon_intensity().value()),
            fmt2(source.ewif().value()),
            fmt2(
                source
                    .ewif_from(EwifDataset::WorldResourcesInstitute)
                    .value(),
            ),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------------
// Fig. 2 — regional factors and temporal variation
// ---------------------------------------------------------------------------

/// Fig. 2: regional averages of carbon intensity, EWIF, WUE, WSF (a–d) and
/// the temporal variation of carbon/water intensity in Oregon (e).
pub fn fig02_regional_factors(scale: ExperimentScale) -> Vec<Table> {
    let telemetry = SyntheticTelemetry::generate(TelemetryConfig {
        seed: scale.seed,
        horizon_days: 60,
        ..TelemetryConfig::default()
    });
    let estimator = FootprintEstimator::paper_default();
    let mut regional = Table::new(
        "Fig. 2(a-d) — regional annual-average factors",
        &[
            "region",
            "carbon (gCO2/kWh)",
            "EWIF (L/kWh)",
            "WUE (L/kWh)",
            "WSF",
        ],
    );
    for region in ALL_REGIONS {
        regional.row(&[
            region.name().to_string(),
            fmt2(telemetry.carbon_series(region).mean()),
            fmt2(telemetry.ewif_series(region).mean()),
            fmt2(telemetry.wue_series(region).mean()),
            fmt2(region.profile().wsf.value()),
        ]);
    }

    let mut temporal = Table::new(
        "Fig. 2(e) — temporal variation in Oregon (hourly samples)",
        &["metric", "min", "mean", "max", "std"],
    );
    let ci = telemetry.carbon_series(Region::Oregon);
    temporal.row(&[
        "carbon intensity (gCO2/kWh)".to_string(),
        fmt2(ci.min()),
        fmt2(ci.mean()),
        fmt2(ci.max()),
        fmt2(ci.std_dev()),
    ]);
    let hours = 24 * 60;
    let wi: Vec<f64> = (0..hours)
        .map(|h| {
            let c = telemetry.conditions(Region::Oregon, Seconds::from_hours(h as f64));
            estimator.water_intensity(c).value()
        })
        .collect();
    let mean = wi.iter().sum::<f64>() / wi.len() as f64;
    let min = wi.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = wi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let std = (wi.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / wi.len() as f64).sqrt();
    temporal.row(&[
        "water intensity (L/kWh)".to_string(),
        fmt2(min),
        fmt2(mean),
        fmt2(max),
        fmt2(std),
    ]);
    vec![regional, temporal]
}

// ---------------------------------------------------------------------------
// Generic savings sweeps (used by several figures)
// ---------------------------------------------------------------------------

/// Run the baseline plus `kinds` over every configuration concurrently (one
/// worker per core via [`Campaign::savings_matrix`]) and return, per
/// configuration, each scheduler's carbon/water savings over the baseline.
fn matrix_savings(
    configs: Vec<CampaignConfig>,
    kinds: &[SchedulerKind],
) -> Vec<Vec<(SchedulerKind, f64, f64)>> {
    Campaign::savings_matrix(&configs, kinds, Parallelism::Auto).expect("campaign must run")
}

/// Run `kinds` against the baseline for each delay tolerance and tabulate
/// carbon/water savings. The tolerance campaigns run concurrently.
fn savings_sweep(
    title: &str,
    base_config: impl Fn(f64) -> CampaignConfig,
    tolerances: &[f64],
    kinds: &[SchedulerKind],
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "delay tolerance",
            "scheduler",
            "carbon saving",
            "water saving",
        ],
    );
    let configs: Vec<CampaignConfig> = tolerances.iter().map(|&tol| base_config(tol)).collect();
    for (&tol, rows) in tolerances.iter().zip(matrix_savings(configs, kinds)) {
        for (kind, carbon, water) in rows {
            table.row(&[
                tolerance_label(tol),
                kind.label().to_string(),
                pct(carbon),
                pct(water),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 3 — greedy-optimal opportunity and job distribution
// ---------------------------------------------------------------------------

/// Fig. 3: (a) savings of the greedy-optimal single-objective schemes across
/// delay tolerances; (b) job distribution across regions at 10% tolerance.
pub fn fig03_greedy_opportunity(scale: ExperimentScale) -> Vec<Table> {
    let tolerances = [0.01, 0.10, 1.00, 10.0];
    let savings = savings_sweep(
        "Fig. 3(a) — Carbon/Water-Greedy-Opt savings vs delay tolerance",
        |tol| CampaignConfig::paper_default(scale.days, tol, scale.seed),
        &tolerances,
        &[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
        ],
    );

    let campaign = Campaign::new(CampaignConfig::paper_default(scale.days, 0.10, scale.seed));
    let mut distribution = Table::new(
        "Fig. 3(b) — job distribution across regions (10% delay tolerance)",
        &["scheduler", "Zurich", "Madrid", "Oregon", "Milan", "Mumbai"],
    );
    let outcomes = campaign
        .run_all(&[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
        ])
        .expect("campaign must run");
    for outcome in outcomes {
        let dist = outcome.summary.region_distribution();
        let mut cells = vec![outcome.kind.label().to_string()];
        cells.extend(dist.iter().map(|f| pct(f * 100.0)));
        distribution.row(&cells);
    }
    vec![savings, distribution]
}

// ---------------------------------------------------------------------------
// Fig. 5 — WaterWise vs greedy-optimal on the Borg-like trace
// ---------------------------------------------------------------------------

/// Fig. 5: carbon and water savings of WaterWise and the greedy oracles over
/// the baseline, for delay tolerances 25–100%, on the Borg-like trace.
///
/// The workload comes from `scenarios/fig05.spec`; the sweep re-runs the
/// scenario at each delay tolerance.
pub fn fig05_waterwise_google(scenario: &Scenario) -> Vec<Table> {
    vec![savings_sweep(
        "Fig. 5 — savings vs baseline (Borg-like trace, Electricity-Maps-style data)",
        |tol| scenario.config.clone().with_delay_tolerance(tol),
        &[0.25, 0.50, 0.75, 1.00],
        &[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
            SchedulerKind::WaterWise,
        ],
    )]
}

// ---------------------------------------------------------------------------
// Fig. 6 — World Resources Institute dataset
// ---------------------------------------------------------------------------

/// Fig. 6: the same comparison with the WRI-style per-source water dataset.
pub fn fig06_wri_dataset(scale: ExperimentScale) -> Vec<Table> {
    vec![savings_sweep(
        "Fig. 6 — savings vs baseline (WRI-style water dataset)",
        |tol| {
            let mut config = CampaignConfig::paper_default(scale.days, tol, scale.seed);
            config.telemetry.dataset = EwifDataset::WorldResourcesInstitute;
            config
        },
        &[0.25, 0.50, 0.75, 1.00],
        &[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
            SchedulerKind::WaterWise,
        ],
    )]
}

// ---------------------------------------------------------------------------
// Fig. 7 — Ecovisor comparison
// ---------------------------------------------------------------------------

/// Fig. 7: WaterWise vs the Ecovisor-style carbon-only comparator under both
/// water datasets.
pub fn fig07_ecovisor(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 7 — Ecovisor vs WaterWise (savings vs baseline, 50% tolerance)",
        &["dataset", "scheduler", "carbon saving", "water saving"],
    );
    let datasets = [
        ("electricity-maps", EwifDataset::Primary),
        ("wri", EwifDataset::WorldResourcesInstitute),
    ];
    let configs: Vec<CampaignConfig> = datasets
        .iter()
        .map(|&(_, dataset)| {
            let mut config = CampaignConfig::paper_default(scale.days, 0.5, scale.seed);
            config.telemetry.dataset = dataset;
            config
        })
        .collect();
    let per_config = matrix_savings(
        configs,
        &[SchedulerKind::Ecovisor, SchedulerKind::WaterWise],
    );
    for ((label, _), rows) in datasets.iter().zip(per_config) {
        for (kind, carbon, water) in rows {
            table.row(&[
                label.to_string(),
                kind.label().to_string(),
                pct(carbon),
                pct(water),
            ]);
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 8 — objective-weight sensitivity
// ---------------------------------------------------------------------------

/// Fig. 8: WaterWise savings when λ_CO2 is 0.3 / 0.5 / 0.7 (50% tolerance).
///
/// The workload comes from `scenarios/fig08.spec`; the sweep re-weights the
/// scenario's objective at each λ_CO2.
pub fn fig08_weight_sensitivity(scenario: &Scenario) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 8 — weight sensitivity (50% delay tolerance)",
        &["lambda_co2", "carbon saving", "water saving"],
    );
    let lambdas = [0.3, 0.5, 0.7];
    let configs: Vec<CampaignConfig> = lambdas
        .iter()
        .map(|&lambda| {
            scenario
                .config
                .clone()
                .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(lambda))
        })
        .collect();
    let per_config = matrix_savings(configs, &[SchedulerKind::WaterWise]);
    for (&lambda, rows) in lambdas.iter().zip(per_config) {
        let (_, carbon, water) = rows[0];
        table.row(&[format!("{lambda:.1}"), pct(carbon), pct(water)]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 9 — Alibaba trace
// ---------------------------------------------------------------------------

/// Fig. 9: the Fig. 5 comparison repeated with the Alibaba-like trace.
pub fn fig09_alibaba(scale: ExperimentScale) -> Vec<Table> {
    vec![savings_sweep(
        "Fig. 9 — savings vs baseline (Alibaba-like trace)",
        |tol| {
            CampaignConfig::paper_default(scale.alibaba_days(), tol, scale.seed)
                .with_alibaba_trace(scale.alibaba_days(), scale.seed)
                .with_delay_tolerance(tol)
        },
        &[0.25, 0.50, 0.75, 1.00],
        &[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
            SchedulerKind::WaterWise,
        ],
    )]
}

// ---------------------------------------------------------------------------
// Fig. 10 — load-balancer comparison
// ---------------------------------------------------------------------------

/// Fig. 10: WaterWise vs Round-Robin and Least-Load (50% tolerance).
pub fn fig10_loadbalancers(scale: ExperimentScale) -> Vec<Table> {
    let campaign = Campaign::new(CampaignConfig::paper_default(scale.days, 0.5, scale.seed));
    let mut table = Table::new(
        "Fig. 10 — savings vs baseline of load balancers and WaterWise",
        &["scheduler", "carbon saving", "water saving"],
    );
    let rows = campaign
        .savings_vs_baseline(&[
            SchedulerKind::RoundRobin,
            SchedulerKind::LeastLoad,
            SchedulerKind::WaterWise,
        ])
        .expect("campaign must run");
    for (kind, carbon, water) in rows {
        table.row(&[kind.label().to_string(), pct(carbon), pct(water)]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 11 — utilization sensitivity
// ---------------------------------------------------------------------------

/// Fig. 11: savings at roughly 5%, 15%, and 25% average utilization
/// (obtained by changing the number of available servers per region).
pub fn fig11_utilization(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 11 — utilization sensitivity (50% delay tolerance)",
        &[
            "servers/region",
            "target util",
            "scheduler",
            "carbon saving",
            "water saving",
        ],
    );
    let levels = [(840usize, "5%"), (280, "15%"), (168, "25%")];
    let configs: Vec<CampaignConfig> = levels
        .iter()
        .map(|&(servers, _)| {
            CampaignConfig::paper_default(scale.days, 0.5, scale.seed)
                .with_servers_per_region(servers)
        })
        .collect();
    let per_config = matrix_savings(
        configs,
        &[
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
            SchedulerKind::WaterWise,
        ],
    );
    for (&(servers, util), rows) in levels.iter().zip(per_config) {
        for (kind, carbon, water) in rows {
            table.row(&[
                servers.to_string(),
                util.to_string(),
                kind.label().to_string(),
                pct(carbon),
                pct(water),
            ]);
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 12 — region availability
// ---------------------------------------------------------------------------

/// Fig. 12: WaterWise savings when only a subset of regions is available.
pub fn fig12_region_availability(scale: ExperimentScale) -> Vec<Table> {
    let subsets: [(&str, &[Region]); 3] = [
        (
            "Zurich-Madrid-Oregon-Milan",
            &[
                Region::Zurich,
                Region::Madrid,
                Region::Oregon,
                Region::Milan,
            ],
        ),
        (
            "Zurich-Milan-Mumbai",
            &[Region::Zurich, Region::Milan, Region::Mumbai],
        ),
        ("Zurich-Oregon", &[Region::Zurich, Region::Oregon]),
    ];
    let mut table = Table::new(
        "Fig. 12 — sensitivity to region availability (50% tolerance)",
        &["available regions", "carbon saving", "water saving"],
    );
    let configs: Vec<CampaignConfig> = subsets
        .iter()
        .map(|&(_, regions)| {
            CampaignConfig::paper_default(scale.days, 0.5, scale.seed).with_regions(regions)
        })
        .collect();
    let per_config = matrix_savings(configs, &[SchedulerKind::WaterWise]);
    for ((label, _), rows) in subsets.iter().zip(per_config) {
        let (_, carbon, water) = rows[0];
        table.row(&[label.to_string(), pct(carbon), pct(water)]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 13 — decision-making overhead
// ---------------------------------------------------------------------------

/// Fig. 13: scheduler decision-making overhead over time, for the Borg-like
/// and Alibaba-like traces, expressed as a percentage of the mean job
/// execution time.
pub fn fig13_overhead(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 13 — WaterWise decision-making overhead over time",
        &[
            "trace",
            "window (min)",
            "mean decision time (ms)",
            "% of mean execution time",
        ],
    );
    for (label, config) in [
        (
            "google-borg",
            CampaignConfig::paper_default(scale.days, 0.5, scale.seed),
        ),
        (
            "alibaba-vm",
            CampaignConfig::paper_default(scale.alibaba_days(), 0.5, scale.seed)
                .with_alibaba_trace(scale.alibaba_days(), scale.seed)
                .with_delay_tolerance(0.5),
        ),
    ] {
        let campaign = Campaign::new(config);
        let outcome = campaign
            .run(SchedulerKind::WaterWise)
            .expect("campaign must run");
        let mean_exec = outcome
            .report
            .outcomes
            .iter()
            .map(|o| o.execution_time.value())
            .sum::<f64>()
            / outcome.report.outcomes.len().max(1) as f64;
        // Bin the overhead samples into ~6 windows across the campaign.
        let samples = &outcome.report.overhead;
        if samples.is_empty() {
            continue;
        }
        let start = samples.first().unwrap().sim_time.value();
        let end = samples.last().unwrap().sim_time.value().max(start + 1.0);
        let bins = 6usize;
        let width = (end - start) / bins as f64;
        for b in 0..bins {
            let lo = start + b as f64 * width;
            let hi = lo + width;
            let in_bin: Vec<f64> = samples
                .iter()
                .filter(|s| s.sim_time.value() >= lo && s.sim_time.value() < hi)
                .map(|s| s.wall_clock.value())
                .collect();
            if in_bin.is_empty() {
                continue;
            }
            let mean = in_bin.iter().sum::<f64>() / in_bin.len() as f64;
            table.row(&[
                label.to_string(),
                format!("{:.0}", (lo - start) / 60.0),
                fmt2(mean * 1000.0),
                format!("{:.4}%", mean / mean_exec * 100.0),
            ]);
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 14 — warm-started rolling-horizon solves (this reproduction's own
// overhead study; not a figure of the paper)
// ---------------------------------------------------------------------------

/// Fig. 14: cold versus warm-started rolling-horizon solving on the Fig. 5
/// workload, across sliding-window (horizon) lengths. Reports simplex pivots
/// per solve — total and on the steady-state slots (the last three quarters
/// of the campaign's rounds) — warm-start coverage, decision latency, and
/// the steady-state pivot speedup of warm over cold.
///
/// The workload comes from `scenarios/fig14.spec`; the sweep overrides the
/// scenario's warm-start flag and horizon per cell.
pub fn fig14_warmstart(scenario: &Scenario) -> Vec<Table> {
    let mut table = Table::new(
        "Fig. 14 — cold vs warm-started solves (Borg-like trace, 50% tolerance)",
        &[
            "horizon",
            "mode",
            "rounds",
            "pivots/solve",
            "steady pivots/solve",
            "warm solve %",
            "mean decision (ms)",
            "steady pivot speedup",
        ],
    );
    for horizon in [Some(16), Some(32), Some(64), None] {
        // NaN until the cold run actually reports steady-state pivots, so a
        // skipped or empty cold row can never yield a bogus speedup.
        let mut cold_steady_pivots = f64::NAN;
        for warm in [false, true] {
            let mut config = scenario.config.clone();
            config.waterwise.warm_start = warm;
            config.waterwise.horizon = horizon;
            let outcome = Campaign::new(config)
                .run(SchedulerKind::WaterWise)
                .expect("campaign must run");
            let samples: Vec<_> = outcome
                .report
                .overhead
                .iter()
                .filter(|s| s.solver.is_some_and(|a| a.solves > 0))
                .collect();
            if samples.is_empty() {
                continue;
            }
            let activity_over = |range: &[&waterwise_cluster::OverheadSample]| {
                let mut total = waterwise_cluster::SolverActivity::default();
                for s in range {
                    if let Some(a) = &s.solver {
                        total.accumulate(a);
                    }
                }
                total
            };
            let total = activity_over(&samples);
            // Steady state: skip the warm-up quarter of the rounds.
            let steady = activity_over(&samples[samples.len() / 4..]);
            let steady_pivots = steady.pivots_per_solve();
            if !warm {
                cold_steady_pivots = steady_pivots;
            }
            let speedup = if warm && steady_pivots > 0.0 && cold_steady_pivots.is_finite() {
                format!("{:.2}x", cold_steady_pivots / steady_pivots)
            } else {
                "-".to_string()
            };
            table.row(&[
                horizon.map_or("capacity".to_string(), |h| h.to_string()),
                if warm { "warm" } else { "cold" }.to_string(),
                samples.len().to_string(),
                fmt2(total.pivots_per_solve()),
                fmt2(steady_pivots),
                format!("{:.0}%", total.warm_solve_fraction() * 100.0),
                fmt2(outcome.summary.mean_decision_time.value() * 1000.0),
                speedup,
            ]);
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 15 — cross-campaign solution caching (this reproduction's own study;
// not a figure of the paper)
// ---------------------------------------------------------------------------

/// Fig. 15: MILP solution-cache effectiveness on a tolerance × weight
/// campaign matrix (the Fig. 5 / Fig. 8 sweep axes), comparing three modes:
/// no cache, one cache per campaign cell, and a single cache shared across
/// the whole `run_matrix` sweep. Schedules are asserted byte-identical
/// across all three modes; only solver work and cache traffic differ.
pub fn fig15_solcache(scale: ExperimentScale) -> Vec<Table> {
    let tolerances = [0.25, 0.50, 1.00];
    let lambdas = [0.3, 0.5, 0.7];
    let configs = |mode: &SolutionCacheMode, warm_start: bool| -> Vec<CampaignConfig> {
        tolerances
            .iter()
            .flat_map(|&tol| {
                lambdas.iter().map(move |&lambda| {
                    CampaignConfig::paper_default(scale.days, tol, scale.seed)
                        .with_weights(ObjectiveWeights::paper_default().with_carbon_weight(lambda))
                })
            })
            .map(|mut config| {
                config.waterwise.warm_start = warm_start;
                config.with_solution_cache(mode.clone())
            })
            .collect()
    };

    let mut table = Table::new(
        "Fig. 15 — MILP solution cache across a 3×3 tolerance/weight matrix",
        &[
            "mode",
            "sched hints",
            "cells",
            "solves",
            "pivots/solve",
            "lookups",
            "exact hits",
            "hint hits",
            "hit rate",
            "evictions",
        ],
    );
    // One handle shared by every `shared` row: the second (cold-scheduler)
    // sweep replays bit-identical models against the warmed cache, so its
    // exact hits skip those solves entirely.
    let shared = SolutionCache::shared();
    let rows = [
        (SolutionCacheMode::Off, true),
        (SolutionCacheMode::PerCampaign, true),
        (SolutionCacheMode::Shared(shared.clone()), true),
        (SolutionCacheMode::Off, false),
        (SolutionCacheMode::Shared(shared), false),
    ];
    let mut reference: Option<Vec<Vec<waterwise_cluster::JobOutcome>>> = None;
    for (mode, warm_start) in &rows {
        let matrix = Campaign::run_matrix(
            &configs(mode, *warm_start),
            &[SchedulerKind::WaterWise],
            Parallelism::Auto,
        )
        .expect("campaign must run");
        let mut total = waterwise_cluster::SolverActivity::default();
        let mut schedules = Vec::with_capacity(matrix.len());
        for row in &matrix {
            for outcome in row {
                total.accumulate(&outcome.summary.solver);
                schedules.push(outcome.report.outcomes.clone());
            }
        }
        // The determinism guarantee, checked end to end: every cache mode —
        // and the warm/cold scheduler split — must reproduce the cache-free
        // schedules byte for byte.
        match &reference {
            None => reference = Some(schedules),
            Some(baseline) => assert_eq!(
                baseline,
                &schedules,
                "{} mode changed a schedule",
                mode.label()
            ),
        }
        table.row(&[
            mode.label().to_string(),
            if *warm_start { "carried" } else { "none" }.to_string(),
            matrix.len().to_string(),
            total.solves.to_string(),
            fmt2(total.pivots_per_solve()),
            total.cache_lookups().to_string(),
            total.cache_exact_hits.to_string(),
            total.cache_hint_hits.to_string(),
            pct(total.cache_hit_fraction() * 100.0),
            total.cache_evictions.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 16 — pipelined engine: sync vs pipelined wall-clock and stalls
// ---------------------------------------------------------------------------

/// Fig. 16: the pipelined simulation engine versus the synchronous engine
/// on the Fig. 5 workload, across scheduling horizons and campaign-matrix
/// sizes.
///
/// Every `(shape, horizon)` cell is replayed under `EngineMode::Sync` and
/// under pipelined engines with 1, 2, and 4 workers; the experiment
/// **asserts byte-identical schedules across all modes** (the pipeline's
/// determinism contract) and reports, per mode:
///
/// * end-to-end wall-clock and the speedup over sync — a genuine speedup
///   requires ≥ 2 hardware threads, since the pipeline overlaps solver,
///   event, and accounting work on separate threads (a single-core host
///   timeslices them and reports ≈ 1.0×);
/// * the event-path stall: how long the event stage was blocked on decision
///   commits (sync blocks for every full solve by construction), which is
///   the latency a live placement frontend would see;
/// * how many arrival events were ingested *during* solves (the overlap
///   that keeps arrival intake live while the MILP runs).
pub fn fig16_pipeline(scale: ExperimentScale) -> Vec<Table> {
    use std::time::Instant;
    use waterwise_core::EngineMode;

    let horizons: [Option<usize>; 3] = [None, Some(40), Some(10)];
    let modes = [
        EngineMode::Sync,
        EngineMode::Pipelined { workers: 1 },
        EngineMode::Pipelined { workers: 2 },
        EngineMode::Pipelined { workers: 4 },
    ];
    // Matrix shapes: the single Fig. 5 cell, and a 2×2 tolerance × seed
    // sweep of the same workload.
    let shapes: [(&str, Vec<(f64, u64)>); 2] = [
        ("1x1", vec![(0.5, scale.seed)]),
        (
            "2x2",
            [0.25, 0.75]
                .iter()
                .flat_map(|&tol| [scale.seed, scale.seed + 1].map(|seed| (tol, seed)))
                .collect(),
        ),
    ];

    let mut table = Table::new(
        "Fig. 16 — pipelined vs sync engine on the Fig. 5 workload",
        &[
            "shape",
            "horizon",
            "mode",
            "cells",
            "wall (ms)",
            "speedup",
            "solver busy (ms)",
            "event stall (ms)",
            "stall frac",
            "arrivals overlapped",
        ],
    );

    for (shape, cells) in &shapes {
        for &horizon in &horizons {
            let configs = |engine: EngineMode| -> Vec<CampaignConfig> {
                cells
                    .iter()
                    .map(|&(tol, seed)| {
                        let mut config = CampaignConfig::paper_default(scale.days, tol, seed);
                        config.waterwise = config.waterwise.clone().with_horizon(horizon);
                        config.with_engine_mode(engine)
                    })
                    .collect()
            };
            let mut reference: Option<(Vec<Vec<waterwise_cluster::JobOutcome>>, f64)> = None;
            for &mode in &modes {
                // Prepare the campaigns (trace + telemetry generation)
                // *outside* the timer: that cost is engine-independent and
                // would otherwise bias every speedup toward 1.0×. The timer
                // covers only the engine replays.
                let campaigns: Vec<Campaign> =
                    configs(mode).into_iter().map(Campaign::new).collect();
                let started = Instant::now();
                let outcomes: Vec<_> = campaigns
                    .iter()
                    .map(|campaign| {
                        campaign
                            .run(SchedulerKind::WaterWise)
                            .expect("campaign must run")
                    })
                    .collect();
                let wall = started.elapsed().as_secs_f64();

                let schedules: Vec<_> =
                    outcomes.iter().map(|o| o.report.outcomes.clone()).collect();
                let mut solver_busy = 0.0;
                let mut stall = 0.0;
                let mut overlapped = 0usize;
                for outcome in &outcomes {
                    match &outcome.summary.pipeline {
                        Some(stats) => {
                            solver_busy += stats.solver_busy.value();
                            stall += stats.commit_wait.value();
                            overlapped += stats.overlapped_arrivals;
                        }
                        None => {
                            // The sync engine stalls the event path for
                            // every full inline solve.
                            let busy: f64 = outcome
                                .report
                                .overhead
                                .iter()
                                .map(|s| s.wall_clock.value())
                                .sum();
                            solver_busy += busy;
                            stall += busy;
                        }
                    }
                }
                // The determinism contract, asserted end to end: every
                // engine mode must reproduce the sync schedules byte for
                // byte.
                let speedup = match &reference {
                    None => {
                        reference = Some((schedules, wall));
                        1.0
                    }
                    Some((baseline, sync_wall)) => {
                        assert_eq!(
                            baseline,
                            &schedules,
                            "{} changed a schedule (shape {shape}, horizon {horizon:?})",
                            mode.label()
                        );
                        sync_wall / wall
                    }
                };
                table.row(&[
                    shape.to_string(),
                    horizon.map_or("none".to_string(), |h| h.to_string()),
                    mode.label(),
                    cells.len().to_string(),
                    fmt2(wall * 1e3),
                    format!("{:.2}x", speedup),
                    fmt2(solver_busy * 1e3),
                    fmt2(stall * 1e3),
                    pct(if solver_busy > 0.0 {
                        stall / solver_busy * 100.0
                    } else {
                        0.0
                    }),
                    overlapped.to_string(),
                ]);
            }
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 17 — the online placement service over TCP
// ---------------------------------------------------------------------------

/// Fig. 17: throughput and per-request placement latency of the online
/// placement service (not a figure of the paper). The Fig. 5 workload is
/// replayed as a live request stream over the line-delimited-JSON TCP path,
/// under the discrete clock (sync and pipelined engines) and the
/// free-running real-time clock — and every cell's schedule is asserted
/// **byte-identical** to an offline replay of the same request sequence,
/// the guarantee that makes the service a drop-in front-end for the batch
/// engine.
///
/// Latency semantics differ by clock: under `RealTime` a response flushes
/// as soon as the scheduler commits, so the percentiles measure true
/// request-to-placement service latency; under `Discrete` the stream
/// itself is the clock, so a placement can only flush once later requests
/// (or the closing stream) move simulated time past its scheduling round —
/// the percentiles then measure replay pacing, not service speed.
///
/// The workload, simulation shape, and scheduler configuration come from
/// `scenarios/fig17.spec`; the sweep overrides only the clock and engine
/// per cell (the spec's own clock is the offline reference's).
pub fn fig17_service(scenario: &Scenario) -> Vec<Table> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;
    use waterwise_cluster::{ClockMode, EngineMode, Simulator};
    use waterwise_core::build_scheduler;
    use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
    use waterwise_traces::{JobSpec, TraceGenerator};

    let jobs: Vec<JobSpec> = TraceGenerator::new(scenario.config.trace.clone()).generate();
    let simulation = scenario.config.simulation.clone();
    let telemetry = scenario.config.telemetry;
    let make_scheduler = || {
        build_scheduler(
            SchedulerKind::WaterWise,
            SyntheticTelemetry::generate(telemetry).shared(),
            FootprintEstimator::new(simulation.datacenter),
            &scenario.config.waterwise,
            None,
        )
    };

    // The offline reference schedule for the decision-identity asserts.
    let offline = Simulator::new(
        simulation.clone(),
        SyntheticTelemetry::generate(telemetry).shared(),
    )
    .expect("valid simulation config")
    .run(&jobs, make_scheduler().as_mut())
    .expect("offline reference campaign must run");
    // Pick the real-time scale so the simulated campaign compresses into a
    // few wall-clock seconds regardless of the trace length.
    let real_time_scale = (offline.makespan.value() / 2.0).max(1000.0);

    let cells: [(&str, ClockMode, EngineMode); 3] = [
        ("discrete", ClockMode::Discrete, EngineMode::Sync),
        (
            "discrete",
            ClockMode::Discrete,
            EngineMode::Pipelined { workers: 2 },
        ),
        (
            "real-time",
            ClockMode::RealTime {
                scale: real_time_scale,
            },
            EngineMode::Pipelined { workers: 2 },
        ),
    ];

    let mut table = Table::new(
        "Fig. 17 — online placement service over TCP (Fig. 5 workload)",
        &[
            "clock",
            "engine",
            "requests",
            "wall (s)",
            "req/s",
            "placed",
            "lat p50 (ms)",
            "lat p95 (ms)",
            "lat p99 (ms)",
            "identical",
        ],
    );

    for (clock_label, clock, engine) in cells {
        let config = ServiceConfig::new(simulation.clone().with_engine_mode(engine), telemetry)
            .with_clock(clock);
        let service = PlacementService::new(config).expect("valid service config");
        let server = TcpPlacementServer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");

        let session_started = Instant::now();
        let (report, latencies) = std::thread::scope(|scope| {
            let jobs = &jobs;
            let client = scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect to service");
                let mut writer = stream.try_clone().expect("clone stream");
                // Reading must overlap writing or the two directions
                // deadlock on full socket buffers; the reader also carries
                // the per-request latency bookkeeping.
                let send_times = std::sync::Mutex::new(
                    std::collections::HashMap::<u64, Instant>::with_capacity(jobs.len()),
                );
                std::thread::scope(|inner| {
                    let send_times = &send_times;
                    let reader = inner.spawn(move || {
                        let mut latencies: Vec<f64> = Vec::with_capacity(jobs.len());
                        for line in BufReader::new(stream).lines() {
                            let line = line.expect("read response line");
                            let Some(id) = waterwise_service::wire::placement_job_id(&line) else {
                                continue;
                            };
                            if let Some(sent) =
                                send_times.lock().expect("send-time map lock").remove(&id)
                            {
                                latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        latencies
                    });
                    for spec in jobs.iter() {
                        send_times
                            .lock()
                            .expect("send-time map lock")
                            .insert(spec.id.0, Instant::now());
                        writeln!(writer, "{}", waterwise_service::wire::encode_request(spec))
                            .expect("send request");
                    }
                    writer.flush().expect("flush requests");
                    stream_half_close(&writer);
                    reader.join().expect("response reader panicked")
                })
            });
            let report = server
                .serve_connection(&service, make_scheduler().as_mut())
                .expect("serving session must complete");
            (report, client.join().expect("client panicked"))
        });
        let wall = session_started.elapsed().as_secs_f64();

        // The decision-identity contract: the schedule served online is
        // exactly the schedule an offline replay of the same request
        // sequence produces.
        assert_eq!(
            report.accepted,
            jobs.len(),
            "every request admitted ({clock_label}, {})",
            engine.label()
        );
        match clock {
            ClockMode::Discrete => {
                assert_eq!(report.trace, jobs, "discrete stamps must keep the trace");
                assert_eq!(
                    report.report.outcomes,
                    offline.outcomes,
                    "online ({clock_label}, {}) diverged from the offline replay",
                    engine.label()
                );
            }
            ClockMode::RealTime { .. } => {
                // Stamps depend on wall timing; the *recorded* trace is the
                // replayable artifact.
                let replay = Simulator::new(
                    simulation.clone(),
                    SyntheticTelemetry::generate(telemetry).shared(),
                )
                .expect("valid simulation config")
                .run(&report.trace, make_scheduler().as_mut())
                .expect("replay campaign must run");
                assert_eq!(
                    report.report.outcomes, replay.outcomes,
                    "online (real-time) diverged from the replay of its recorded trace"
                );
            }
        }

        table.row(&[
            clock_label.to_string(),
            engine.label(),
            report.accepted.to_string(),
            fmt2(wall),
            fmt2(report.accepted as f64 / wall.max(1e-9)),
            report.served.to_string(),
            fmt2(percentile(&latencies, 50.0)),
            fmt2(percentile(&latencies, 95.0)),
            fmt2(percentile(&latencies, 99.0)),
            "yes".to_string(),
        ]);
    }

    // The multi-session cell: the same workload split round-robin across
    // four concurrent tenant clients multiplexed onto ONE persistent engine
    // run (streaming admission, deficit-round-robin drain). "identical"
    // here is the journal contract: the admission journal of the live
    // concurrent run replays offline to the byte-identical schedule.
    {
        use waterwise_service::{AdmissionConfig, AdmissionMode, ClusterHost, TcpClusterServer};

        const SESSIONS: usize = 4;
        let engine = EngineMode::Pipelined { workers: 2 };
        let service = PlacementService::new(
            ServiceConfig::new(simulation.clone().with_engine_mode(engine), telemetry)
                .with_clock(ClockMode::Discrete),
        )
        .expect("valid service config");
        let host = ClusterHost::start_with_service(
            service,
            AdmissionConfig {
                tenant_inflight_quota: jobs.len().max(1),
                mode: AdmissionMode::Streaming {
                    close_after_sessions: Some(SESSIONS),
                },
                ..AdmissionConfig::default()
            },
            make_scheduler(),
        )
        .expect("host must start");
        let server = TcpClusterServer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let streams: Vec<Vec<&JobSpec>> = (0..SESSIONS)
            .map(|s| jobs.iter().skip(s).step_by(SESSIONS).collect())
            .collect();

        let session_started = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve_sessions(&host, SESSIONS));
            let clients: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(s, stream)| {
                    scope.spawn(move || {
                        let socket = TcpStream::connect(addr).expect("connect to service");
                        let mut writer = socket.try_clone().expect("clone stream");
                        let send_times = std::sync::Mutex::new(std::collections::HashMap::<
                            u64,
                            Instant,
                        >::with_capacity(
                            stream.len()
                        ));
                        std::thread::scope(|inner| {
                            let send_times = &send_times;
                            let reader = inner.spawn(move || {
                                let mut latencies: Vec<f64> = Vec::with_capacity(stream.len());
                                for line in BufReader::new(socket).lines() {
                                    let line = line.expect("read response line");
                                    let Some(id) = waterwise_service::wire::placement_job_id(&line)
                                    else {
                                        continue;
                                    };
                                    if let Some(sent) =
                                        send_times.lock().expect("send-time map lock").remove(&id)
                                    {
                                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                                    }
                                }
                                latencies
                            });
                            for spec in stream.iter() {
                                send_times
                                    .lock()
                                    .expect("send-time map lock")
                                    .insert(spec.id.0, Instant::now());
                                writeln!(
                                    writer,
                                    "{}",
                                    waterwise_service::wire::encode_tenant_request(
                                        &format!("tenant-{s}"),
                                        spec
                                    )
                                )
                                .expect("send request");
                            }
                            writer.flush().expect("flush requests");
                            stream_half_close(&writer);
                            let latencies = reader.join().expect("response reader panicked");
                            assert_eq!(
                                latencies.len(),
                                stream.len(),
                                "tenant-{s}: every request must be placed"
                            );
                            latencies
                        })
                    })
                })
                .collect();
            let latencies = clients
                .into_iter()
                .flat_map(|c| c.join().expect("client panicked"))
                .collect();
            serving
                .join()
                .expect("server panicked")
                .expect("sessions must serve");
            latencies
        });
        let wall = session_started.elapsed().as_secs_f64();
        let report = host.shutdown().expect("host shutdown");
        assert_eq!(report.accepted, jobs.len(), "every request admitted");
        assert_eq!(report.served, jobs.len(), "every placement delivered");

        // journal == replay: the concurrent run's admission journal,
        // replayed offline on a fresh engine, reproduces the schedule
        // byte for byte.
        let replay_service = PlacementService::new(
            ServiceConfig::new(simulation.clone(), telemetry).with_clock(ClockMode::Discrete),
        )
        .expect("valid service config");
        let replay = report
            .journal
            .replay(&replay_service, make_scheduler().as_mut())
            .expect("journal must replay");
        assert_eq!(
            report.report.outcomes, replay.report.report.outcomes,
            "offline journal replay diverged from the live multi-session run"
        );
        assert_eq!(report.schedule_digest(), replay.schedule_digest());

        table.row(&[
            "discrete".to_string(),
            format!("{} x{SESSIONS} sessions", engine.label()),
            report.accepted.to_string(),
            fmt2(wall),
            fmt2(report.accepted as f64 / wall.max(1e-9)),
            report.served.to_string(),
            fmt2(percentile(&latencies, 50.0)),
            fmt2(percentile(&latencies, 95.0)),
            fmt2(percentile(&latencies, 99.0)),
            "yes".to_string(),
        ]);
    }
    vec![table]
}

fn stream_half_close(stream: &std::net::TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Nearest-rank percentile (p in 0..=100) of unsorted samples; 0 when empty.
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------------
// Fig. 18 — scheduler hot path: sharded preparation + dual-simplex restarts
// ---------------------------------------------------------------------------

/// Fig. 18: the scheduler hot path under its two multicore levers (this
/// reproduction's own study; not a figure of the paper).
///
/// **Table A** drives [`waterwise_core::WaterWiseScheduler`] directly on
/// fixed slot batches and splits each slot's wall-clock into numerics
/// preparation (candidate footprints, normalizers, objective coefficients)
/// versus MILP build + solve, comparing serial against sharded preparation.
/// Decisions are asserted byte-identical; on a single-core host the prepare
/// speedup is ≈ 1.0× by construction (the pool falls back to one worker).
///
/// **Table B** measures dual-simplex restarts against cold per-node solves
/// on a branch-and-bound-heavy knapsack battery. The campaign's assignment
/// MILPs are almost always root-integral, so their search rarely branches;
/// the battery makes the dual path's pivot savings visible on models that
/// actually explore nodes, asserting identical solutions either way.
///
/// **Table C** replays the Fig. 5 campaign under every lever setting and
/// both engine modes, asserts byte-identical schedules throughout, and
/// reports the slot-time split between solver work and the rest of the
/// engine (event processing + footprint accounting) plus the campaign's
/// dual-restart counters.
pub fn fig18_hotpath(scale: ExperimentScale) -> Vec<Table> {
    use std::sync::Arc;
    use std::time::Instant;
    use waterwise_cluster::{PendingJob, RegionView, Scheduler, SchedulingContext, TransferModel};
    use waterwise_core::{EngineMode, WaterWiseConfig, WaterWiseScheduler};

    // -- Table A: per-slot prepare vs solve, serial vs sharded preparation --
    let mut breakdown = Table::new(
        "Fig. 18A — per-slot breakdown: numerics preparation vs MILP solve",
        &[
            "batch",
            "timed slots",
            "workers",
            "prep serial (ms)",
            "prep sharded (ms)",
            "prep speedup",
            "solve (ms)",
            "prep share",
        ],
    );
    let trace = Campaign::new(CampaignConfig::paper_default(scale.days, 0.5, scale.seed));
    let specs = trace.jobs();
    let transfer = TransferModel::paper_default();
    let slots = 5usize;
    for batch in [8usize, 24, 64] {
        let batch = batch.min(specs.len());
        if batch == 0 {
            continue;
        }
        let provider: Arc<dyn ConditionsProvider> =
            Arc::new(SyntheticTelemetry::with_seed(scale.seed));
        let estimator = FootprintEstimator::paper_default();
        let mut serial =
            WaterWiseScheduler::new(provider.clone(), estimator, WaterWiseConfig::default());
        let mut sharded = WaterWiseScheduler::new(
            provider.clone(),
            estimator,
            WaterWiseConfig::default().with_parallelism(Parallelism::Auto),
        );
        let regions: Vec<RegionView> = ALL_REGIONS
            .iter()
            .map(|&region| RegionView {
                region,
                total_servers: batch,
                busy_servers: 0,
                queued_jobs: 0,
                inbound_jobs: 0,
            })
            .collect();
        let batches: Vec<Vec<PendingJob>> = (0..slots)
            .map(|slot| {
                let now = Seconds::from_hours(6.0 + 0.25 * slot as f64);
                (0..batch)
                    .map(|i| PendingJob {
                        spec: specs[(slot * batch + i) % specs.len()].clone(),
                        received_at: now,
                        deferrals: 0,
                    })
                    .collect()
            })
            .collect();
        // Each scheduler replays the slot sequence contiguously; slot 0 is
        // an untimed warm-up (allocator + cache warm-up would otherwise
        // dominate these sub-millisecond phases).
        let replay = |scheduler: &mut WaterWiseScheduler| {
            let mut decisions = Vec::with_capacity(slots);
            let mut timed_from = scheduler.stats();
            for (slot, pending) in batches.iter().enumerate() {
                let ctx = SchedulingContext {
                    now: Seconds::from_hours(6.0 + 0.25 * slot as f64),
                    pending,
                    regions: &regions,
                    delay_tolerance: 0.5,
                    transfer: &transfer,
                };
                decisions.push(scheduler.schedule(&ctx));
                if slot == 0 {
                    timed_from = scheduler.stats();
                }
            }
            let stats = scheduler.stats();
            (
                decisions,
                (stats.prepare_seconds - timed_from.prepare_seconds) * 1e3,
                (stats.solve_seconds - timed_from.solve_seconds) * 1e3,
            )
        };
        let (serial_decisions, serial_prep, solve) = replay(&mut serial);
        let (sharded_decisions, sharded_prep, _) = replay(&mut sharded);
        assert_eq!(
            serial_decisions, sharded_decisions,
            "sharded prepare changed a slot decision (batch {batch})"
        );
        // The deterministic solver work must match exactly; only the
        // wall-clock split may differ.
        assert_eq!(serial.stats().warm, sharded.stats().warm);
        breakdown.row(&[
            batch.to_string(),
            (slots - 1).to_string(),
            Parallelism::Auto.worker_count(batch).to_string(),
            fmt2(serial_prep),
            fmt2(sharded_prep),
            format!("{:.2}x", serial_prep / sharded_prep.max(1e-9)),
            fmt2(solve),
            pct(serial_prep / (serial_prep + solve).max(1e-9) * 100.0),
        ]);
    }

    // -- Table B: dual restarts vs cold node solves where B&B branches --
    let mut battery = Table::new(
        "Fig. 18B — dual-simplex restarts on a B&B-heavy knapsack battery",
        &[
            "vars",
            "node solves",
            "mode",
            "nodes",
            "pivots",
            "pivots/node",
            "dual restarts",
            "reuse hits",
            "bound flips",
            "pivot reduction",
        ],
    );
    let mut rng = scale.seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let mut next_f = move |lo: f64, hi: f64| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        lo + (hi - lo) * ((rng >> 11) as f64 / (1u64 << 53) as f64)
    };
    let mut total_dual_restarts = 0usize;
    for n in [8usize, 12, 16] {
        let values: Vec<f64> = (0..n).map(|_| next_f(1.0, 10.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| next_f(1.0, 8.0)).collect();
        let volumes: Vec<f64> = (0..n).map(|_| next_f(1.0, 6.0)).collect();
        let build = || {
            let mut m = waterwise_milp::Model::new(format!("fig18-knapsack-{n}"));
            let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
            let mut value = waterwise_milp::LinExpr::zero();
            let mut weight = waterwise_milp::LinExpr::zero();
            let mut volume = waterwise_milp::LinExpr::zero();
            for (i, &v) in vars.iter().enumerate() {
                value.add_term(v, values[i]);
                weight.add_term(v, weights[i]);
                volume.add_term(v, volumes[i]);
            }
            let cap = |c: &[f64]| c.iter().sum::<f64>() * 0.45;
            m.add_constraint(
                "weight",
                weight,
                waterwise_milp::Sense::LessEqual,
                cap(&weights),
            );
            m.add_constraint(
                "volume",
                volume,
                waterwise_milp::Sense::LessEqual,
                cap(&volumes),
            );
            m.maximize(value);
            m
        };
        let simplex = waterwise_milp::SimplexConfig::default();
        let mut reference: Option<waterwise_milp::Solution> = None;
        let mut cold_pivots = 0usize;
        for dual in [false, true] {
            let bb = waterwise_milp::BranchBoundConfig {
                use_dual_restart: dual,
                ..Default::default()
            };
            let mut ws = waterwise_milp::SolverWorkspace::new();
            let solution = build()
                .solve_warm(&simplex, &bb, None, &mut ws)
                .expect("knapsack battery must solve");
            // The lever's contract: restarted and cold searches agree on
            // the optimum exactly.
            match &reference {
                None => reference = Some(solution.clone()),
                Some(cold) => {
                    assert_eq!(cold.status, solution.status, "{n} vars");
                    assert!(
                        (cold.objective - solution.objective).abs() < 1e-9,
                        "{n} vars: cold {} vs dual {}",
                        cold.objective,
                        solution.objective
                    );
                    assert_eq!(cold.values, solution.values, "{n} vars");
                }
            }
            let stats = ws.stats();
            let node_solves = stats.cold_solves + stats.warm_solves;
            if !dual {
                cold_pivots = solution.simplex_iterations;
            }
            total_dual_restarts += stats.dual_restarts;
            battery.row(&[
                n.to_string(),
                node_solves.to_string(),
                if dual { "dual restart" } else { "cold" }.to_string(),
                solution.nodes_explored.to_string(),
                solution.simplex_iterations.to_string(),
                fmt2(solution.simplex_iterations as f64 / solution.nodes_explored.max(1) as f64),
                stats.dual_restarts.to_string(),
                stats.basis_reuse_hits.to_string(),
                stats.bound_flips.to_string(),
                if dual && cold_pivots > 0 {
                    pct((cold_pivots as f64 - solution.simplex_iterations as f64)
                        / cold_pivots as f64
                        * 100.0)
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    assert!(
        total_dual_restarts > 0,
        "the battery never branched — it no longer exercises dual restarts"
    );

    // -- Table C: campaign identity + slot-time split across levers/modes --
    let mut campaign_table = Table::new(
        "Fig. 18C — campaign slot-time split under the hot-path levers",
        &[
            "engine",
            "lever",
            "wall (ms)",
            "solver (ms)",
            "events+accounting (ms)",
            "dual restarts",
            "reuse hits",
            "bound flips",
        ],
    );
    let mut reference: Option<Vec<waterwise_cluster::JobOutcome>> = None;
    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        for lever in ["serial+dual", "sharded", "cold-nodes"] {
            let mut config =
                CampaignConfig::paper_default(scale.days, 0.5, scale.seed).with_engine_mode(engine);
            match lever {
                "sharded" => {
                    config.waterwise = config.waterwise.clone().with_parallelism(Parallelism::Auto);
                }
                "cold-nodes" => config.waterwise.branch_bound.use_dual_restart = false,
                _ => {}
            }
            // Trace/telemetry generation happens outside the timer; it is
            // identical across rows and would only dilute the split.
            let campaign = Campaign::new(config);
            let started = Instant::now();
            let outcome = campaign
                .run(SchedulerKind::WaterWise)
                .expect("campaign must run");
            let wall = started.elapsed().as_secs_f64();
            // Neither lever may change a single placement, in either
            // engine mode.
            match &reference {
                None => reference = Some(outcome.report.outcomes.clone()),
                Some(baseline) => assert_eq!(
                    baseline, &outcome.report.outcomes,
                    "{lever} changed the schedule under {engine:?}"
                ),
            }
            let solver_busy = match &outcome.summary.pipeline {
                Some(stats) => stats.solver_busy.value(),
                None => outcome
                    .report
                    .overhead
                    .iter()
                    .map(|s| s.wall_clock.value())
                    .sum(),
            };
            let solver = &outcome.summary.solver;
            campaign_table.row(&[
                engine.label(),
                lever.to_string(),
                fmt2(wall * 1e3),
                fmt2(solver_busy * 1e3),
                fmt2((wall - solver_busy).max(0.0) * 1e3),
                solver.dual_restarts.to_string(),
                solver.basis_reuse_hits.to_string(),
                solver.bound_flips.to_string(),
            ]);
        }
    }

    vec![breakdown, battery, campaign_table]
}

// ---------------------------------------------------------------------------
// Table 2 — service time and violations
// ---------------------------------------------------------------------------

/// Table 2: average service time (normalized to execution time) and the
/// fraction of jobs violating their delay tolerance.
pub fn table2_service_time(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Table 2 — service time (normalized) and delay-tolerance violations",
        &[
            "delay tolerance",
            "scheduler",
            "service time (x exec)",
            "% jobs violating",
        ],
    );
    let tolerances = [0.25, 0.50, 0.75, 1.00];
    let configs: Vec<CampaignConfig> = tolerances
        .iter()
        .map(|&tol| CampaignConfig::paper_default(scale.days, tol, scale.seed))
        .collect();
    let matrix = Campaign::run_matrix(
        &configs,
        &[
            SchedulerKind::Baseline,
            SchedulerKind::CarbonGreedyOpt,
            SchedulerKind::WaterGreedyOpt,
            SchedulerKind::WaterWise,
        ],
        Parallelism::Auto,
    )
    .expect("campaign must run");
    for (&tol, row) in tolerances.iter().zip(&matrix) {
        for outcome in row {
            table.row(&[
                tolerance_label(tol),
                outcome.kind.label().to_string(),
                format!("{:.3}x", outcome.summary.mean_service_stretch),
                format!("{:.2}%", outcome.summary.violation_fraction * 100.0),
            ]);
        }
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Table 3 — communication overhead
// ---------------------------------------------------------------------------

/// Table 3: average carbon/water overhead of transferring a job from Oregon
/// to each remote region, as a percentage of the execution footprint.
pub fn table3_comm_overhead(scale: ExperimentScale) -> Vec<Table> {
    let telemetry = SyntheticTelemetry::with_seed(scale.seed);
    let estimator = FootprintEstimator::paper_default();
    let transfer = waterwise_cluster::TransferModel::paper_default();
    let mut table = Table::new(
        "Table 3 — communication overhead from Oregon (averaged over benchmarks)",
        &[
            "destination",
            "transfer time (s)",
            "carbon overhead (% exec)",
            "water overhead (% exec)",
        ],
    );
    for destination in [
        Region::Zurich,
        Region::Madrid,
        Region::Milan,
        Region::Mumbai,
    ] {
        let mut carbon_overheads = Vec::new();
        let mut water_overheads = Vec::new();
        let mut times = Vec::new();
        for benchmark in ALL_BENCHMARKS {
            let profile = benchmark.profile();
            let at = Seconds::from_hours(12.0);
            let conditions = telemetry.conditions(destination, at);
            let usage = waterwise_sustain::JobResourceUsage::new(
                profile.mean_energy(),
                profile.mean_execution_time,
            );
            let exec_footprint = estimator.estimate(usage, conditions);
            let transfer_energy =
                transfer.transfer_energy(Region::Oregon, destination, profile.package_bytes);
            let transfer_footprint = estimator.estimate_operational(
                waterwise_sustain::JobResourceUsage::new(transfer_energy, Seconds::zero()),
                conditions,
            );
            carbon_overheads.push(
                transfer_footprint.total_carbon().value() / exec_footprint.total_carbon().value()
                    * 100.0,
            );
            water_overheads.push(
                transfer_footprint.total_water().value() / exec_footprint.total_water().value()
                    * 100.0,
            );
            times.push(
                transfer
                    .transfer_time(Region::Oregon, destination, profile.package_bytes)
                    .value(),
            );
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.row(&[
            destination.name().to_string(),
            fmt2(mean(&times)),
            format!("{:.3}%", mean(&carbon_overheads)),
            format!("{:.3}%", mean(&water_overheads)),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Sensitivity studies (Sec. 6 text)
// ---------------------------------------------------------------------------

/// Sec. 6: ±10% error in the scheduler's carbon / water-intensity estimates
/// (50% delay tolerance).
pub fn sens_perturbation(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Sensitivity — ±10% estimate error (50% delay tolerance)",
        &[
            "carbon estimate error",
            "water estimate error",
            "carbon saving",
            "water saving",
        ],
    );
    let errors = [(1.0, 1.0), (1.1, 1.0), (0.9, 1.0), (1.0, 1.1), (1.0, 0.9)];
    let configs: Vec<CampaignConfig> = errors
        .iter()
        .map(|&(carbon_err, water_err)| {
            let mut config = CampaignConfig::paper_default(scale.days, 0.5, scale.seed);
            config.estimate_carbon_error = carbon_err;
            config.estimate_water_error = water_err;
            config
        })
        .collect();
    let per_config = matrix_savings(configs, &[SchedulerKind::WaterWise]);
    for (&(carbon_err, water_err), rows) in errors.iter().zip(per_config) {
        let (_, carbon, water) = rows[0];
        table.row(&[
            format!("{:+.0}%", (carbon_err - 1.0) * 100.0),
            format!("{:+.0}%", (water_err - 1.0) * 100.0),
            pct(carbon),
            pct(water),
        ]);
    }
    vec![table]
}

/// Sec. 6: doubling the Borg request rate (50% delay tolerance).
pub fn sens_request_rate(scale: ExperimentScale) -> Vec<Table> {
    let mut table = Table::new(
        "Sensitivity — request-rate scaling (50% delay tolerance)",
        &["rate multiplier", "carbon saving", "water saving"],
    );
    let multipliers = [1.0, 2.0];
    let configs: Vec<CampaignConfig> = multipliers
        .iter()
        .map(|&multiplier| {
            let mut config = CampaignConfig::paper_default(scale.days, 0.5, scale.seed);
            config.trace = config.trace.clone().with_rate_multiplier(multiplier);
            config
        })
        .collect();
    let per_config = matrix_savings(configs, &[SchedulerKind::WaterWise]);
    for (&multiplier, rows) in multipliers.iter().zip(per_config) {
        let (_, carbon, water) = rows[0];
        table.row(&[format!("{multiplier:.1}x"), pct(carbon), pct(water)]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// Fig. 19 — durable warm state: sweep → snapshot save → fresh load → re-sweep
// (this reproduction's own study; not a figure of the paper)
// ---------------------------------------------------------------------------

/// One sweep of the Fig. 19 persistence study: the schedule digest plus the
/// cache traffic and decision latency the sweep produced.
///
/// [`Fig19Run::encode`] / [`Fig19Run::parse`] carry a run across a process
/// boundary as a single machine-readable line — the `fig19_persist` binary
/// runs the resumed sweep in a freshly spawned process so the snapshot file
/// is the *only* state shared with the cold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19Run {
    /// `cold` or `resumed`.
    pub label: String,
    /// Jobs scheduled by the sweep.
    pub jobs: usize,
    /// Order-sensitive digest of the sweep's schedule.
    pub digest: u64,
    /// Exact cache hits during the sweep.
    pub exact_hits: usize,
    /// Total cache lookups during the sweep.
    pub lookups: usize,
    /// Mean per-decision scheduler latency, milliseconds.
    pub mean_decision_ms: f64,
    /// Whole-sweep wall time, milliseconds.
    pub wall_ms: f64,
    /// Cache entries at the end of the sweep.
    pub cache_entries: usize,
}

impl Fig19Run {
    /// Fraction of lookups answered by an exact hit (0.0 when the sweep
    /// never consulted the cache).
    pub fn exact_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.exact_hits as f64 / self.lookups as f64
        }
    }

    /// The single-line wire form: `fig19-run key=value ...`.
    pub fn encode(&self) -> String {
        format!(
            "fig19-run label={} jobs={} digest={:016x} exact_hits={} lookups={} \
             mean_decision_ms={:?} wall_ms={:?} cache_entries={}",
            self.label,
            self.jobs,
            self.digest,
            self.exact_hits,
            self.lookups,
            self.mean_decision_ms,
            self.wall_ms,
            self.cache_entries,
        )
    }

    /// Parse one [`Fig19Run::encode`] line; `None` for any other line.
    pub fn parse(line: &str) -> Option<Self> {
        let rest = line.trim().strip_prefix("fig19-run ")?;
        let mut run = Fig19Run {
            label: String::new(),
            jobs: 0,
            digest: 0,
            exact_hits: 0,
            lookups: 0,
            mean_decision_ms: f64::NAN,
            wall_ms: f64::NAN,
            cache_entries: 0,
        };
        for pair in rest.split_whitespace() {
            let (key, value) = pair.split_once('=')?;
            match key {
                "label" => run.label = value.to_string(),
                "jobs" => run.jobs = value.parse().ok()?,
                "digest" => run.digest = u64::from_str_radix(value, 16).ok()?,
                "exact_hits" => run.exact_hits = value.parse().ok()?,
                "lookups" => run.lookups = value.parse().ok()?,
                "mean_decision_ms" => run.mean_decision_ms = value.parse().ok()?,
                "wall_ms" => run.wall_ms = value.parse().ok()?,
                "cache_entries" => run.cache_entries = value.parse().ok()?,
                _ => return None,
            }
        }
        if run.label.is_empty() {
            return None;
        }
        Some(run)
    }
}

/// One Fig. 19 sweep against the snapshot at `cache_path`: build the
/// campaign with [`Campaign::try_new`] (warm-loading the snapshot if it
/// exists), run WaterWise once, persist the cache back, and report the
/// sweep's digest, cache traffic, and latency.
fn fig19_sweep(scenario: &Scenario, cache_path: &Path, label: &str) -> Fig19Run {
    use std::time::Instant;
    let config = scenario.config.clone().with_cache_path(cache_path);
    let campaign = Campaign::try_new(config).expect("fig19 campaign must build");
    let cache = campaign
        .solution_cache()
        .expect("a cache path implies a cache handle")
        .clone();
    let before = cache.stats();
    let started = Instant::now();
    let outcome = campaign
        .run(SchedulerKind::WaterWise)
        .expect("fig19 campaign must run");
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let after = cache.stats();
    campaign.save_cache().expect("fig19 snapshot must save");
    Fig19Run {
        label: label.to_string(),
        jobs: outcome.summary.total_jobs,
        digest: waterwise_cluster::schedule_digest(&outcome.report.outcomes),
        exact_hits: after.exact_hits - before.exact_hits,
        lookups: after.lookups() - before.lookups(),
        mean_decision_ms: outcome.summary.mean_decision_time.value() * 1000.0,
        wall_ms,
        cache_entries: cache.len(),
    }
}

/// The cold half of Fig. 19: sweep from an empty cache (the snapshot file
/// must not exist yet) and save the snapshot.
pub fn fig19_cold(scenario: &Scenario, cache_path: &Path) -> Fig19Run {
    assert!(
        !cache_path.exists(),
        "fig19 cold sweep requires a fresh snapshot path"
    );
    fig19_sweep(scenario, cache_path, "cold")
}

/// The resumed half of Fig. 19: warm-load the snapshot written by
/// [`fig19_cold`] and re-sweep. Panics if the snapshot did not actually
/// arrive warm.
pub fn fig19_resumed(scenario: &Scenario, cache_path: &Path) -> Fig19Run {
    assert!(
        cache_path.exists(),
        "fig19 resumed sweep requires the saved snapshot at {}",
        cache_path.display()
    );
    let run = fig19_sweep(scenario, cache_path, "resumed");
    assert!(
        run.cache_entries > 0,
        "the resumed sweep loaded an empty snapshot"
    );
    run
}

/// Render the Fig. 19 comparison and enforce its acceptance properties:
/// the resumed sweep's schedule is byte-identical to the cold sweep's
/// (same digest) and at least 90% of its lookups are exact hits.
pub fn fig19_tables(cold: &Fig19Run, resumed: &Fig19Run) -> Vec<Table> {
    assert_eq!(
        cold.digest, resumed.digest,
        "resumed-from-snapshot sweep diverged from the cold sweep"
    );
    assert_eq!(cold.jobs, resumed.jobs, "sweeps scheduled different jobs");
    assert!(
        resumed.exact_hit_rate() >= 0.9,
        "resumed sweep exact-hit rate {:.1}% is below the 90% floor ({} / {} lookups)",
        resumed.exact_hit_rate() * 100.0,
        resumed.exact_hits,
        resumed.lookups,
    );
    let mut table = Table::new(
        "Fig. 19 — durable warm state: cold sweep vs resumed-from-snapshot sweep",
        &[
            "mode",
            "jobs",
            "cache entries",
            "exact hits",
            "lookups",
            "exact-hit rate",
            "mean decision (ms)",
            "sweep wall (ms)",
            "digest",
        ],
    );
    for run in [cold, resumed] {
        table.row(&[
            run.label.clone(),
            run.jobs.to_string(),
            run.cache_entries.to_string(),
            run.exact_hits.to_string(),
            run.lookups.to_string(),
            format!("{:.0}%", run.exact_hit_rate() * 100.0),
            fmt2(run.mean_decision_ms),
            fmt2(run.wall_ms),
            format!("{:016x}", run.digest),
        ]);
    }
    vec![table]
}

/// Fig. 19 in one process: cold sweep, snapshot save, warm-load into a
/// brand-new campaign, re-sweep. The `fig19_persist` binary runs the
/// resumed half in a *spawned* process instead — same functions, with the
/// snapshot file as the only shared state.
pub fn fig19_persist(scenario: &Scenario) -> Vec<Table> {
    let dir = std::env::temp_dir().join(format!("ww-fig19-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fig19 scratch dir");
    let cache_path = dir.join("cache.snapshot");
    let _ = std::fs::remove_file(&cache_path);
    let cold = fig19_cold(scenario, &cache_path);
    let resumed = fig19_resumed(scenario, &cache_path);
    let tables = fig19_tables(&cold, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            days: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn fig01_lists_all_nine_sources() {
        let tables = fig01_energy_sources();
        assert_eq!(tables[0].len(), 9);
    }

    #[test]
    fn fig02_orders_regions_by_carbon() {
        let tables = fig02_regional_factors(tiny());
        assert_eq!(tables[0].len(), 5);
        assert_eq!(tables[1].len(), 2);
    }

    #[test]
    fn fig10_produces_three_rows() {
        let tables = fig10_loadbalancers(tiny());
        assert_eq!(tables[0].len(), 3);
    }

    #[test]
    fn table3_has_four_destinations() {
        let tables = table3_comm_overhead(tiny());
        assert_eq!(tables[0].len(), 4);
        // Overhead must be well under 5% of the execution footprint.
        let rendered = tables[0].render();
        assert!(!rendered.contains("inf"));
    }

    #[test]
    fn fig16_covers_every_shape_horizon_and_mode_and_overlaps_arrivals() {
        // The byte-identity contract is asserted *inside* the experiment;
        // this test checks the table shape and the occupancy reporting.
        let tables = fig16_pipeline(tiny());
        let table = &tables[0];
        // 2 shapes × 3 horizons × 4 engine modes.
        assert_eq!(table.len(), 24);
        for row in table.rows() {
            assert!(row[5].ends_with('x'), "speedup cell malformed: {row:?}");
        }
        // Sync rows stall the event path for every full solve...
        assert_eq!(table.cell(0, 2), "sync");
        assert_eq!(table.cell(0, 9), "0");
        // ...while pipelined rows keep ingesting arrivals during solves.
        assert_eq!(table.cell(1, 2), "pipelined(1)");
        let overlapped: usize = table.cell(1, 9).parse().unwrap();
        assert!(overlapped > 0, "pipelined row overlapped no arrivals");
    }

    #[test]
    fn fig18_splits_the_hot_path_and_exercises_dual_restarts() {
        // Byte-identity (sharded vs serial slots, dual vs cold nodes and
        // campaigns) is asserted *inside* the experiment; here we check the
        // table shapes and that the knapsack battery actually branched.
        let tables = fig18_hotpath(tiny());
        assert_eq!(tables.len(), 3);
        // Table A: one row per batch size, speedup cell well-formed.
        assert!(!tables[0].is_empty());
        for row in tables[0].rows() {
            assert!(row[5].ends_with('x'), "speedup cell malformed: {row:?}");
        }
        // Table B: cold/dual row pairs for three model sizes, and the dual
        // rows must record restarts (the battery's entire point).
        assert_eq!(tables[1].len(), 6);
        let mut restarts = 0usize;
        for pair in tables[1].rows().chunks(2) {
            assert_eq!(pair[0][2], "cold");
            assert_eq!(pair[1][2], "dual restart");
            assert_eq!(pair[0][6], "0", "cold rows must not attempt restarts");
            restarts += pair[1][6].parse::<usize>().unwrap();
        }
        assert!(restarts > 0, "dual rows recorded no restarts");
        // Table C: 2 engine modes × 3 levers.
        assert_eq!(tables[2].len(), 6);
        assert_eq!(tables[2].cell(0, 1), "serial+dual");
    }

    #[test]
    fn fig15_shared_cache_hits_at_least_30_percent() {
        let tables = fig15_solcache(tiny());
        let table = &tables[0];
        assert_eq!(table.len(), 5, "three cache modes plus two cold rows");
        assert_eq!(table.cell(0, 0), "off");
        assert_eq!(table.cell(0, 5), "0", "off mode must not touch a cache");
        // Shared mode: hit rate over the 3×3 matrix must reach the 30%
        // warm-hint target.
        assert_eq!(table.cell(2, 0), "shared");
        let hit_rate: f64 = table
            .cell(2, 8)
            .trim_end_matches('%')
            .parse()
            .expect("hit rate cell must be a percentage");
        assert!(
            hit_rate >= 30.0,
            "shared-matrix hit rate {hit_rate}% below the 30% target"
        );
        // The cold re-sweep replays bit-identical models against the warmed
        // shared cache: exact hits must skip solves outright.
        assert_eq!(table.cell(4, 0), "shared");
        let exact: usize = table.cell(4, 6).parse().unwrap();
        assert!(exact > 0, "pre-warmed cache produced no exact hits");
        let cold_solves: usize = table.cell(3, 3).parse().unwrap();
        let cached_solves: usize = table.cell(4, 3).parse().unwrap();
        assert!(
            cached_solves < cold_solves,
            "exact hits must reduce solve count ({cached_solves} vs {cold_solves})"
        );
    }

    #[test]
    fn scale_from_env_defaults() {
        let scale = ExperimentScale::default();
        assert!(scale.days > 0.0);
        assert!(scale.alibaba_days() > 0.0);
    }
}
