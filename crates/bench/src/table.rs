//! A minimal fixed-width table printer for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of display-able cells.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (used by the golden regression tests to read cells
    /// back without parsing the rendered output).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// One cell by (row, column), or `""` when out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Placeholder rendered for undefined values (for example the savings of a
/// zero-job campaign, which [`waterwise_cluster::saving_percent`] reports as
/// NaN).
pub const PLACEHOLDER: &str = "—";

/// Format a float with two decimals (most table cells). Non-finite values
/// render as [`PLACEHOLDER`] instead of leaking `NaN`/`inf` into tables.
pub fn fmt2(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        PLACEHOLDER.to_string()
    }
}

/// Format a percentage with one decimal; non-finite values render as
/// [`PLACEHOLDER`].
pub fn pct(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}%")
    } else {
        PLACEHOLDER.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_cells_and_aligns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["zurich".into(), "1.25".into()]);
        t.row(&["mumbai".into(), "700".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("zurich"));
        assert!(s.contains("700"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(pct(21.456), "21.5%");
    }

    #[test]
    fn undefined_values_render_as_placeholder() {
        // A zero-job campaign reports NaN savings; tables must show a
        // placeholder rather than "NaN%".
        assert_eq!(pct(f64::NAN), PLACEHOLDER);
        assert_eq!(pct(f64::INFINITY), PLACEHOLDER);
        assert_eq!(fmt2(f64::NAN), PLACEHOLDER);
        assert_eq!(fmt2(f64::NEG_INFINITY), PLACEHOLDER);
        assert!(
            waterwise_cluster::saving_percent(0.0, 5.0).is_nan(),
            "zero baselines feed the placeholder path"
        );
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("d", &["a", "b"]);
        t.row_display(&[1, 2]);
        assert!(t.render().contains('1'));
    }
}
