//! A minimal fixed-width table printer for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of display-able cells.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (used by the golden regression tests to read cells
    /// back without parsing the rendered output).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// One cell by (row, column), or `""` when out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialize the table as a self-contained JSON object:
    /// `{"title": ..., "header": [...], "rows": [[...], ...]}`.
    ///
    /// Cells are emitted as JSON strings exactly as they would print (the
    /// harness formats numbers — and placeholders for undefined values —
    /// before they reach the table), so the JSON view is lossless with
    /// respect to the rendered output. Hand-rolled because the workspace
    /// vendors a no-op `serde` shim; see the `BENCH_figNN.json` artifacts
    /// written by [`write_json_report`].
    ///
    /// ```
    /// use waterwise_bench::Table;
    ///
    /// let mut t = Table::new("demo", &["region", "carbon"]);
    /// t.row(&["zurich".into(), "1.25".into()]);
    /// assert_eq!(
    ///     t.to_json(),
    ///     r#"{"title":"demo","header":["region","carbon"],"rows":[["zurich","1.25"]]}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"header\":");
        push_string_array(&mut out, &self.header);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_string_array(&mut out, row);
        }
        out.push_str("]}");
        out
    }
}

/// `["a","b",...]` into `out`.
fn push_string_array(out: &mut String, cells: &[String]) {
    out.push('[');
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(cell));
    }
    out.push(']');
}

/// Escape a string for a JSON value position. Public because it is the
/// workspace's one JSON string writer (compat `serde` is a no-op):
/// `waterwise-lint` builds its machine-readable report from it too.
///
/// ```
/// assert_eq!(waterwise_bench::json_string("a\"b\n"), r#""a\"b\n""#);
/// ```
pub fn json_string(value: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a group of tables (one experiment's output) as
/// `{"tables":[...]}` with a trailing newline.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("{\"tables\":[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}\n");
    out
}

/// Write an experiment's tables to `path` as machine-readable JSON (the
/// `BENCH_figNN.json` artifacts archived by the CI smoke jobs).
pub fn write_json_report(tables: &[Table], path: &str) -> std::io::Result<()> {
    std::fs::write(path, tables_to_json(tables))
}

/// Placeholder rendered for undefined values (for example the savings of a
/// zero-job campaign, which [`waterwise_cluster::saving_percent`] reports as
/// NaN).
pub const PLACEHOLDER: &str = "—";

/// Format a float with two decimals (most table cells). Non-finite values
/// render as [`PLACEHOLDER`] instead of leaking `NaN`/`inf` into tables.
pub fn fmt2(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        PLACEHOLDER.to_string()
    }
}

/// Format a percentage with one decimal; non-finite values render as
/// [`PLACEHOLDER`].
pub fn pct(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}%")
    } else {
        PLACEHOLDER.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_cells_and_aligns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["zurich".into(), "1.25".into()]);
        t.row(&["mumbai".into(), "700".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("zurich"));
        assert!(s.contains("700"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(pct(21.456), "21.5%");
    }

    #[test]
    fn undefined_values_render_as_placeholder() {
        // A zero-job campaign reports NaN savings; tables must show a
        // placeholder rather than "NaN%".
        assert_eq!(pct(f64::NAN), PLACEHOLDER);
        assert_eq!(pct(f64::INFINITY), PLACEHOLDER);
        assert_eq!(fmt2(f64::NAN), PLACEHOLDER);
        assert_eq!(fmt2(f64::NEG_INFINITY), PLACEHOLDER);
        assert!(
            waterwise_cluster::saving_percent(0.0, 5.0).is_nan(),
            "zero baselines feed the placeholder path"
        );
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("d", &["a", "b"]);
        t.row_display(&[1, 2]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn json_escapes_special_characters_and_groups_tables() {
        let mut t = Table::new("quo\"te\n", &["a\\b"]);
        t.row(&["\tx".into()]);
        assert_eq!(
            t.to_json(),
            r#"{"title":"quo\"te\n","header":["a\\b"],"rows":[["\tx"]]}"#
        );
        // The placeholder (a non-ASCII char) passes through untouched.
        let mut p = Table::new("p", &["v"]);
        p.row(&[PLACEHOLDER.into()]);
        assert!(p.to_json().contains(PLACEHOLDER));
        let group = tables_to_json(&[t, p]);
        assert!(group.starts_with("{\"tables\":["));
        assert!(group.ends_with("]}\n"));
        assert_eq!(group.matches("\"title\"").count(), 2);
    }

    #[test]
    fn write_json_report_round_trips_through_the_filesystem() {
        let mut t = Table::new("disk", &["k"]);
        t.row(&["v".into()]);
        let path = std::env::temp_dir().join("waterwise_bench_table_json_test.json");
        let path = path.to_str().unwrap();
        write_json_report(std::slice::from_ref(&t), path).unwrap();
        let read = std::fs::read_to_string(path).unwrap();
        assert_eq!(read, tables_to_json(std::slice::from_ref(&t)));
        let _ = std::fs::remove_file(path);
    }
}
