//! Regenerates Fig. 7 of the WaterWise paper. See EXPERIMENTS.md.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig07_ecovisor(
        scale,
    ));
}
