//! Cold vs warm-started rolling-horizon solve comparison (Fig. 14 of this
//! reproduction; not a figure of the paper). Writes `BENCH_fig14.json`.
//! See the crate docs for scaling.

use waterwise_bench::experiments as ex;

fn main() {
    let scale = ex::ExperimentScale::from_env();
    let tables = ex::fig14_warmstart(scale);
    ex::print_tables(&tables);
    ex::save_json("fig14", &tables);
}
