//! Cold vs warm-started rolling-horizon solve comparison (Fig. 14 of this
//! reproduction; not a figure of the paper). See the crate docs for scaling.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig14_warmstart(
        scale,
    ));
}
