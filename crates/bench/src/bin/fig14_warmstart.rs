//! Cold vs warm-started rolling-horizon solve comparison (Fig. 14 of this
//! reproduction; not a figure of the paper). Writes `BENCH_fig14.json`.
//! See the crate docs for scaling.
//!
//! The workload is declarative: `scenarios/fig14.spec` by default, or any
//! spec file named via `--scenario <path>` / `WATERWISE_SCENARIO`.

use waterwise_bench::experiments as ex;

fn main() {
    let scenario = ex::scenario_or_exit("fig14");
    let tables = ex::fig14_warmstart(&scenario);
    ex::print_tables(&tables);
    ex::save_json("fig14", &tables);
}
