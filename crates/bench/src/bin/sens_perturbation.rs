//! Regenerates the Sec. 6 estimate-error sensitivity study of the WaterWise paper. See EXPERIMENTS.md.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::sens_perturbation(
        scale,
    ));
}
