//! Regenerates Fig. 5 of the WaterWise paper. See EXPERIMENTS.md.
//!
//! The workload is declarative: `scenarios/fig05.spec` by default, or any
//! spec file named via `--scenario <path>` / `WATERWISE_SCENARIO`.

fn main() {
    let scenario = waterwise_bench::experiments::scenario_or_exit("fig05");
    waterwise_bench::experiments::print_tables(
        &waterwise_bench::experiments::fig05_waterwise_google(&scenario),
    );
}
