//! Durable warm state across a real process boundary (Fig. 19 of this
//! reproduction; not a figure of the paper).
//!
//! The parent process runs the scenario sweep cold and persists the
//! solution-cache snapshot; it then re-executes *itself* as a child
//! process (`WATERWISE_FIG19_CHILD=<snapshot>`) whose only shared state
//! with the parent is that snapshot file. The child warm-loads the cache,
//! re-runs the identical sweep, and reports back over stdout as a single
//! `fig19-run` line. The parent asserts the two halves of the acceptance
//! contract — the resumed schedule digest is byte-identical to the cold
//! one, and ≥90% of the resumed sweep's cache lookups are exact hits —
//! then prints the comparison and writes `BENCH_fig19.json`.
//!
//! The workload is declarative: `scenarios/server_resume.spec` by
//! default, or any spec file named via `WATERWISE_SCENARIO`.

use std::path::PathBuf;
use waterwise_bench::experiments as ex;

fn load_scenario(spec_path: &std::path::Path) -> waterwise_core::Scenario {
    match waterwise_core::load_spec(spec_path) {
        Ok(scenario) => ex::apply_env_scale(scenario),
        Err(err) => {
            eprintln!(
                "invalid scenario spec: {}",
                err.located(spec_path.display())
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let spec_path = std::env::var_os("WATERWISE_SCENARIO")
        .map(PathBuf::from)
        .unwrap_or_else(|| ex::scenario_spec_path("server_resume"));
    let scenario = load_scenario(&spec_path);

    // Child mode: warm-load the snapshot, re-sweep, report one line.
    if let Some(cache_path) = std::env::var_os("WATERWISE_FIG19_CHILD").map(PathBuf::from) {
        let resumed = ex::fig19_resumed(&scenario, &cache_path);
        println!("{}", resumed.encode());
        return;
    }

    let dir = std::env::temp_dir().join(format!("ww-fig19-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fig19 scratch dir");
    let cache_path = dir.join("cache.snapshot");
    let _ = std::fs::remove_file(&cache_path);

    let cold = ex::fig19_cold(&scenario, &cache_path);
    eprintln!("{}", cold.encode());

    // The fresh-process resume: spawn ourselves in child mode. The child
    // inherits the environment (scale knobs included) plus the explicit
    // scenario path, so both sweeps run the byte-identical workload.
    let exe = std::env::current_exe().expect("current executable path");
    let output = std::process::Command::new(exe)
        .env("WATERWISE_FIG19_CHILD", &cache_path)
        .env("WATERWISE_SCENARIO", &spec_path)
        .output()
        .expect("spawn fig19 child process");
    if !output.status.success() {
        eprintln!(
            "fig19 child process failed ({}):\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
        std::process::exit(1);
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let resumed = stdout
        .lines()
        .find_map(ex::Fig19Run::parse)
        .unwrap_or_else(|| {
            eprintln!("fig19 child produced no fig19-run line:\n{stdout}");
            std::process::exit(1);
        });

    let tables = ex::fig19_tables(&cold, &resumed);
    ex::print_tables(&tables);
    ex::save_json("fig19", &tables);
    let _ = std::fs::remove_dir_all(&dir);
}
