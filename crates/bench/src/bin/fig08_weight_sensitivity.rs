//! Regenerates Fig. 8 of the WaterWise paper. See EXPERIMENTS.md.
//!
//! The workload is declarative: `scenarios/fig08.spec` by default, or any
//! spec file named via `--scenario <path>` / `WATERWISE_SCENARIO`.

fn main() {
    let scenario = waterwise_bench::experiments::scenario_or_exit("fig08");
    waterwise_bench::experiments::print_tables(
        &waterwise_bench::experiments::fig08_weight_sensitivity(&scenario),
    );
}
