//! Cross-campaign MILP solution-cache comparison (Fig. 15 of this
//! reproduction; not a figure of the paper). See the crate docs for scaling.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig15_solcache(
        scale,
    ));
}
