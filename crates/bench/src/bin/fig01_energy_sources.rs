//! Regenerates Fig. 1 of the WaterWise paper. See EXPERIMENTS.md.

fn main() {
    waterwise_bench::experiments::print_tables(
        &waterwise_bench::experiments::fig01_energy_sources(),
    );
}
