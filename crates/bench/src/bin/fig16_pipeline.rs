//! Pipelined vs synchronous simulation engine on the Fig. 5 workload
//! (Fig. 16 of this reproduction; not a figure of the paper). Asserts
//! byte-identical schedules across engine modes and reports wall-clock,
//! event-path stalls, and arrival overlap. Writes `BENCH_fig16.json`.
//! See the crate docs for scaling.

use waterwise_bench::experiments as ex;

fn main() {
    let scale = ex::ExperimentScale::from_env();
    let tables = ex::fig16_pipeline(scale);
    ex::print_tables(&tables);
    ex::save_json("fig16", &tables);
}
