//! Pipelined vs synchronous simulation engine on the Fig. 5 workload
//! (Fig. 16 of this reproduction; not a figure of the paper). Asserts
//! byte-identical schedules across engine modes and reports wall-clock,
//! event-path stalls, and arrival overlap. See the crate docs for scaling.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig16_pipeline(
        scale,
    ));
}
