//! Scheduler hot-path breakdown (Fig. 18 of this reproduction; not a figure
//! of the paper): per-slot numerics-preparation vs MILP-solve time under
//! serial and sharded preparation, dual-simplex restarts vs cold node solves
//! on a branch-heavy battery, and campaign byte-identity under every lever.
//! Writes `BENCH_fig18.json`. See the crate docs for scaling.

use waterwise_bench::experiments as ex;

fn main() {
    let scale = ex::ExperimentScale::from_env();
    let tables = ex::fig18_hotpath(scale);
    ex::print_tables(&tables);
    ex::save_json("fig18", &tables);
}
