//! Online placement service over TCP (Fig. 17 of this reproduction; not a
//! figure of the paper). Replays the scenario workload as a live
//! line-delimited-JSON request stream, asserts decision-identity with an
//! offline replay in every cell, and reports sustained request throughput
//! plus per-request placement latency percentiles.
//!
//! The workload is declarative: `scenarios/fig17.spec` by default, or any
//! spec file named via `--scenario <path>` / `WATERWISE_SCENARIO`.

fn main() {
    let scenario = waterwise_bench::experiments::scenario_or_exit("fig17");
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig17_service(
        &scenario,
    ));
}
