//! Online placement service over TCP on the Fig. 5 workload (Fig. 17 of
//! this reproduction; not a figure of the paper). Replays the workload as a
//! live line-delimited-JSON request stream, asserts decision-identity with
//! an offline replay in every cell, and reports sustained request
//! throughput plus per-request placement latency percentiles.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::fig17_service(scale));
}
