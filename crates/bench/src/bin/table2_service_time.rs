//! Regenerates Table 2 of the WaterWise paper. See EXPERIMENTS.md.

fn main() {
    let scale = waterwise_bench::ExperimentScale::from_env();
    waterwise_bench::experiments::print_tables(&waterwise_bench::experiments::table2_service_time(
        scale,
    ));
}
