//! Runs every experiment in sequence (the full paper reproduction) and
//! writes the machine-readable `BENCH_figNN.json` artifacts for the
//! experiments that have them (Figs. 14, 16, 18, 19).
//!
//! Before anything runs, every scenario spec the sweep will load is
//! re-validated; a malformed spec fails the whole suite immediately with
//! the offending `file:line` instead of dying mid-sweep after the earlier
//! figures have already burned their runtime.
//!
//! `WATERWISE_DAYS` / `WATERWISE_SEED` rescale the campaigns; see the crate
//! docs of `waterwise-bench`.

use waterwise_bench::experiments as ex;

fn main() {
    // Fail fast on the first bad spec, before any campaign starts.
    if let Err(located) = ex::validate_scenarios(&ex::SCENARIO_NAMES) {
        eprintln!("invalid scenario spec: {located}");
        std::process::exit(2);
    }
    let load = |name: &str| {
        ex::load_scenario(name).unwrap_or_else(|err| {
            eprintln!(
                "invalid scenario spec: {}",
                err.located(ex::scenario_spec_path(name).display())
            );
            std::process::exit(2);
        })
    };

    let scale = ex::ExperimentScale::from_env();
    eprintln!("running the full WaterWise experiment suite at scale {scale:?}");
    ex::print_tables(&ex::fig01_energy_sources());
    ex::print_tables(&ex::fig02_regional_factors(scale));
    ex::print_tables(&ex::fig03_greedy_opportunity(scale));
    ex::print_tables(&ex::fig05_waterwise_google(&load("fig05")));
    ex::print_tables(&ex::fig06_wri_dataset(scale));
    ex::print_tables(&ex::fig07_ecovisor(scale));
    ex::print_tables(&ex::fig08_weight_sensitivity(&load("fig08")));
    ex::print_tables(&ex::fig09_alibaba(scale));
    ex::print_tables(&ex::fig10_loadbalancers(scale));
    ex::print_tables(&ex::fig11_utilization(scale));
    ex::print_tables(&ex::fig12_region_availability(scale));
    ex::print_tables(&ex::fig13_overhead(scale));
    let fig14 = ex::fig14_warmstart(&load("fig14"));
    ex::print_tables(&fig14);
    ex::save_json("fig14", &fig14);
    ex::print_tables(&ex::fig15_solcache(scale));
    let fig16 = ex::fig16_pipeline(scale);
    ex::print_tables(&fig16);
    ex::save_json("fig16", &fig16);
    ex::print_tables(&ex::fig17_service(&load("fig17")));
    let fig18 = ex::fig18_hotpath(scale);
    ex::print_tables(&fig18);
    ex::save_json("fig18", &fig18);
    let fig19 = ex::fig19_persist(&load("server_resume"));
    ex::print_tables(&fig19);
    ex::save_json("fig19", &fig19);
    ex::print_tables(&ex::table2_service_time(scale));
    ex::print_tables(&ex::table3_comm_overhead(scale));
    ex::print_tables(&ex::sens_perturbation(scale));
    ex::print_tables(&ex::sens_request_rate(scale));
}
