//! # waterwise-sustain
//!
//! Carbon- and water-footprint models for data-center sustainability, as
//! formalized in Section 2 of the WaterWise paper.
//!
//! The crate provides:
//!
//! * [`energy`] — energy sources (nuclear, wind, hydro, …, coal), their carbon
//!   intensity and Energy Water Intensity Factor (EWIF), and energy mixes
//!   (Fig. 1 of the paper).
//! * [`water`] — onsite/offsite/embodied water footprint components, the
//!   Water Usage Effectiveness (WUE) cooling-tower model driven by wet-bulb
//!   temperature, and the Water Scarcity Factor (WSF).
//! * [`carbon`] — operational and embodied carbon footprint (Eq. 1).
//! * [`intensity`] — carbon intensity and the paper's *water intensity*
//!   metric (Eq. 6).
//! * [`footprint`] — the combined per-job footprint estimator (Eq. 1 and 5).
//! * [`params`] — data-center parameters (PUE, server lifetime, embodied
//!   footprints).
//! * [`units`] — thin numeric newtypes used across the workspace.
//!
//! All quantities are plain `f64`-backed newtypes; the models are pure
//! functions so they can be evaluated millions of times per simulated
//! campaign without allocation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod carbon;
pub mod energy;
pub mod footprint;
pub mod intensity;
pub mod params;
pub mod units;
pub mod water;

pub use carbon::{CarbonFootprint, EmbodiedCarbonModel, OperationalCarbonModel};
pub use energy::{EnergyMix, EnergySource, EwifDataset, ALL_SOURCES};
pub use footprint::{
    DecisionProjection, FootprintBreakdown, FootprintEstimator, JobResourceUsage, RegionConditions,
};
pub use intensity::{CarbonIntensity, WaterIntensity};
pub use params::{DataCenterParams, ServerParams};
pub use units::{Co2Grams, Hours, KilowattHours, Liters, LitersPerKwh, Seconds, Watts};
pub use water::{
    wue_from_wet_bulb, CoolingModel, WaterFootprint, WaterScarcityFactor, WaterUsageEffectiveness,
};
