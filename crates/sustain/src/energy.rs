//! Energy sources, their carbon intensity and Energy Water Intensity Factor
//! (EWIF), and energy mixes.
//!
//! This module encodes the characterization data of Fig. 1 of the paper:
//! carbon-friendly (renewable) sources tend to have *low carbon intensity but
//! potentially high EWIF* (e.g. hydropower), while fossil sources have high
//! carbon intensity but comparatively modest water needs — the central
//! tension WaterWise exploits.

use crate::intensity::CarbonIntensity;
use crate::units::LitersPerKwh;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An electricity generation technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnergySource {
    /// Nuclear fission plants.
    Nuclear,
    /// On-shore and off-shore wind turbines.
    Wind,
    /// Hydroelectric dams (high evaporation losses → very high EWIF).
    Hydro,
    /// Geothermal plants.
    Geothermal,
    /// Photovoltaic solar farms.
    Solar,
    /// Biomass combustion (irrigation of feedstock → high EWIF).
    Biomass,
    /// Natural-gas turbines.
    Gas,
    /// Oil-fired plants.
    Oil,
    /// Coal-fired plants.
    Coal,
}

/// All energy sources, in the order used by Fig. 1 of the paper
/// (renewables first, then fossil fuels).
pub const ALL_SOURCES: [EnergySource; 9] = [
    EnergySource::Nuclear,
    EnergySource::Wind,
    EnergySource::Hydro,
    EnergySource::Geothermal,
    EnergySource::Solar,
    EnergySource::Biomass,
    EnergySource::Gas,
    EnergySource::Oil,
    EnergySource::Coal,
];

impl EnergySource {
    /// Whether this source counts as renewable / carbon-friendly in the paper.
    pub fn is_renewable(self) -> bool {
        !matches!(
            self,
            EnergySource::Gas | EnergySource::Oil | EnergySource::Coal
        )
    }

    /// Life-cycle carbon intensity of electricity from this source
    /// (gCO2/kWh), following the IPCC-style values used in Fig. 1.
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let g_per_kwh = match self {
            EnergySource::Nuclear => 12.0,
            EnergySource::Wind => 11.0,
            EnergySource::Hydro => 17.0,
            EnergySource::Geothermal => 38.0,
            EnergySource::Solar => 45.0,
            EnergySource::Biomass => 230.0,
            EnergySource::Gas => 490.0,
            EnergySource::Oil => 740.0,
            EnergySource::Coal => 1050.0,
        };
        CarbonIntensity::new(g_per_kwh)
    }

    /// Energy Water Intensity Factor (L/kWh) under the primary
    /// (Macknick et al. / Electricity-Maps-style) dataset used in Fig. 1.
    pub fn ewif(self) -> LitersPerKwh {
        self.ewif_from(EwifDataset::Primary)
    }

    /// EWIF under a specific dataset (used by the Fig. 6 sensitivity study).
    pub fn ewif_from(self, dataset: EwifDataset) -> LitersPerKwh {
        let l_per_kwh = match dataset {
            EwifDataset::Primary => match self {
                EnergySource::Nuclear => 2.3,
                EnergySource::Wind => 0.01,
                EnergySource::Hydro => 17.0,
                EnergySource::Geothermal => 6.1,
                EnergySource::Solar => 0.9,
                EnergySource::Biomass => 5.5,
                EnergySource::Gas => 1.2,
                EnergySource::Oil => 1.7,
                EnergySource::Coal => 1.5,
            },
            // The World-Resources-Institute-style guidance reports somewhat
            // lower consumption factors for hydropower and higher ones for
            // thermal plants with recirculating cooling.
            EwifDataset::WorldResourcesInstitute => match self {
                EnergySource::Nuclear => 2.7,
                EnergySource::Wind => 0.02,
                EnergySource::Hydro => 9.0,
                EnergySource::Geothermal => 5.2,
                EnergySource::Solar => 1.1,
                EnergySource::Biomass => 4.8,
                EnergySource::Gas => 1.6,
                EnergySource::Oil => 2.0,
                EnergySource::Coal => 2.1,
            },
        };
        LitersPerKwh::new(l_per_kwh)
    }

    /// A short, stable identifier (useful for table headers and logs).
    pub fn label(self) -> &'static str {
        match self {
            EnergySource::Nuclear => "nuclear",
            EnergySource::Wind => "wind",
            EnergySource::Hydro => "hydro",
            EnergySource::Geothermal => "geothermal",
            EnergySource::Solar => "solar",
            EnergySource::Biomass => "biomass",
            EnergySource::Gas => "gas",
            EnergySource::Oil => "oil",
            EnergySource::Coal => "coal",
        }
    }
}

impl fmt::Display for EnergySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which per-source water-consumption dataset to use for EWIF.
///
/// The paper evaluates WaterWise both with Electricity-Maps/Macknick-style
/// factors (Fig. 5) and with World Resources Institute guidance (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EwifDataset {
    /// Macknick et al. / Electricity-Maps-style operational consumption factors.
    #[default]
    Primary,
    /// World Resources Institute purchased-electricity guidance.
    WorldResourcesInstitute,
}

/// A mix of energy sources powering a regional grid at some point in time.
///
/// Shares are kept normalized (they sum to 1 unless the mix is empty).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyMix {
    shares: Vec<(EnergySource, f64)>,
}

impl EnergyMix {
    /// Build a mix from `(source, share)` pairs. Shares are normalized to sum
    /// to one; non-positive shares are dropped.
    pub fn new(pairs: impl IntoIterator<Item = (EnergySource, f64)>) -> Self {
        let mut shares: Vec<(EnergySource, f64)> = pairs
            .into_iter()
            .filter(|(_, s)| s.is_finite() && *s > 0.0)
            .collect();
        let total: f64 = shares.iter().map(|(_, s)| *s).sum();
        if total > 0.0 {
            for (_, s) in &mut shares {
                *s /= total;
            }
        }
        shares.sort_by_key(|(src, _)| *src);
        Self { shares }
    }

    /// A mix consisting of a single source.
    pub fn single(source: EnergySource) -> Self {
        Self::new([(source, 1.0)])
    }

    /// Iterate over `(source, share)` pairs (shares sum to 1).
    pub fn shares(&self) -> impl Iterator<Item = (EnergySource, f64)> + '_ {
        self.shares.iter().copied()
    }

    /// The share of a particular source (0 if absent).
    pub fn share_of(&self, source: EnergySource) -> f64 {
        self.shares
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, share)| *share)
            .unwrap_or(0.0)
    }

    /// `true` if the mix has no sources.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Fraction of generation coming from renewable sources.
    pub fn renewable_fraction(&self) -> f64 {
        self.shares
            .iter()
            .filter(|(s, _)| s.is_renewable())
            .map(|(_, share)| share)
            .sum()
    }

    /// Share-weighted average carbon intensity of the mix (gCO2/kWh).
    pub fn carbon_intensity(&self) -> CarbonIntensity {
        CarbonIntensity::new(
            self.shares
                .iter()
                .map(|(s, share)| s.carbon_intensity().value() * share)
                .sum(),
        )
    }

    /// Share-weighted average EWIF of the mix (L/kWh) under `dataset`.
    pub fn ewif(&self, dataset: EwifDataset) -> LitersPerKwh {
        LitersPerKwh::new(
            self.shares
                .iter()
                .map(|(s, share)| s.ewif_from(dataset).value() * share)
                .sum(),
        )
    }

    /// Blend two mixes: `self * (1 - w) + other * w`.
    pub fn blend(&self, other: &EnergyMix, w: f64) -> EnergyMix {
        let w = w.clamp(0.0, 1.0);
        let mut pairs: Vec<(EnergySource, f64)> = Vec::new();
        for source in ALL_SOURCES {
            let share = self.share_of(source) * (1.0 - w) + other.share_of(source) * w;
            if share > 0.0 {
                pairs.push((source, share));
            }
        }
        EnergyMix::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coal_is_much_dirtier_than_hydro() {
        let coal = EnergySource::Coal.carbon_intensity().value();
        let hydro = EnergySource::Hydro.carbon_intensity().value();
        // The paper quotes roughly a 62x gap.
        assert!(coal / hydro > 50.0);
    }

    #[test]
    fn hydro_is_much_thirstier_than_coal() {
        let hydro = EnergySource::Hydro.ewif().value();
        let coal = EnergySource::Coal.ewif().value();
        // The paper quotes roughly an 11x gap.
        assert!(hydro / coal > 8.0);
    }

    #[test]
    fn renewable_classification() {
        assert!(EnergySource::Hydro.is_renewable());
        assert!(EnergySource::Solar.is_renewable());
        assert!(!EnergySource::Coal.is_renewable());
        assert!(!EnergySource::Gas.is_renewable());
    }

    #[test]
    fn mix_shares_normalize() {
        let mix = EnergyMix::new([(EnergySource::Coal, 2.0), (EnergySource::Wind, 2.0)]);
        assert!((mix.share_of(EnergySource::Coal) - 0.5).abs() < 1e-12);
        assert!((mix.share_of(EnergySource::Wind) - 0.5).abs() < 1e-12);
        let total: f64 = mix.shares().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mix_drops_invalid_shares() {
        let mix = EnergyMix::new([
            (EnergySource::Coal, -1.0),
            (EnergySource::Wind, f64::NAN),
            (EnergySource::Solar, 3.0),
        ]);
        assert_eq!(mix.share_of(EnergySource::Solar), 1.0);
        assert_eq!(mix.share_of(EnergySource::Coal), 0.0);
    }

    #[test]
    fn mix_carbon_intensity_is_weighted_average() {
        let mix = EnergyMix::new([(EnergySource::Coal, 0.5), (EnergySource::Wind, 0.5)]);
        let expected = (1050.0 + 11.0) / 2.0;
        assert!((mix.carbon_intensity().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn single_source_mix() {
        let mix = EnergyMix::single(EnergySource::Solar);
        assert_eq!(mix.renewable_fraction(), 1.0);
        assert_eq!(
            mix.carbon_intensity().value(),
            EnergySource::Solar.carbon_intensity().value()
        );
    }

    #[test]
    fn wri_dataset_differs_from_primary() {
        let p = EnergySource::Hydro.ewif_from(EwifDataset::Primary).value();
        let w = EnergySource::Hydro
            .ewif_from(EwifDataset::WorldResourcesInstitute)
            .value();
        assert_ne!(p, w);
    }

    #[test]
    fn blend_interpolates() {
        let a = EnergyMix::single(EnergySource::Coal);
        let b = EnergyMix::single(EnergySource::Wind);
        let half = a.blend(&b, 0.5);
        assert!((half.share_of(EnergySource::Coal) - 0.5).abs() < 1e-12);
        let all_b = a.blend(&b, 1.0);
        assert!((all_b.share_of(EnergySource::Wind) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_is_empty() {
        let mix = EnergyMix::new([]);
        assert!(mix.is_empty());
        assert_eq!(mix.carbon_intensity().value(), 0.0);
    }

    #[test]
    fn renewable_fraction_mixed() {
        let mix = EnergyMix::new([
            (EnergySource::Coal, 0.25),
            (EnergySource::Gas, 0.25),
            (EnergySource::Hydro, 0.5),
        ]);
        assert!((mix.renewable_fraction() - 0.5).abs() < 1e-12);
    }
}
