//! Carbon intensity and the paper's *water intensity* metric.
//!
//! Carbon intensity (gCO2/kWh) is standard. Water intensity (Eq. 6) is the
//! paper's analogous scalar for water stress caused per unit of IT energy:
//!
//! ```text
//! H2O_intensity = (WUE + PUE * EWIF) * (1 + WSF_dc)
//! ```
//!
//! Lower is better for both. These are the two signals the WaterWise
//! scheduler trades off against each other across regions and over time.

use crate::units::LitersPerKwh;
use crate::water::{WaterScarcityFactor, WaterUsageEffectiveness};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Grid carbon intensity in gCO2/kWh.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CarbonIntensity(f64);

impl CarbonIntensity {
    /// Construct from gCO2/kWh.
    pub const fn new(grams_per_kwh: f64) -> Self {
        Self(grams_per_kwh)
    }

    /// Value in gCO2/kWh.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Scale by a factor (used for perturbation / sensitivity studies).
    pub fn scaled(self, factor: f64) -> Self {
        Self(self.0 * factor)
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} gCO2/kWh", self.0)
    }
}

/// The paper's water-intensity metric in L/kWh of IT energy (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct WaterIntensity(f64);

impl WaterIntensity {
    /// Construct directly from L/kWh.
    pub const fn new(liters_per_kwh: f64) -> Self {
        Self(liters_per_kwh)
    }

    /// Evaluate Eq. 6: `(WUE + PUE * EWIF) * (1 + WSF)`.
    pub fn from_components(
        wue: WaterUsageEffectiveness,
        pue: f64,
        ewif: LitersPerKwh,
        wsf: WaterScarcityFactor,
    ) -> Self {
        Self((wue.value() + pue * ewif.value()) * (1.0 + wsf.value()))
    }

    /// Value in L/kWh.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Scale by a factor (used for perturbation / sensitivity studies).
    pub fn scaled(self, factor: f64) -> Self {
        Self(self.0 * factor)
    }
}

impl fmt::Display for WaterIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} L/kWh", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_intensity_formula_matches_eq6() {
        let wue = WaterUsageEffectiveness::new(3.0);
        let ewif = LitersPerKwh::new(2.0);
        let wsf = WaterScarcityFactor::new(0.5);
        let wi = WaterIntensity::from_components(wue, 1.2, ewif, wsf);
        let expected = (3.0 + 1.2 * 2.0) * 1.5;
        assert!((wi.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn water_intensity_increases_with_scarcity() {
        let wue = WaterUsageEffectiveness::new(3.0);
        let ewif = LitersPerKwh::new(2.0);
        let low = WaterIntensity::from_components(wue, 1.2, ewif, WaterScarcityFactor::new(0.1));
        let high = WaterIntensity::from_components(wue, 1.2, ewif, WaterScarcityFactor::new(0.9));
        assert!(high.value() > low.value());
    }

    #[test]
    fn scaling_for_sensitivity() {
        let ci = CarbonIntensity::new(100.0);
        assert!((ci.scaled(1.1).value() - 110.0).abs() < 1e-12);
        let wi = WaterIntensity::new(5.0);
        assert!((wi.scaled(0.9).value() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_units() {
        assert!(format!("{}", CarbonIntensity::new(42.0)).contains("gCO2/kWh"));
        assert!(format!("{}", WaterIntensity::new(4.2)).contains("L/kWh"));
    }
}
