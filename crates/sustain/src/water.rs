//! Water footprint components: onsite (cooling), offsite (electricity
//! generation), and embodied (manufacturing); the Water Usage Effectiveness
//! model driven by wet-bulb temperature; and the Water Scarcity Factor.

use crate::units::{KilowattHours, Liters, LitersPerKwh};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Water Usage Effectiveness (L/kWh of IT energy) — how much water the data
/// center evaporates onsite per unit of IT energy, driven by the wet-bulb
/// temperature of the region (lower is better).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct WaterUsageEffectiveness(f64);

impl WaterUsageEffectiveness {
    /// Construct from L/kWh. Negative inputs are clamped to zero.
    pub fn new(liters_per_kwh: f64) -> Self {
        Self(liters_per_kwh.max(0.0))
    }

    /// Value in L/kWh.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for WaterUsageEffectiveness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} L/kWh (WUE)", self.0)
    }
}

/// Water Scarcity Factor of a region: 0 (abundant) to ~1 (extremely
/// stressed). The paper scales every liter of water consumed in a region by
/// `(1 + WSF)` so that consumption in stressed regions counts for more.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct WaterScarcityFactor(f64);

impl WaterScarcityFactor {
    /// Construct, clamping into `[0, 1]`.
    pub fn new(factor: f64) -> Self {
        Self(factor.clamp(0.0, 1.0))
    }

    /// The raw factor in `[0, 1]`.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The multiplier `(1 + WSF)` applied to physical liters.
    pub fn multiplier(self) -> f64 {
        1.0 + self.0
    }
}

impl fmt::Display for WaterScarcityFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WSF {:.2}", self.0)
    }
}

/// Cooling-tower model mapping wet-bulb temperature (°C) to WUE (L/kWh).
///
/// Data centers with evaporative (cooling-tower) cooling evaporate more water
/// as the wet-bulb temperature rises, because the approach temperature
/// shrinks and more cycles of evaporation are needed per unit of rejected
/// heat. We use a smooth piecewise model:
///
/// * below `free_cooling_cutoff` the facility runs on free air cooling and
///   evaporates essentially no water;
/// * above it, WUE grows superlinearly with wet-bulb temperature and
///   saturates around `max_wue` (blow-down limits).
///
/// With the default parameters the model produces the 0–8 L/kWh range of
/// Fig. 2(c): cool European sites land around 1–3 L/kWh while hot and humid
/// Mumbai reaches 6–8 L/kWh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingModel {
    /// Wet-bulb temperature (°C) below which free cooling is used.
    pub free_cooling_cutoff: f64,
    /// Liters evaporated per kWh per °C of wet-bulb above the cutoff (linear term).
    pub slope: f64,
    /// Quadratic growth term capturing degraded cooling-tower efficiency.
    pub quadratic: f64,
    /// Upper bound on achievable WUE (L/kWh).
    pub max_wue: f64,
    /// Baseline evaporation (L/kWh) present whenever the towers run at all.
    pub base_wue: f64,
}

impl Default for CoolingModel {
    fn default() -> Self {
        Self {
            free_cooling_cutoff: 4.0,
            slope: 0.22,
            quadratic: 0.006,
            max_wue: 9.0,
            base_wue: 0.35,
        }
    }
}

impl CoolingModel {
    /// Evaluate the model at a wet-bulb temperature in °C.
    pub fn wue(&self, wet_bulb_celsius: f64) -> WaterUsageEffectiveness {
        if !wet_bulb_celsius.is_finite() {
            return WaterUsageEffectiveness::new(self.base_wue);
        }
        let delta = wet_bulb_celsius - self.free_cooling_cutoff;
        if delta <= 0.0 {
            // Free cooling: negligible evaporative losses.
            return WaterUsageEffectiveness::new(0.05);
        }
        let raw = self.base_wue + self.slope * delta + self.quadratic * delta * delta;
        WaterUsageEffectiveness::new(raw.min(self.max_wue))
    }
}

/// Convenience wrapper around [`CoolingModel::wue`] with default parameters.
pub fn wue_from_wet_bulb(wet_bulb_celsius: f64) -> WaterUsageEffectiveness {
    CoolingModel::default().wue(wet_bulb_celsius)
}

/// The three water-footprint components of a job (Eq. 2–5), already scaled by
/// the relevant water scarcity factors, i.e. in "effective liters".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WaterFootprint {
    /// Offsite water: electricity-generation water use (Eq. 2).
    pub offsite: Liters,
    /// Onsite water: cooling evaporation and blow-down (Eq. 3).
    pub onsite: Liters,
    /// Embodied water: amortized manufacturing water use (Eq. 4).
    pub embodied: Liters,
}

impl WaterFootprint {
    /// Offsite water footprint (Eq. 2): `PUE * E * EWIF * (1 + WSF)`.
    pub fn offsite(
        pue: f64,
        energy: KilowattHours,
        ewif: LitersPerKwh,
        wsf: WaterScarcityFactor,
    ) -> Liters {
        Liters::new(pue * energy.value() * ewif.value() * wsf.multiplier())
    }

    /// Onsite water footprint (Eq. 3): `E * WUE * (1 + WSF)`.
    pub fn onsite(
        energy: KilowattHours,
        wue: WaterUsageEffectiveness,
        wsf: WaterScarcityFactor,
    ) -> Liters {
        Liters::new(energy.value() * wue.value() * wsf.multiplier())
    }

    /// Embodied water footprint of a whole server (Eq. 4):
    /// `E_manufacturing * EWIF_mfg * (1 + WSF_mfg)`.
    pub fn embodied_server(
        manufacturing_energy: KilowattHours,
        ewif: LitersPerKwh,
        wsf: WaterScarcityFactor,
    ) -> Liters {
        Liters::new(manufacturing_energy.value() * ewif.value() * wsf.multiplier())
    }

    /// Total of all components.
    pub fn total(&self) -> Liters {
        self.offsite + self.onsite + self.embodied
    }

    /// Operational (offsite + onsite) water footprint.
    pub fn operational(&self) -> Liters {
        self.offsite + self.onsite
    }

    /// Sum two footprints component-wise.
    pub fn accumulate(&mut self, other: &WaterFootprint) {
        self.offsite += other.offsite;
        self.onsite += other.onsite;
        self.embodied += other.embodied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wsf_clamps_to_unit_interval() {
        assert_eq!(WaterScarcityFactor::new(-0.5).value(), 0.0);
        assert_eq!(WaterScarcityFactor::new(1.5).value(), 1.0);
        assert_eq!(WaterScarcityFactor::new(0.4).multiplier(), 1.4);
    }

    #[test]
    fn wue_is_monotone_in_wet_bulb() {
        let model = CoolingModel::default();
        let mut prev = model.wue(-5.0).value();
        for t in -4..35 {
            let cur = model.wue(t as f64).value();
            assert!(cur >= prev, "WUE must not decrease with wet-bulb temp");
            prev = cur;
        }
    }

    #[test]
    fn wue_free_cooling_is_tiny() {
        assert!(wue_from_wet_bulb(0.0).value() < 0.1);
    }

    #[test]
    fn wue_hot_humid_is_large_but_bounded() {
        let hot = wue_from_wet_bulb(28.0).value();
        assert!(
            hot > 4.0,
            "hot humid climate should need lots of water: {hot}"
        );
        assert!(hot <= CoolingModel::default().max_wue);
        assert!(wue_from_wet_bulb(60.0).value() <= CoolingModel::default().max_wue);
    }

    #[test]
    fn wue_handles_non_finite_input() {
        assert!(wue_from_wet_bulb(f64::NAN).value() >= 0.0);
    }

    #[test]
    fn offsite_matches_eq2() {
        let v = WaterFootprint::offsite(
            1.2,
            KilowattHours::new(10.0),
            LitersPerKwh::new(2.0),
            WaterScarcityFactor::new(0.5),
        );
        assert!((v.value() - 1.2 * 10.0 * 2.0 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn onsite_matches_eq3() {
        let v = WaterFootprint::onsite(
            KilowattHours::new(10.0),
            WaterUsageEffectiveness::new(3.0),
            WaterScarcityFactor::new(0.2),
        );
        assert!((v.value() - 10.0 * 3.0 * 1.2).abs() < 1e-12);
    }

    #[test]
    fn embodied_matches_eq4() {
        let v = WaterFootprint::embodied_server(
            KilowattHours::new(1000.0),
            LitersPerKwh::new(1.8),
            WaterScarcityFactor::new(0.3),
        );
        assert!((v.value() - 1000.0 * 1.8 * 1.3).abs() < 1e-12);
    }

    #[test]
    fn totals_and_accumulate() {
        let mut a = WaterFootprint {
            offsite: Liters::new(1.0),
            onsite: Liters::new(2.0),
            embodied: Liters::new(3.0),
        };
        assert!((a.total().value() - 6.0).abs() < 1e-12);
        assert!((a.operational().value() - 3.0).abs() < 1e-12);
        let b = a;
        a.accumulate(&b);
        assert!((a.total().value() - 12.0).abs() < 1e-12);
    }
}
