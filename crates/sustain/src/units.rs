//! Numeric newtypes for the physical quantities used throughout WaterWise.
//!
//! These are deliberately thin: each wraps an `f64`, supports the arithmetic
//! the models need, and exposes `value()` for interop. They exist to keep
//! call sites honest about units (the paper mixes kWh, L/kWh, gCO2/kWh, and
//! seconds freely).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Construct from a raw `f64`.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Zero value.
            #[inline]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// The underlying numeric value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite and non-negative.
            #[inline]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Clamp to the non-negative range.
            #[inline]
            pub fn clamp_non_negative(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

unit!(
    /// Energy in kilowatt-hours (kWh).
    KilowattHours,
    "kWh"
);
unit!(
    /// Carbon mass in grams of CO2-equivalent (gCO2e).
    Co2Grams,
    "gCO2"
);
unit!(
    /// Water volume in liters (L).
    Liters,
    "L"
);
unit!(
    /// Water intensity in liters per kilowatt-hour (L/kWh).
    LitersPerKwh,
    "L/kWh"
);
unit!(
    /// Duration in seconds.
    Seconds,
    "s"
);
unit!(
    /// Duration in hours.
    Hours,
    "h"
);
unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);

impl Seconds {
    /// Convert to hours.
    #[inline]
    pub fn to_hours(self) -> Hours {
        Hours(self.0 / 3600.0)
    }

    /// Construct from a number of hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self(hours * 3600.0)
    }

    /// Construct from a number of minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self(minutes * 60.0)
    }
}

impl Hours {
    /// Convert to seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 * 3600.0)
    }
}

impl Watts {
    /// Energy consumed when drawing this power for the given duration.
    #[inline]
    pub fn energy_over(self, duration: Seconds) -> KilowattHours {
        KilowattHours(self.0 * duration.to_hours().value() / 1000.0)
    }
}

impl KilowattHours {
    /// The average power implied by this much energy over the given duration.
    #[inline]
    pub fn average_power(self, duration: Seconds) -> Watts {
        let hours = duration.to_hours().value();
        if hours <= 0.0 {
            Watts::zero()
        } else {
            Watts(self.0 * 1000.0 / hours)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = KilowattHours::new(2.0);
        let b = KilowattHours::new(3.0);
        assert_eq!((a + b).value(), 5.0);
        assert_eq!((b - a).value(), 1.0);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((b / 2.0).value(), 1.5);
        assert!((b / a - 1.5).abs() < 1e-12);
    }

    #[test]
    fn seconds_hours_conversion() {
        let s = Seconds::from_hours(2.0);
        assert_eq!(s.value(), 7200.0);
        assert!((s.to_hours().value() - 2.0).abs() < 1e-12);
        let m = Seconds::from_minutes(90.0);
        assert!((m.to_hours().value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn power_energy_relation() {
        let p = Watts::new(500.0);
        let e = p.energy_over(Seconds::from_hours(2.0));
        assert!((e.value() - 1.0).abs() < 1e-12);
        let back = e.average_power(Seconds::from_hours(2.0));
        assert!((back.value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_power_is_zero() {
        let e = KilowattHours::new(1.0);
        assert_eq!(e.average_power(Seconds::zero()).value(), 0.0);
    }

    #[test]
    fn validity_and_clamping() {
        assert!(Liters::new(1.0).is_valid());
        assert!(!Liters::new(-1.0).is_valid());
        assert!(!Liters::new(f64::NAN).is_valid());
        assert_eq!(Liters::new(-3.0).clamp_non_negative().value(), 0.0);
    }

    #[test]
    fn sum_and_display() {
        let total: Liters = vec![Liters::new(1.0), Liters::new(2.5)].into_iter().sum();
        assert!((total.value() - 3.5).abs() < 1e-12);
        assert!(format!("{total}").contains('L'));
    }
}
