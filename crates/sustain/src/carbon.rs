//! Carbon footprint models: operational (energy × carbon intensity) and
//! embodied (amortized manufacturing emissions), following Eq. 1 of the paper.

use crate::intensity::CarbonIntensity;
use crate::units::{Co2Grams, KilowattHours, Seconds};
use serde::{Deserialize, Serialize};

/// Operational carbon model: emissions from the electricity consumed while a
/// job executes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OperationalCarbonModel;

impl OperationalCarbonModel {
    /// `CO2_operational = E_j * CI` (Eq. 1, first term).
    pub fn emissions(energy: KilowattHours, intensity: CarbonIntensity) -> Co2Grams {
        Co2Grams::new(energy.value() * intensity.value())
    }
}

/// Embodied carbon model: one-time manufacturing emissions amortized over the
/// server's useful lifetime and attributed to jobs proportionally to their
/// execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedCarbonModel {
    /// Total embodied carbon of one server (gCO2).
    pub server_embodied: Co2Grams,
    /// Useful lifetime of the server.
    pub server_lifetime: Seconds,
}

impl EmbodiedCarbonModel {
    /// Build a model from the per-server embodied carbon and lifetime.
    pub fn new(server_embodied: Co2Grams, server_lifetime: Seconds) -> Self {
        Self {
            server_embodied,
            server_lifetime,
        }
    }

    /// `CO2_embodied(job) = t_j / T_lifetime * CO2_embodied(server)`
    /// (Eq. 1, second term).
    pub fn attributed(&self, execution_time: Seconds) -> Co2Grams {
        if self.server_lifetime.value() <= 0.0 {
            return Co2Grams::zero();
        }
        let fraction = (execution_time.value() / self.server_lifetime.value()).max(0.0);
        Co2Grams::new(self.server_embodied.value() * fraction)
    }

    /// Scale the embodied estimate by a factor, e.g. ±10% for the paper's
    /// embodied-carbon sensitivity analysis.
    pub fn perturbed(&self, factor: f64) -> Self {
        Self {
            server_embodied: Co2Grams::new(self.server_embodied.value() * factor),
            server_lifetime: self.server_lifetime,
        }
    }
}

impl Default for EmbodiedCarbonModel {
    fn default() -> Self {
        // ~1.5 tCO2e embodied for a dual-socket server (Teads/Davy-style
        // estimate for m5.metal class hardware), 4-year lifetime.
        Self {
            server_embodied: Co2Grams::new(1_500_000.0),
            server_lifetime: Seconds::from_hours(4.0 * 365.0 * 24.0),
        }
    }
}

/// Per-job carbon footprint split into operational and embodied parts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CarbonFootprint {
    /// Emissions from the electricity consumed during execution.
    pub operational: Co2Grams,
    /// Amortized manufacturing emissions attributed to the job.
    pub embodied: Co2Grams,
}

impl CarbonFootprint {
    /// Evaluate Eq. 1 for a job.
    pub fn of_job(
        energy: KilowattHours,
        intensity: CarbonIntensity,
        execution_time: Seconds,
        embodied_model: &EmbodiedCarbonModel,
    ) -> Self {
        Self {
            operational: OperationalCarbonModel::emissions(energy, intensity),
            embodied: embodied_model.attributed(execution_time),
        }
    }

    /// Total footprint.
    pub fn total(&self) -> Co2Grams {
        self.operational + self.embodied
    }

    /// Sum another footprint into this one.
    pub fn accumulate(&mut self, other: &CarbonFootprint) {
        self.operational += other.operational;
        self.embodied += other.embodied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_is_energy_times_intensity() {
        let e =
            OperationalCarbonModel::emissions(KilowattHours::new(2.0), CarbonIntensity::new(300.0));
        assert!((e.value() - 600.0).abs() < 1e-12);
    }

    #[test]
    fn embodied_is_proportional_to_time() {
        let model = EmbodiedCarbonModel::new(Co2Grams::new(1000.0), Seconds::from_hours(100.0));
        let half = model.attributed(Seconds::from_hours(50.0));
        assert!((half.value() - 500.0).abs() < 1e-9);
        let tiny = model.attributed(Seconds::from_hours(1.0));
        assert!((tiny.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn embodied_zero_lifetime_is_safe() {
        let model = EmbodiedCarbonModel::new(Co2Grams::new(1000.0), Seconds::zero());
        assert_eq!(model.attributed(Seconds::from_hours(1.0)).value(), 0.0);
    }

    #[test]
    fn perturbation_scales_embodied_only() {
        let model = EmbodiedCarbonModel::new(Co2Grams::new(1000.0), Seconds::from_hours(100.0));
        let up = model.perturbed(1.1);
        assert!((up.server_embodied.value() - 1100.0).abs() < 1e-9);
        assert_eq!(up.server_lifetime, model.server_lifetime);
    }

    #[test]
    fn job_footprint_combines_both_terms() {
        let embodied = EmbodiedCarbonModel::new(Co2Grams::new(1000.0), Seconds::from_hours(100.0));
        let fp = CarbonFootprint::of_job(
            KilowattHours::new(1.0),
            CarbonIntensity::new(100.0),
            Seconds::from_hours(10.0),
            &embodied,
        );
        assert!((fp.operational.value() - 100.0).abs() < 1e-9);
        assert!((fp.embodied.value() - 100.0).abs() < 1e-9);
        assert!((fp.total().value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums_components() {
        let mut a = CarbonFootprint {
            operational: Co2Grams::new(10.0),
            embodied: Co2Grams::new(5.0),
        };
        let b = a;
        a.accumulate(&b);
        assert!((a.total().value() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn default_embodied_model_is_reasonable() {
        let model = EmbodiedCarbonModel::default();
        // A one-hour job on a 4-year-lifetime server should be attributed a
        // tiny fraction of the total embodied carbon.
        let one_hour = model.attributed(Seconds::from_hours(1.0));
        assert!(one_hour.value() > 0.0);
        assert!(one_hour.value() < model.server_embodied.value() / 1000.0);
    }
}
