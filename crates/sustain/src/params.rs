//! Data-center and server parameters used by the footprint estimator.

use crate::carbon::EmbodiedCarbonModel;
use crate::units::{Co2Grams, KilowattHours, Liters, LitersPerKwh, Seconds};
use crate::water::{WaterFootprint, WaterScarcityFactor};
use serde::{Deserialize, Serialize};

/// Per-server parameters: embodied footprints and lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerParams {
    /// Total embodied carbon of one server (gCO2).
    pub embodied_carbon: Co2Grams,
    /// Total embodied water of one server (effective liters, already scaled
    /// by the manufacturing region's WSF per Eq. 4).
    pub embodied_water: Liters,
    /// Useful lifetime over which the embodied footprints are amortized.
    pub lifetime: Seconds,
    /// Idle power draw in watts.
    pub idle_power_watts: f64,
    /// Peak power draw in watts.
    pub peak_power_watts: f64,
}

impl ServerParams {
    /// Parameters approximating an AWS `m5.metal` bare-metal node (4 × 24-core
    /// Xeon 8175, 384 GiB), the hardware used by the paper's testbed.
    pub fn m5_metal() -> Self {
        let embodied_carbon = Co2Grams::new(1_500_000.0); // ~1.5 tCO2e
        let lifetime = Seconds::from_hours(4.0 * 365.0 * 24.0); // 4 years

        // Embodied water derived per Eq. 4 from the manufacturing energy
        // implied by the embodied carbon at a typical fab-region carbon
        // intensity (~500 gCO2/kWh) and EWIF (~1.8 L/kWh), with WSF 0.4.
        let manufacturing_energy = KilowattHours::new(embodied_carbon.value() / 500.0);
        let embodied_water = WaterFootprint::embodied_server(
            manufacturing_energy,
            LitersPerKwh::new(1.8),
            WaterScarcityFactor::new(0.4),
        );
        Self {
            embodied_carbon,
            embodied_water,
            lifetime,
            idle_power_watts: 150.0,
            peak_power_watts: 720.0,
        }
    }

    /// The embodied-carbon model induced by these parameters.
    pub fn embodied_carbon_model(&self) -> EmbodiedCarbonModel {
        EmbodiedCarbonModel::new(self.embodied_carbon, self.lifetime)
    }

    /// Embodied water attributed to a job of the given execution time.
    pub fn embodied_water_attributed(&self, execution_time: Seconds) -> Liters {
        if self.lifetime.value() <= 0.0 {
            return Liters::zero();
        }
        let fraction = (execution_time.value() / self.lifetime.value()).max(0.0);
        Liters::new(self.embodied_water.value() * fraction)
    }

    /// Scale both embodied footprints by a factor (sensitivity analysis).
    pub fn perturbed_embodied(&self, factor: f64) -> Self {
        Self {
            embodied_carbon: Co2Grams::new(self.embodied_carbon.value() * factor),
            embodied_water: Liters::new(self.embodied_water.value() * factor),
            ..*self
        }
    }
}

impl Default for ServerParams {
    fn default() -> Self {
        Self::m5_metal()
    }
}

/// Per-data-center parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataCenterParams {
    /// Power Usage Effectiveness (total facility energy / IT energy), ≥ 1.
    pub pue: f64,
    /// Server parameters for this facility.
    pub server: ServerParams,
}

impl DataCenterParams {
    /// The paper's default setting: PUE = 1.2 with m5.metal-class servers.
    pub fn paper_default() -> Self {
        Self {
            pue: 1.2,
            server: ServerParams::m5_metal(),
        }
    }

    /// Replace the PUE (clamped to ≥ 1.0).
    pub fn with_pue(mut self, pue: f64) -> Self {
        self.pue = pue.max(1.0);
        self
    }
}

impl Default for DataCenterParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m5_metal_has_sensible_magnitudes() {
        let p = ServerParams::m5_metal();
        assert!(p.embodied_carbon.value() > 1.0e5);
        assert!(p.embodied_water.value() > 1.0e3);
        assert!(p.lifetime.value() > 1.0e7);
        assert!(p.peak_power_watts > p.idle_power_watts);
    }

    #[test]
    fn embodied_water_attribution_is_proportional() {
        let p = ServerParams::m5_metal();
        let one = p.embodied_water_attributed(Seconds::from_hours(1.0));
        let two = p.embodied_water_attributed(Seconds::from_hours(2.0));
        assert!((two.value() - 2.0 * one.value()).abs() < 1e-9);
    }

    #[test]
    fn pue_is_clamped() {
        let dc = DataCenterParams::paper_default().with_pue(0.5);
        assert_eq!(dc.pue, 1.0);
    }

    #[test]
    fn paper_default_pue_is_1_2() {
        assert!((DataCenterParams::paper_default().pue - 1.2).abs() < 1e-12);
    }

    #[test]
    fn perturbation_scales_embodied_footprints() {
        let p = ServerParams::m5_metal();
        let up = p.perturbed_embodied(1.1);
        assert!((up.embodied_carbon.value() / p.embodied_carbon.value() - 1.1).abs() < 1e-9);
        assert!((up.embodied_water.value() / p.embodied_water.value() - 1.1).abs() < 1e-9);
    }
}
