//! The combined per-job footprint estimator (Eq. 1 and Eq. 5 of the paper).
//!
//! Given a job's resource usage (energy, execution time) and the
//! environmental conditions of the region executing it (carbon intensity,
//! EWIF, WUE, WSF, PUE), this module computes the full carbon and water
//! footprint breakdown that both the scheduler's objective function and the
//! evaluation metrics are built on.

use crate::carbon::CarbonFootprint;
use crate::intensity::{CarbonIntensity, WaterIntensity};
use crate::params::DataCenterParams;
use crate::units::{Co2Grams, KilowattHours, Liters, LitersPerKwh, Seconds};
use crate::water::{WaterFootprint, WaterScarcityFactor, WaterUsageEffectiveness};
use serde::{Deserialize, Serialize};

/// The resources a job consumes, as known (or estimated) by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobResourceUsage {
    /// IT energy consumed by the job (kWh).
    pub energy: KilowattHours,
    /// Wall-clock execution time of the job.
    pub execution_time: Seconds,
}

impl JobResourceUsage {
    /// Construct a usage record.
    pub fn new(energy: KilowattHours, execution_time: Seconds) -> Self {
        Self {
            energy,
            execution_time,
        }
    }
}

/// Environmental conditions of a candidate region at scheduling time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionConditions {
    /// Grid carbon intensity (gCO2/kWh).
    pub carbon_intensity: CarbonIntensity,
    /// Regional average EWIF of the grid's current energy mix (L/kWh).
    pub ewif: LitersPerKwh,
    /// Water usage effectiveness implied by current weather (L/kWh).
    pub wue: WaterUsageEffectiveness,
    /// Water scarcity factor of the region.
    pub wsf: WaterScarcityFactor,
}

impl RegionConditions {
    /// The paper's water-intensity metric (Eq. 6) under these conditions.
    pub fn water_intensity(&self, pue: f64) -> WaterIntensity {
        WaterIntensity::from_components(self.wue, pue, self.ewif, self.wsf)
    }
}

/// Complete carbon + water footprint of one job execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FootprintBreakdown {
    /// Carbon footprint split (operational + embodied).
    pub carbon: CarbonFootprint,
    /// Water footprint split (offsite + onsite + embodied), in effective liters.
    pub water: WaterFootprint,
}

impl FootprintBreakdown {
    /// Total carbon (gCO2).
    pub fn total_carbon(&self) -> Co2Grams {
        self.carbon.total()
    }

    /// Total effective water (L).
    pub fn total_water(&self) -> Liters {
        self.water.total()
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &FootprintBreakdown) {
        self.carbon.accumulate(&other.carbon);
        self.water.accumulate(&other.water);
    }
}

/// Footprint estimator bound to a data center's parameters (PUE, server
/// embodied footprints). Evaluating a job in a region is a pure function of
/// the job's usage and the region's current conditions.
///
/// ```
/// use waterwise_sustain::{
///     CarbonIntensity, FootprintEstimator, JobResourceUsage, KilowattHours, LitersPerKwh,
///     RegionConditions, Seconds, WaterScarcityFactor, WaterUsageEffectiveness,
/// };
///
/// let estimator = FootprintEstimator::paper_default();
/// let usage = JobResourceUsage::new(KilowattHours::new(0.5), Seconds::new(600.0));
/// let conditions = RegionConditions {
///     carbon_intensity: CarbonIntensity::new(220.0),
///     ewif: LitersPerKwh::new(1.8),
///     wue: WaterUsageEffectiveness::new(0.4),
///     wsf: WaterScarcityFactor::new(0.6),
/// };
/// let footprint = estimator.estimate(usage, conditions);
/// assert!(footprint.total_carbon().value() > 0.0);
/// // Embodied terms make the total exceed the operational share alone.
/// let operational = estimator.estimate_operational(usage, conditions);
/// assert!(footprint.total_carbon().value() > operational.total_carbon().value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FootprintEstimator {
    /// The data-center parameters (PUE, server characteristics).
    pub params: DataCenterParams,
}

impl FootprintEstimator {
    /// Create an estimator with the given parameters.
    pub fn new(params: DataCenterParams) -> Self {
        Self { params }
    }

    /// Estimator with the paper's default setting (PUE 1.2, m5.metal servers).
    pub fn paper_default() -> Self {
        Self::new(DataCenterParams::paper_default())
    }

    /// Evaluate Eq. 1 + Eq. 5 for one job under the given conditions.
    pub fn estimate(
        &self,
        usage: JobResourceUsage,
        conditions: RegionConditions,
    ) -> FootprintBreakdown {
        let embodied_model = self.params.server.embodied_carbon_model();
        let carbon = CarbonFootprint::of_job(
            usage.energy,
            conditions.carbon_intensity,
            usage.execution_time,
            &embodied_model,
        );
        let water = WaterFootprint {
            offsite: WaterFootprint::offsite(
                self.params.pue,
                usage.energy,
                conditions.ewif,
                conditions.wsf,
            ),
            onsite: WaterFootprint::onsite(usage.energy, conditions.wue, conditions.wsf),
            embodied: self
                .params
                .server
                .embodied_water_attributed(usage.execution_time),
        };
        FootprintBreakdown { carbon, water }
    }

    /// Operational-only estimate (used by the Ecovisor comparator which does
    /// not account for embodied footprints).
    pub fn estimate_operational(
        &self,
        usage: JobResourceUsage,
        conditions: RegionConditions,
    ) -> FootprintBreakdown {
        let mut breakdown = self.estimate(usage, conditions);
        breakdown.carbon.embodied = Co2Grams::zero();
        breakdown.water.embodied = Liters::zero();
        breakdown
    }

    /// The paper's water intensity (Eq. 6) for a region under this PUE.
    pub fn water_intensity(&self, conditions: RegionConditions) -> WaterIntensity {
        conditions.water_intensity(self.params.pue)
    }

    /// Project the footprint of one *placement decision* before the job
    /// runs: the execution footprint of the (estimated) usage under the
    /// target region's conditions, plus the operational-only footprint of
    /// shipping `transfer_energy` there — the same split the simulator's
    /// after-the-fact accounting charges, evaluated on estimates instead of
    /// actuals. The online placement service attaches this projection to
    /// every response.
    ///
    /// ```
    /// use waterwise_sustain::{
    ///     CarbonIntensity, FootprintEstimator, JobResourceUsage, KilowattHours, LitersPerKwh,
    ///     RegionConditions, Seconds, WaterScarcityFactor, WaterUsageEffectiveness,
    /// };
    ///
    /// let estimator = FootprintEstimator::paper_default();
    /// let usage = JobResourceUsage::new(KilowattHours::new(0.5), Seconds::new(600.0));
    /// let conditions = RegionConditions {
    ///     carbon_intensity: CarbonIntensity::new(220.0),
    ///     ewif: LitersPerKwh::new(1.8),
    ///     wue: WaterUsageEffectiveness::new(0.4),
    ///     wsf: WaterScarcityFactor::new(0.6),
    /// };
    /// let projection = estimator.project_decision(usage, KilowattHours::new(0.01), conditions);
    /// // The migration adds operational footprint on top of the execution.
    /// assert!(projection.total_carbon() > projection.execution.total_carbon());
    /// // A home-region decision carries no transfer share at all.
    /// let home = estimator.project_decision(usage, KilowattHours::zero(), conditions);
    /// assert_eq!(home.transfer.total_carbon().value(), 0.0);
    /// ```
    pub fn project_decision(
        &self,
        usage: JobResourceUsage,
        transfer_energy: KilowattHours,
        conditions: RegionConditions,
    ) -> DecisionProjection {
        let execution = self.estimate(usage, conditions);
        let transfer = if transfer_energy.value() > 0.0 {
            self.estimate_operational(
                JobResourceUsage::new(transfer_energy, Seconds::zero()),
                conditions,
            )
        } else {
            FootprintBreakdown::default()
        };
        DecisionProjection {
            execution,
            transfer,
        }
    }
}

/// The projected footprint of one placement decision (execution plus
/// migration transfer), produced by [`FootprintEstimator::project_decision`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DecisionProjection {
    /// Projected execution footprint under the target region's conditions.
    pub execution: FootprintBreakdown,
    /// Projected transfer footprint (operational only, zero for home-region
    /// placements), mirroring the simulator's accounting convention.
    pub transfer: FootprintBreakdown,
}

impl DecisionProjection {
    /// Total projected carbon (execution + transfer), in gCO2.
    pub fn total_carbon(&self) -> Co2Grams {
        Co2Grams::new(self.execution.total_carbon().value() + self.transfer.total_carbon().value())
    }

    /// Total projected effective water (execution + transfer), in liters.
    pub fn total_water(&self) -> Liters {
        Liters::new(self.execution.total_water().value() + self.transfer.total_water().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conditions(ci: f64, ewif: f64, wue: f64, wsf: f64) -> RegionConditions {
        RegionConditions {
            carbon_intensity: CarbonIntensity::new(ci),
            ewif: LitersPerKwh::new(ewif),
            wue: WaterUsageEffectiveness::new(wue),
            wsf: WaterScarcityFactor::new(wsf),
        }
    }

    fn usage(kwh: f64, hours: f64) -> JobResourceUsage {
        JobResourceUsage::new(KilowattHours::new(kwh), Seconds::from_hours(hours))
    }

    #[test]
    fn estimate_matches_hand_computation() {
        let est = FootprintEstimator::paper_default();
        let cond = conditions(200.0, 2.0, 3.0, 0.5);
        let u = usage(1.0, 1.0);
        let fp = est.estimate(u, cond);
        // Operational carbon: 1 kWh * 200 g/kWh.
        assert!((fp.carbon.operational.value() - 200.0).abs() < 1e-9);
        // Offsite water: 1.2 * 1 * 2 * 1.5 = 3.6 L.
        assert!((fp.water.offsite.value() - 3.6).abs() < 1e-9);
        // Onsite water: 1 * 3 * 1.5 = 4.5 L.
        assert!((fp.water.onsite.value() - 4.5).abs() < 1e-9);
        assert!(fp.carbon.embodied.value() > 0.0);
        assert!(fp.water.embodied.value() > 0.0);
    }

    #[test]
    fn operational_estimate_zeroes_embodied() {
        let est = FootprintEstimator::paper_default();
        let fp = est.estimate_operational(usage(1.0, 1.0), conditions(200.0, 2.0, 3.0, 0.5));
        assert_eq!(fp.carbon.embodied.value(), 0.0);
        assert_eq!(fp.water.embodied.value(), 0.0);
        assert!(fp.carbon.operational.value() > 0.0);
    }

    #[test]
    fn footprint_scales_linearly_with_energy() {
        let est = FootprintEstimator::paper_default();
        let cond = conditions(300.0, 1.5, 4.0, 0.3);
        let one = est.estimate(usage(1.0, 1.0), cond);
        let two = est.estimate(usage(2.0, 1.0), cond);
        assert!(
            (two.carbon.operational.value() - 2.0 * one.carbon.operational.value()).abs() < 1e-9
        );
        assert!((two.water.offsite.value() - 2.0 * one.water.offsite.value()).abs() < 1e-9);
        assert!((two.water.onsite.value() - 2.0 * one.water.onsite.value()).abs() < 1e-9);
    }

    #[test]
    fn greener_region_has_lower_carbon_but_maybe_higher_water() {
        let est = FootprintEstimator::paper_default();
        let u = usage(5.0, 2.0);
        // Zurich-like: very clean grid, but hydro-heavy (high EWIF).
        let zurich = conditions(50.0, 5.5, 1.5, 0.15);
        // Mumbai-like: coal-heavy grid (low EWIF), hot and humid, stressed.
        let mumbai = conditions(750.0, 1.6, 7.0, 0.7);
        let fz = est.estimate(u, zurich);
        let fm = est.estimate(u, mumbai);
        assert!(fz.total_carbon().value() < fm.total_carbon().value());
        // Offsite water alone is *worse* in Zurich — the carbon/water tension.
        assert!(fz.water.offsite.value() > fm.water.offsite.value() / 1.7 * 1.15 / 1.2 * 1.2);
    }

    #[test]
    fn water_intensity_consistent_with_conditions() {
        let est = FootprintEstimator::paper_default();
        let cond = conditions(100.0, 2.0, 3.0, 0.5);
        let wi = est.water_intensity(cond);
        assert!((wi.value() - (3.0 + 1.2 * 2.0) * 1.5).abs() < 1e-9);
    }

    #[test]
    fn accumulate_breakdowns() {
        let est = FootprintEstimator::paper_default();
        let cond = conditions(100.0, 2.0, 3.0, 0.5);
        let fp = est.estimate(usage(1.0, 1.0), cond);
        let mut sum = FootprintBreakdown::default();
        sum.accumulate(&fp);
        sum.accumulate(&fp);
        assert!((sum.total_carbon().value() - 2.0 * fp.total_carbon().value()).abs() < 1e-9);
        assert!((sum.total_water().value() - 2.0 * fp.total_water().value()).abs() < 1e-9);
    }
}
