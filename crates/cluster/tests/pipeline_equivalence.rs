//! Property tests for the pipelined engine's determinism contract:
//! **pipelined replays are byte-identical to synchronous replays**, for any
//! trace, scheduler behavior, capacity pressure, and worker count.
//!
//! The generated traces are deliberately adversarial for the commit
//! protocol: submit and execution times are drawn from a coarse grid so
//! that arrivals collide exactly with scheduling rounds, decision `Ready`
//! events, and completions — the timestamp ties where the reserved
//! sequence-block protocol is the only thing keeping event order identical
//! across modes.

use proptest::prelude::*;
use waterwise_cluster::{
    EngineMode, Scheduler, SchedulingContext, SchedulingDecision, SimulationConfig,
    SimulationReport, Simulator,
};
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::{Region, SyntheticTelemetry, ALL_REGIONS};
use waterwise_traces::{Benchmark, JobId, JobSpec};

fn job(id: u64, submit: f64, exec: f64, home: Region, bytes: u64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit),
        home_region: home,
        actual_execution_time: Seconds::new(exec),
        actual_energy: KilowattHours::new(0.01),
        estimated_execution_time: Seconds::new(exec),
        estimated_energy: KilowattHours::new(0.01),
        package_bytes: bytes,
    }
}

/// A deterministic scheduler family covering home placement, pinning,
/// rotation, partial assignment, and periodic deferral. Stateful behaviors
/// are fine: both engine modes present the scheduler with the identical
/// sequence of contexts, so its internal state evolves identically.
struct VariedScheduler {
    variant: usize,
    round: usize,
}

impl Scheduler for VariedScheduler {
    fn name(&self) -> &str {
        "varied"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        self.round += 1;
        match self.variant {
            // Home placement for everything.
            0 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
            ),
            // Pin everything to one region (queueing pressure).
            1 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, Region::Zurich)),
            ),
            // Rotate regions by round and job id.
            2 => SchedulingDecision::from_pairs(ctx.pending.iter().map(|p| {
                let region = ALL_REGIONS[(p.spec.id.0 as usize + self.round) % ALL_REGIONS.len()];
                (p.spec.id, region)
            })),
            // Assign only every other pending job; defer the rest.
            3 => SchedulingDecision::from_pairs(
                ctx.pending
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(|(_, p)| (p.spec.id, p.spec.home_region)),
            ),
            // Defer everything every third round, else go home.
            _ => {
                if self.round.is_multiple_of(3) {
                    SchedulingDecision::defer_all()
                } else {
                    SchedulingDecision::from_pairs(
                        ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
                    )
                }
            }
        }
    }
}

fn run(
    jobs: &[JobSpec],
    servers: usize,
    engine: EngineMode,
    variant: usize,
) -> Result<SimulationReport, waterwise_cluster::SimulationError> {
    let config = SimulationConfig::paper_default(servers, 0.5).with_engine_mode(engine);
    let simulator = Simulator::new(config, SyntheticTelemetry::with_seed(7)).unwrap();
    simulator.run(jobs, &mut VariedScheduler { variant, round: 0 })
}

fn assert_identical(sync: &SimulationReport, pipelined: &SimulationReport) {
    assert_eq!(sync.outcomes, pipelined.outcomes, "outcomes diverged");
    assert_eq!(sync.makespan, pipelined.makespan, "makespan diverged");
    assert_eq!(
        format!("{:?}", sync.summary.without_wall_clock()),
        format!("{:?}", pipelined.summary.without_wall_clock()),
        "summaries diverged"
    );
    assert_eq!(sync.overhead.len(), pipelined.overhead.len());
    for (a, b) in sync.overhead.iter().zip(&pipelined.overhead) {
        assert_eq!(a.sim_time, b.sim_time, "round cadence diverged");
        assert_eq!(a.batch_size, b.batch_size, "round batches diverged");
        assert_eq!(a.solver, b.solver, "per-round solver work diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipelined == sync on tie-heavy traces across scheduler behaviors,
    /// worker counts, and capacity pressure.
    #[test]
    fn pipelined_replay_is_byte_identical_to_sync(
        raw in prop::collection::vec((0u64..30, 1u64..20, 0usize..5, 1u64..200_000_000), 1..40),
        servers in 1usize..6,
        variant in 0usize..5,
        workers in 1usize..5,
    ) {
        // Coarse grids: submit times on multiples of 30 s (the scheduling
        // round is 60 s, so half land exactly on round boundaries),
        // execution times on multiples of 45 s (completions collide with
        // both grids).
        let jobs: Vec<JobSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, &(s, e, r, bytes))| {
                job(i as u64, s as f64 * 30.0, e as f64 * 45.0, ALL_REGIONS[r], bytes)
            })
            .collect();
        let sync = run(&jobs, servers, EngineMode::Sync, variant).unwrap();
        let pipelined = run(
            &jobs,
            servers,
            EngineMode::Pipelined { workers },
            variant,
        )
        .unwrap();
        assert_identical(&sync, &pipelined);
        prop_assert_eq!(sync.summary.total_jobs, jobs.len());
    }

    /// The zero-worker clamp holds for arbitrary traces: `Pipelined { 0 }`
    /// is exactly `Sync`, down to the absence of pipeline stats.
    #[test]
    fn zero_worker_pipeline_is_exactly_sync(
        raw in prop::collection::vec((0u64..20, 1u64..10, 0usize..5, 1u64..1_000_000), 1..15),
        variant in 0usize..5,
    ) {
        let jobs: Vec<JobSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, &(s, e, r, bytes))| {
                job(i as u64, s as f64 * 60.0, e as f64 * 90.0, ALL_REGIONS[r], bytes)
            })
            .collect();
        let sync = run(&jobs, 3, EngineMode::Sync, variant).unwrap();
        let clamped = run(&jobs, 3, EngineMode::Pipelined { workers: 0 }, variant).unwrap();
        assert_identical(&sync, &clamped);
        prop_assert!(clamped.summary.pipeline.is_none());
    }
}
