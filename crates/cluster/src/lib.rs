//! # waterwise-cluster
//!
//! A discrete-event simulator of geographically distributed data centers,
//! replacing the 175-node, five-region AWS testbed of the WaterWise paper.
//!
//! The simulator models:
//!
//! * per-region server pools with FIFO queues ([`state`]);
//! * inter-region transfer of job packages with latency, bandwidth, and an
//!   energy cost ([`network`]);
//! * job arrival from a workload trace, periodic scheduling rounds that
//!   consult a pluggable [`Scheduler`], job start/completion, and footprint
//!   accounting with the environmental conditions at execution time
//!   ([`engine`]);
//! * per-job outcomes and campaign-level summaries: carbon and water
//!   footprint, service-time stretch, delay-tolerance violations, region
//!   distribution, utilization, and scheduler decision overhead
//!   ([`metrics`]).
//!
//! Schedulers (WaterWise itself and all baselines) live in `waterwise-core`;
//! this crate only defines the [`Scheduler`] trait and the view of cluster
//! state a scheduler is allowed to see.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod network;
pub mod scheduler;
pub mod state;

pub use config::{EngineMode, SimulationConfig};
pub use engine::clock::ClockMode;
pub use engine::online::{OnlineReport, PlacementNotice, SequencedJob, ONLINE_ARRIVAL_SEQ_LIMIT};
pub use engine::{SimulationReport, Simulator};
pub use error::{ConfigError, SimulationError};
pub use metrics::{
    saving_percent, schedule_digest, CampaignSummary, JobOutcome, OverheadSample, PipelineStats,
};
pub use network::TransferModel;
pub use scheduler::{
    Assignment, PendingJob, Scheduler, SchedulingContext, SchedulingDecision, SolverActivity,
};
pub use state::RegionView;
