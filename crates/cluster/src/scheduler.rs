//! The scheduler abstraction: what a placement policy sees each round and
//! what it must return.
//!
//! Concrete schedulers (WaterWise, the greedy-optimal oracles, Round-Robin,
//! Least-Load, Ecovisor) live in `waterwise-core`; the simulator only depends
//! on this trait.

use crate::network::TransferModel;
use crate::state::RegionView;
use serde::{Deserialize, Serialize};
use waterwise_sustain::Seconds;
use waterwise_telemetry::Region;
use waterwise_traces::{JobId, JobSpec};

/// A job that has arrived and is waiting for a placement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    /// The job's trace record (the scheduler must use the *estimated*
    /// execution time and energy it contains).
    pub spec: JobSpec,
    /// When the decision controller first received the job (the `T_start`
    /// of the urgency score, Eq. 14).
    pub received_at: Seconds,
    /// How many scheduling rounds this job has already been deferred.
    pub deferrals: u32,
}

impl PendingJob {
    /// Time the job has spent waiting for a decision as of `now`.
    pub fn waiting_time(&self, now: Seconds) -> Seconds {
        Seconds::new((now.value() - self.received_at.value()).max(0.0))
    }
}

/// Everything a scheduler may look at when making its decision. Notably it
/// contains *no future information*; the greedy-optimal oracles of the paper
/// receive their future knowledge through their own provider handle instead.
#[derive(Debug, Clone)]
pub struct SchedulingContext<'a> {
    /// Current simulation time.
    pub now: Seconds,
    /// Jobs awaiting placement (includes jobs deferred from earlier rounds).
    pub pending: &'a [PendingJob],
    /// Per-region state snapshot.
    pub regions: &'a [RegionView],
    /// The configured delay tolerance (fraction of execution time).
    pub delay_tolerance: f64,
    /// The transfer model (for latency-aware decisions).
    pub transfer: &'a TransferModel,
}

impl SchedulingContext<'_> {
    /// The participating regions, in the order of `regions`.
    pub fn region_list(&self) -> Vec<Region> {
        self.regions.iter().map(|v| v.region).collect()
    }

    /// Total remaining capacity across all regions.
    pub fn total_remaining_capacity(&self) -> usize {
        self.regions.iter().map(|v| v.remaining_capacity()).sum()
    }

    /// The view of a specific region, if it participates in the campaign.
    pub fn region_view(&self, region: Region) -> Option<&RegionView> {
        self.regions.iter().find(|v| v.region == region)
    }
}

/// One placement decision: run `job` in `region`, starting as soon as the
/// package transfer completes and a server frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Which job to place.
    pub job: JobId,
    /// The region that will execute it.
    pub region: Region,
}

/// The outcome of one scheduling round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulingDecision {
    /// Placements to enact this round. Pending jobs not mentioned remain in
    /// the pending pool and will be offered again next round (the `J_delay`
    /// of Algorithm 1).
    pub assignments: Vec<Assignment>,
}

impl SchedulingDecision {
    /// A decision that assigns nothing (defer everything).
    pub fn defer_all() -> Self {
        Self::default()
    }

    /// Build a decision from `(job, region)` pairs.
    ///
    /// ```
    /// use waterwise_cluster::SchedulingDecision;
    /// use waterwise_telemetry::Region;
    /// use waterwise_traces::JobId;
    ///
    /// let decision = SchedulingDecision::from_pairs([
    ///     (JobId(1), Region::Zurich),
    ///     (JobId(2), Region::Oregon),
    /// ]);
    /// assert_eq!(decision.assignments.len(), 2);
    /// ```
    pub fn from_pairs(pairs: impl IntoIterator<Item = (JobId, Region)>) -> Self {
        Self {
            assignments: pairs
                .into_iter()
                .map(|(job, region)| Assignment { job, region })
                .collect(),
        }
    }
}

/// Cumulative optimization-solver counters a scheduler may expose so the
/// engine can attribute per-round solver work (Fig. 13/14 overhead
/// experiments). Schedulers that do not run a solver return `None` from
/// [`Scheduler::solver_activity`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverActivity {
    /// Simplex runs performed (across all branch-and-bound nodes).
    pub solves: usize,
    /// Simplex runs that were warm-started (crash basis, phase 1 skipped).
    pub warm_solves: usize,
    /// Total simplex pivots.
    pub simplex_pivots: usize,
    /// Pivots spent in warm-started runs.
    pub warm_pivots: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Dual-simplex restarts attempted from a parent node's basis snapshot
    /// (branch & bound child nodes).
    pub dual_restarts: usize,
    /// Dual restarts that reached a definitive verdict without falling back
    /// to a cold solve; `dual_restarts - basis_reuse_hits` counts the cold
    /// fallbacks (pivot cap hit or incompatible snapshot).
    pub basis_reuse_hits: usize,
    /// Standard-form rows whose right-hand side actually moved across all
    /// dual restarts — the sparse delta a restart replays instead of a full
    /// re-solve.
    pub bound_flips: usize,
    /// Solution-cache lookups whose exact fingerprint matched (the solve was
    /// skipped entirely). Zero for schedulers without a cache.
    pub cache_exact_hits: usize,
    /// Solution-cache lookups that supplied a warm-start hint.
    pub cache_hint_hits: usize,
    /// Solution-cache lookups that found nothing.
    pub cache_misses: usize,
    /// Cache entries this scheduler's insertions displaced.
    pub cache_evictions: usize,
}

impl SolverActivity {
    /// Counters accumulated since `earlier` (both snapshots of the same
    /// scheduler). Saturating: a reset or replaced counter source clamps the
    /// delta to zero instead of underflowing.
    pub fn delta_since(&self, earlier: &SolverActivity) -> SolverActivity {
        SolverActivity {
            solves: self.solves.saturating_sub(earlier.solves),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            simplex_pivots: self.simplex_pivots.saturating_sub(earlier.simplex_pivots),
            warm_pivots: self.warm_pivots.saturating_sub(earlier.warm_pivots),
            nodes: self.nodes.saturating_sub(earlier.nodes),
            dual_restarts: self.dual_restarts.saturating_sub(earlier.dual_restarts),
            basis_reuse_hits: self
                .basis_reuse_hits
                .saturating_sub(earlier.basis_reuse_hits),
            bound_flips: self.bound_flips.saturating_sub(earlier.bound_flips),
            cache_exact_hits: self
                .cache_exact_hits
                .saturating_sub(earlier.cache_exact_hits),
            cache_hint_hits: self.cache_hint_hits.saturating_sub(earlier.cache_hint_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }

    /// Add another activity sample into this one.
    pub fn accumulate(&mut self, other: &SolverActivity) {
        self.solves += other.solves;
        self.warm_solves += other.warm_solves;
        self.simplex_pivots += other.simplex_pivots;
        self.warm_pivots += other.warm_pivots;
        self.nodes += other.nodes;
        self.dual_restarts += other.dual_restarts;
        self.basis_reuse_hits += other.basis_reuse_hits;
        self.bound_flips += other.bound_flips;
        self.cache_exact_hits += other.cache_exact_hits;
        self.cache_hint_hits += other.cache_hint_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }

    /// Total solution-cache lookups.
    pub fn cache_lookups(&self) -> usize {
        self.cache_exact_hits + self.cache_hint_hits + self.cache_misses
    }

    /// Fraction of cache lookups that hit (exact or hint); 0 without
    /// lookups.
    pub fn cache_hit_fraction(&self) -> f64 {
        let lookups = self.cache_lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.cache_exact_hits + self.cache_hint_hits) as f64 / lookups as f64
        }
    }

    /// Fraction of simplex runs that were warm-started.
    pub fn warm_solve_fraction(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.warm_solves as f64 / self.solves as f64
        }
    }

    /// Mean pivots per simplex run.
    pub fn pivots_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.simplex_pivots as f64 / self.solves as f64
        }
    }
}

/// A placement policy. Called once per scheduling round.
///
/// `Send` is required so the pipelined engine can run the scheduler on its
/// dedicated solver-stage thread; the engine presents the identical
/// sequence of contexts in either mode, so stateful schedulers behave the
/// same everywhere.
///
/// ```
/// use waterwise_cluster::{Scheduler, SchedulingContext, SchedulingDecision};
///
/// /// Sends every pending job to its home region.
/// struct HomeScheduler;
///
/// impl Scheduler for HomeScheduler {
///     fn name(&self) -> &str {
///         "home"
///     }
///     fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
///         SchedulingDecision::from_pairs(
///             ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
///         )
///     }
/// }
/// ```
pub trait Scheduler: Send {
    /// Short name used in logs, tables, and experiment output.
    fn name(&self) -> &str;

    /// Decide placements for (a subset of) the pending jobs.
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision;

    /// Cumulative solver counters, if this scheduler runs an optimization
    /// solver. The engine snapshots this around every [`Scheduler::schedule`]
    /// call to attribute per-round solver work in the overhead samples.
    fn solver_activity(&self) -> Option<SolverActivity> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_sustain::KilowattHours;
    use waterwise_traces::Benchmark;

    fn pending(id: u64, received: f64) -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id: JobId(id),
                benchmark: Benchmark::Dedup,
                submit_time: Seconds::new(received),
                home_region: Region::Oregon,
                actual_execution_time: Seconds::new(100.0),
                actual_energy: KilowattHours::new(0.01),
                estimated_execution_time: Seconds::new(100.0),
                estimated_energy: KilowattHours::new(0.01),
                package_bytes: 1,
            },
            received_at: Seconds::new(received),
            deferrals: 0,
        }
    }

    #[test]
    fn waiting_time_is_non_negative() {
        let p = pending(1, 50.0);
        assert_eq!(p.waiting_time(Seconds::new(80.0)).value(), 30.0);
        assert_eq!(p.waiting_time(Seconds::new(10.0)).value(), 0.0);
    }

    #[test]
    fn context_helpers() {
        let pendings = vec![pending(1, 0.0)];
        let regions = vec![
            RegionView {
                region: Region::Zurich,
                total_servers: 5,
                busy_servers: 1,
                queued_jobs: 0,
                inbound_jobs: 0,
            },
            RegionView {
                region: Region::Mumbai,
                total_servers: 5,
                busy_servers: 5,
                queued_jobs: 2,
                inbound_jobs: 0,
            },
        ];
        let transfer = TransferModel::paper_default();
        let ctx = SchedulingContext {
            now: Seconds::new(10.0),
            pending: &pendings,
            regions: &regions,
            delay_tolerance: 0.25,
            transfer: &transfer,
        };
        assert_eq!(ctx.region_list(), vec![Region::Zurich, Region::Mumbai]);
        assert_eq!(ctx.total_remaining_capacity(), 4);
        assert!(ctx.region_view(Region::Zurich).is_some());
        assert!(ctx.region_view(Region::Milan).is_none());
    }

    #[test]
    fn solver_activity_deltas_saturate_and_cache_fractions_guard_zero() {
        let later = SolverActivity {
            solves: 1,
            cache_exact_hits: 2,
            cache_hint_hits: 1,
            cache_misses: 1,
            ..SolverActivity::default()
        };
        let earlier = SolverActivity {
            solves: 5,
            simplex_pivots: 100,
            dual_restarts: 3,
            ..SolverActivity::default()
        };
        // A replaced workspace (counters reset) must clamp to zero, not
        // underflow.
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.solves, 0);
        assert_eq!(delta.simplex_pivots, 0);
        assert_eq!(delta.dual_restarts, 0);
        assert_eq!(delta.cache_exact_hits, 2);
        let mut acc = later;
        acc.accumulate(&SolverActivity {
            dual_restarts: 2,
            basis_reuse_hits: 2,
            bound_flips: 7,
            ..SolverActivity::default()
        });
        assert_eq!(acc.dual_restarts, 2);
        assert_eq!(acc.basis_reuse_hits, 2);
        assert_eq!(acc.bound_flips, 7);
        assert_eq!(later.cache_lookups(), 4);
        assert!((later.cache_hit_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(SolverActivity::default().cache_hit_fraction(), 0.0);
    }

    #[test]
    fn decision_builders() {
        let d = SchedulingDecision::from_pairs([(JobId(1), Region::Milan)]);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].region, Region::Milan);
        assert!(SchedulingDecision::defer_all().assignments.is_empty());
    }
}
