//! Simulation configuration.

use crate::error::ConfigError;
use crate::network::TransferModel;
use serde::{Deserialize, Serialize};
use waterwise_sustain::{DataCenterParams, Seconds};
use waterwise_telemetry::{Region, ALL_REGIONS};

/// How the engine executes one campaign.
///
/// Both modes replay the trace through the same deterministic core and are
/// guaranteed to produce **byte-identical schedules, outcomes, and
/// summaries** (wall-clock measurements aside); the mode only decides
/// whether scheduler solves and footprint accounting run inline on the
/// event loop or on dedicated pipeline stages.
///
/// ```
/// use waterwise_cluster::EngineMode;
///
/// // A zero-worker pipeline cannot make progress; it normalizes to Sync.
/// assert_eq!(EngineMode::Pipelined { workers: 0 }.normalized(), EngineMode::Sync);
/// assert_eq!(
///     EngineMode::Pipelined { workers: 3 }.normalized(),
///     EngineMode::Pipelined { workers: 3 },
/// );
/// assert!(!EngineMode::default().is_pipelined());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// Everything runs inline on the caller's thread: each scheduling-round
    /// solve and each job's footprint accounting block event processing
    /// (the reference behavior).
    #[default]
    Sync,
    /// The engine runs as a pipeline: a dedicated *solver stage* thread owns
    /// the scheduler and receives round snapshots over a bounded channel
    /// (decisions are committed back in strict slot order), arrival events
    /// ahead of the commit barrier are ingested while a solve is in flight,
    /// and footprint accounting is sharded across `workers − 1` accounting
    /// threads (with one worker, accounting stays on the event thread).
    ///
    /// `workers` counts the auxiliary threads in total; `workers: 0` is
    /// normalized to [`EngineMode::Sync`] — see [`EngineMode::normalized`].
    Pipelined {
        /// Total auxiliary threads: one solver stage plus
        /// `workers − 1` footprint-accounting shards.
        workers: usize,
    },
}

impl EngineMode {
    /// Resolve degenerate configurations: `Pipelined { workers: 0 }` has no
    /// thread to run the solver stage on, so it clamps to [`EngineMode::Sync`]
    /// (mirroring how a zero-job scheduling horizon clamps to one job instead
    /// of stalling forever). Every engine entry point normalizes before
    /// dispatching.
    pub fn normalized(self) -> Self {
        match self {
            EngineMode::Pipelined { workers: 0 } => EngineMode::Sync,
            other => other,
        }
    }

    /// Whether this mode (after normalization) runs the pipelined engine.
    pub fn is_pipelined(self) -> bool {
        matches!(self.normalized(), EngineMode::Pipelined { .. })
    }

    /// Stable label used in experiment output.
    pub fn label(self) -> String {
        match self.normalized() {
            EngineMode::Sync => "sync".to_string(),
            EngineMode::Pipelined { workers } => format!("pipelined({workers})"),
        }
    }
}

/// Configuration of one simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Regions participating in the campaign and the number of servers each
    /// hosts. Regions absent from this list are unavailable (used by the
    /// Fig. 12 region-availability study).
    pub regions: Vec<(Region, usize)>,
    /// Interval between scheduling rounds.
    pub scheduling_interval: Seconds,
    /// Delay tolerance as a fraction of the execution time (0.25 = 25%).
    pub delay_tolerance: f64,
    /// Data-center parameters (PUE, server embodied footprints).
    pub datacenter: DataCenterParams,
    /// Inter-region transfer model.
    pub transfer: TransferModel,
    /// Multiplicative perturbation of the embodied footprints (the ±10%
    /// sensitivity analysis); 1.0 = unperturbed.
    pub embodied_perturbation: f64,
    /// How the engine executes the campaign (synchronous or pipelined).
    /// Schedules are byte-identical either way; see [`EngineMode`].
    pub engine: EngineMode,
}

impl SimulationConfig {
    /// The paper's default setting: all five regions with equal server
    /// counts, 60-second scheduling rounds, PUE 1.2.
    ///
    /// `servers_per_region` controls the utilization level: with the
    /// Borg-like arrival rate and the Table-1 workload mix, ~280 servers per
    /// region yields the ≈15% average utilization the paper reports.
    pub fn paper_default(servers_per_region: usize, delay_tolerance: f64) -> Self {
        Self {
            regions: ALL_REGIONS
                .iter()
                .map(|&r| (r, servers_per_region))
                .collect(),
            scheduling_interval: Seconds::new(60.0),
            delay_tolerance,
            datacenter: DataCenterParams::paper_default(),
            transfer: TransferModel::paper_default(),
            embodied_perturbation: 1.0,
            engine: EngineMode::default(),
        }
    }

    /// Override the engine execution mode.
    pub fn with_engine_mode(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Restrict the campaign to a subset of regions, keeping server counts.
    pub fn with_regions(mut self, regions: &[Region]) -> Self {
        self.regions.retain(|(r, _)| regions.contains(r));
        self
    }

    /// Override the per-region server count (same count for every region).
    pub fn with_servers_per_region(mut self, servers: usize) -> Self {
        for (_, s) in &mut self.regions {
            *s = servers;
        }
        self
    }

    /// Total number of servers across all participating regions.
    pub fn total_servers(&self) -> usize {
        self.regions.iter().map(|(_, s)| s).sum()
    }

    /// The participating regions.
    pub fn region_list(&self) -> Vec<Region> {
        self.regions.iter().map(|(r, _)| *r).collect()
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.regions.is_empty() {
            return Err(ConfigError::NoRegions);
        }
        if let Some((region, _)) = self.regions.iter().find(|(_, s)| *s == 0) {
            return Err(ConfigError::EmptyRegion { region: *region });
        }
        // The `is_finite` clauses reject NaN and infinities, which would
        // otherwise produce non-finite event times inside the engine.
        let interval = self.scheduling_interval.value();
        if interval <= 0.0 || !interval.is_finite() {
            return Err(ConfigError::NonPositiveSchedulingInterval { seconds: interval });
        }
        if self.delay_tolerance < 0.0 || !self.delay_tolerance.is_finite() {
            return Err(ConfigError::NegativeDelayTolerance {
                tolerance: self.delay_tolerance,
            });
        }
        if self.embodied_perturbation <= 0.0 || !self.embodied_perturbation.is_finite() {
            return Err(ConfigError::NonPositiveEmbodiedPerturbation {
                factor: self.embodied_perturbation,
            });
        }
        Ok(())
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self::paper_default(280, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = SimulationConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.regions.len(), 5);
        assert_eq!(c.total_servers(), 5 * 280);
    }

    #[test]
    fn region_restriction() {
        let c = SimulationConfig::default().with_regions(&[Region::Zurich, Region::Oregon]);
        assert_eq!(c.regions.len(), 2);
        assert!(c.region_list().contains(&Region::Zurich));
        assert!(!c.region_list().contains(&Region::Mumbai));
    }

    #[test]
    fn server_count_override() {
        let c = SimulationConfig::default().with_servers_per_region(40);
        assert_eq!(c.total_servers(), 200);
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        let mut c = SimulationConfig::default();
        c.regions.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoRegions));

        let mut c = SimulationConfig::default();
        c.scheduling_interval = Seconds::zero();
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveSchedulingInterval { .. })
        ));

        let mut c = SimulationConfig::default();
        c.delay_tolerance = -0.1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NegativeDelayTolerance { tolerance }) if tolerance == -0.1
        ));

        let mut c = SimulationConfig::default();
        c.regions[0].1 = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::EmptyRegion { region }) if region == c.regions[0].0
        ));

        let mut c = SimulationConfig::default();
        c.embodied_perturbation = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveEmbodiedPerturbation { .. })
        ));
    }

    #[test]
    fn engine_mode_normalization_clamps_zero_workers_to_sync() {
        assert_eq!(EngineMode::Sync.normalized(), EngineMode::Sync);
        assert_eq!(
            EngineMode::Pipelined { workers: 0 }.normalized(),
            EngineMode::Sync
        );
        assert_eq!(
            EngineMode::Pipelined { workers: 2 }.normalized(),
            EngineMode::Pipelined { workers: 2 }
        );
        assert!(!EngineMode::Pipelined { workers: 0 }.is_pipelined());
        assert!(EngineMode::Pipelined { workers: 1 }.is_pipelined());
        assert_eq!(EngineMode::Pipelined { workers: 0 }.label(), "sync");
        assert_eq!(EngineMode::Pipelined { workers: 4 }.label(), "pipelined(4)");
        assert_eq!(SimulationConfig::default().engine, EngineMode::Sync);
        let c = SimulationConfig::default().with_engine_mode(EngineMode::Pipelined { workers: 2 });
        assert!(c.engine.is_pipelined());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn non_finite_numeric_fields_are_rejected() {
        let mut c = SimulationConfig::default();
        c.scheduling_interval = Seconds::new(f64::NAN);
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::default();
        c.scheduling_interval = Seconds::new(f64::INFINITY);
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::default();
        c.delay_tolerance = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::default();
        c.embodied_perturbation = f64::INFINITY;
        assert!(c.validate().is_err());
    }
}
