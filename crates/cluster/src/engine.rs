//! The discrete-event simulation engine.
//!
//! The engine replays a workload trace against a set of regional server
//! pools, consulting a [`Scheduler`] every scheduling round and accounting
//! carbon and water footprints with the environmental conditions in effect
//! when each job starts. It replaces the paper's physical 175-node AWS
//! deployment (the scheduler code is identical in both worlds — it only sees
//! the [`SchedulingContext`]).

use crate::config::SimulationConfig;
use crate::error::SimulationError;
use crate::metrics::{CampaignSummary, JobOutcome, OverheadSample};
use crate::scheduler::{PendingJob, Scheduler, SchedulingContext, SchedulingDecision};
use crate::state::RegionRuntime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Instant;
use waterwise_sustain::{FootprintEstimator, JobResourceUsage, Seconds};
use waterwise_telemetry::{ConditionsProvider, Region};
use waterwise_traces::{JobId, JobSpec};

/// The result of simulating one campaign with one scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Name of the scheduler that produced this report.
    pub scheduler_name: String,
    /// Per-job outcomes in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Scheduler decision-overhead samples, one per round that had work.
    pub overhead: Vec<OverheadSample>,
    /// Aggregate summary.
    pub summary: CampaignSummary,
    /// Total simulated time from first submission to last completion.
    pub makespan: Seconds,
}

/// Discrete-event simulator of the geo-distributed cluster.
#[derive(Debug, Clone)]
pub struct Simulator<P> {
    config: SimulationConfig,
    provider: P,
    estimator: FootprintEstimator,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A job from the trace arrives at its home region's decision controller.
    Arrival(usize),
    /// A periodic scheduling round.
    Round,
    /// A job's package transfer has completed; it is ready to run in
    /// its assigned region.
    Ready(usize),
    /// A job finished executing.
    Complete(usize),
}

impl Event {
    /// Human-readable description used in error reports.
    fn describe(self) -> String {
        match self {
            Event::Arrival(i) => format!("arrival of job {i}"),
            Event::Round => "scheduling round".to_string(),
            Event::Ready(i) => format!("readiness of job {i}"),
            Event::Complete(i) => format!("completion of job {i}"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering to make BinaryHeap a min-heap on (time, seq).
        // `total_cmp` keeps this a true total order; [`EventQueue::push`]
        // guarantees no non-finite time ever enters the heap.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: a min-heap on (time, insertion order) that rejects
/// non-finite timestamps at insertion, so the heap invariant can never be
/// silently corrupted by a NaN comparing as "equal" to everything.
#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
}

impl EventQueue {
    /// Enqueue `event` at `time`, rejecting NaN and infinite timestamps.
    fn push(&mut self, time: f64, event: Event) -> Result<(), SimulationError> {
        if !time.is_finite() {
            return Err(SimulationError::NonFiniteEventTime {
                time,
                event: event.describe(),
            });
        }
        self.heap.push(QueuedEvent {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        Ok(())
    }

    /// Remove and return the earliest event.
    fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// Whether only periodic `Round` events remain queued.
    fn only_rounds_left(&self) -> bool {
        self.heap.iter().all(|e| matches!(e.event, Event::Round))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct JobRuntime {
    assigned_region: Option<Region>,
    transfer_time: f64,
    start_time: f64,
    completion_time: f64,
    started: bool,
    completed: bool,
}

impl<P: ConditionsProvider> Simulator<P> {
    /// Create a simulator. Fails if the configuration is invalid.
    pub fn new(config: SimulationConfig, provider: P) -> Result<Self, SimulationError> {
        config.validate()?;
        let mut datacenter = config.datacenter;
        datacenter.server = datacenter
            .server
            .perturbed_embodied(config.embodied_perturbation);
        let estimator = FootprintEstimator::new(datacenter);
        Ok(Self {
            config,
            provider,
            estimator,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The footprint estimator (after applying any embodied perturbation).
    pub fn estimator(&self) -> &FootprintEstimator {
        &self.estimator
    }

    /// Run the campaign: replay `jobs` (sorted by submit time) under
    /// `scheduler` and return the full report.
    ///
    /// Fails if the trace or transfer model would produce an event with a
    /// non-finite timestamp (see [`SimulationError::NonFiniteEventTime`]).
    pub fn run(
        &self,
        jobs: &[JobSpec],
        scheduler: &mut dyn Scheduler,
    ) -> Result<SimulationReport, SimulationError> {
        // Assignments are keyed by job id; a duplicate would leave one twin
        // pending forever (the round loop would never drain), so reject the
        // malformed trace up front with a typed error.
        let mut seen_ids: HashSet<JobId> = HashSet::with_capacity(jobs.len());
        for job in jobs {
            if !seen_ids.insert(job.id) {
                return Err(SimulationError::DuplicateJobId { id: job.id });
            }
        }

        let participating = self.config.region_list();
        let mut regions: Vec<RegionRuntime> = self
            .config
            .regions
            .iter()
            .map(|(r, servers)| RegionRuntime::new(*r, *servers))
            .collect();
        let region_slot: HashMap<Region, usize> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.region, i))
            .collect();

        let mut queue = EventQueue::default();
        for (i, job) in jobs.iter().enumerate() {
            queue.push(job.submit_time.value(), Event::Arrival(i))?;
        }
        let first_time = jobs.first().map(|j| j.submit_time.value()).unwrap_or(0.0);
        queue.push(first_time, Event::Round)?;

        let interval = self.config.scheduling_interval.value();
        let tolerance = self.config.delay_tolerance;
        let mut runtimes = vec![JobRuntime::default(); jobs.len()];
        // Pending pool: job indices with the time the controller received them.
        let mut pending: Vec<(usize, f64, u32)> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut overhead: Vec<OverheadSample> = Vec::new();
        let mut completed = 0usize;
        let mut last_time = first_time;

        while let Some(QueuedEvent { time, event, .. }) = queue.pop() {
            last_time = time;
            match event {
                Event::Arrival(i) => {
                    pending.push((i, time, 0));
                }
                Event::Round => {
                    if !pending.is_empty() {
                        let pending_jobs: Vec<PendingJob> = pending
                            .iter()
                            .map(|&(i, received, deferrals)| PendingJob {
                                spec: jobs[i].clone(),
                                received_at: Seconds::new(received),
                                deferrals,
                            })
                            .collect();
                        let views: Vec<_> = regions.iter().map(|r| r.view()).collect();
                        let ctx = SchedulingContext {
                            now: Seconds::new(time),
                            pending: &pending_jobs,
                            regions: &views,
                            delay_tolerance: tolerance,
                            transfer: &self.config.transfer,
                        };
                        let solver_before = scheduler.solver_activity();
                        let started = Instant::now();
                        let decision = scheduler.schedule(&ctx);
                        let elapsed = started.elapsed().as_secs_f64();
                        // Attribute this round's solver work (cold vs warm
                        // solves, pivots, nodes) to the overhead sample.
                        let solver = match (solver_before, scheduler.solver_activity()) {
                            (Some(before), Some(after)) => Some(after.delta_since(&before)),
                            _ => None,
                        };
                        overhead.push(OverheadSample {
                            sim_time: Seconds::new(time),
                            wall_clock: Seconds::new(elapsed),
                            batch_size: pending_jobs.len(),
                            solver,
                        });
                        self.apply_decision(
                            &decision,
                            jobs,
                            &participating,
                            &region_slot,
                            &mut regions,
                            &mut runtimes,
                            &mut pending,
                            &mut queue,
                            time,
                        )?;
                        // Jobs left in the pool count one more deferral.
                        for p in &mut pending {
                            p.2 += 1;
                        }
                    }
                    if completed < jobs.len() {
                        queue.push(time + interval, Event::Round)?;
                    }
                }
                Event::Ready(i) => {
                    // Name the job by its trace id, not the internal array
                    // index `event.describe()` would render — the two only
                    // coincide for 0..n traces.
                    let region = runtimes[i].assigned_region.ok_or_else(|| {
                        SimulationError::UnassignedJob {
                            job: jobs[i].id,
                            event: format!("readiness of job {}", jobs[i].id.0),
                        }
                    })?;
                    let slot = region_slot[&region];
                    regions[slot].advance_to(time);
                    regions[slot].inbound = regions[slot].inbound.saturating_sub(1);
                    if regions[slot].busy < regions[slot].servers {
                        regions[slot].busy += 1;
                        runtimes[i].started = true;
                        runtimes[i].start_time = time;
                        queue.push(
                            time + jobs[i].actual_execution_time.value(),
                            Event::Complete(i),
                        )?;
                    } else {
                        regions[slot].queue.push_back(i);
                    }
                }
                Event::Complete(i) => {
                    let region = runtimes[i].assigned_region.ok_or_else(|| {
                        SimulationError::UnassignedJob {
                            job: jobs[i].id,
                            event: format!("completion of job {}", jobs[i].id.0),
                        }
                    })?;
                    let slot = region_slot[&region];
                    regions[slot].advance_to(time);
                    runtimes[i].completed = true;
                    runtimes[i].completion_time = time;
                    completed += 1;
                    outcomes.push(self.record_outcome(&jobs[i], &runtimes[i], tolerance)?);
                    // Free the server and admit the next queued job, if any.
                    if let Some(next) = regions[slot].queue.pop_front() {
                        runtimes[next].started = true;
                        runtimes[next].start_time = time;
                        queue.push(
                            time + jobs[next].actual_execution_time.value(),
                            Event::Complete(next),
                        )?;
                    } else {
                        regions[slot].busy -= 1;
                    }
                }
            }
            if completed == jobs.len() && pending.is_empty() && queue.only_rounds_left() {
                // Drain any remaining Round events implicitly by stopping.
                break;
            }
        }

        // Close the utilization integrals.
        for r in &mut regions {
            r.advance_to(last_time);
        }
        let makespan = (last_time - first_time).max(0.0);
        let capacity_seconds: f64 = regions.iter().map(|r| r.servers as f64 * makespan).sum();
        let busy_seconds: f64 = regions.iter().map(|r| r.busy_server_seconds).sum();
        let mean_utilization = if capacity_seconds > 0.0 {
            busy_seconds / capacity_seconds
        } else {
            0.0
        };

        let summary = CampaignSummary::from_outcomes(&outcomes, &overhead, mean_utilization);
        Ok(SimulationReport {
            scheduler_name: scheduler.name().to_string(),
            outcomes,
            overhead,
            summary,
            makespan: Seconds::new(makespan),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_decision(
        &self,
        decision: &SchedulingDecision,
        jobs: &[JobSpec],
        participating: &[Region],
        region_slot: &HashMap<Region, usize>,
        regions: &mut [RegionRuntime],
        runtimes: &mut [JobRuntime],
        pending: &mut Vec<(usize, f64, u32)>,
        queue: &mut EventQueue,
        now: f64,
    ) -> Result<(), SimulationError> {
        let by_id: HashMap<JobId, usize> =
            pending.iter().map(|&(i, _, _)| (jobs[i].id, i)).collect();
        let mut assigned: Vec<usize> = Vec::new();
        for a in &decision.assignments {
            let Some(&i) = by_id.get(&a.job) else {
                continue; // Unknown or already-scheduled job id: ignore.
            };
            if !participating.contains(&a.region) || runtimes[i].assigned_region.is_some() {
                continue;
            }
            let transfer_time = self
                .config
                .transfer
                .transfer_time(jobs[i].home_region, a.region, jobs[i].package_bytes)
                .value();
            runtimes[i].assigned_region = Some(a.region);
            runtimes[i].transfer_time = transfer_time;
            let slot = region_slot[&a.region];
            regions[slot].inbound += 1;
            queue.push(now + transfer_time, Event::Ready(i))?;
            assigned.push(i);
        }
        pending.retain(|(i, _, _)| !assigned.contains(i));
        Ok(())
    }

    fn record_outcome(
        &self,
        job: &JobSpec,
        runtime: &JobRuntime,
        tolerance: f64,
    ) -> Result<JobOutcome, SimulationError> {
        let region = runtime
            .assigned_region
            .ok_or_else(|| SimulationError::UnassignedJob {
                job: job.id,
                event: format!("outcome of job {}", job.id.0),
            })?;
        let start = Seconds::new(runtime.start_time);
        let conditions = self.provider.conditions(region, start);
        let usage = JobResourceUsage::new(job.actual_energy, job.actual_execution_time);
        let footprint = self.estimator.estimate(usage, conditions);
        let transfer_footprint = if region == job.home_region {
            Default::default()
        } else {
            let energy =
                self.config
                    .transfer
                    .transfer_energy(job.home_region, region, job.package_bytes);
            // The transfer consumes energy along the path; attribute it to the
            // destination region's conditions and exclude embodied terms.
            self.estimator
                .estimate_operational(JobResourceUsage::new(energy, Seconds::zero()), conditions)
        };
        let service_time = runtime.completion_time - job.submit_time.value();
        let allowed = (1.0 + tolerance) * job.actual_execution_time.value();
        Ok(JobOutcome {
            job: job.id,
            home_region: job.home_region,
            executed_region: region,
            submit_time: job.submit_time,
            start_time: start,
            completion_time: Seconds::new(runtime.completion_time),
            execution_time: job.actual_execution_time,
            footprint,
            transfer_footprint,
            transfer_time: Seconds::new(runtime.transfer_time),
            violated_tolerance: service_time > allowed + 1e-6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Assignment;
    use waterwise_telemetry::SyntheticTelemetry;
    use waterwise_traces::{TraceConfig, TraceGenerator};

    /// A trivial scheduler that always sends every pending job to its home
    /// region immediately (the paper's Baseline).
    struct HomeScheduler;
    impl Scheduler for HomeScheduler {
        fn name(&self) -> &str {
            "home"
        }
        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
            SchedulingDecision {
                assignments: ctx
                    .pending
                    .iter()
                    .map(|p| Assignment {
                        job: p.spec.id,
                        region: p.spec.home_region,
                    })
                    .collect(),
            }
        }
    }

    /// A scheduler that sends everything to one region, to exercise queueing.
    struct PinScheduler(Region);
    impl Scheduler for PinScheduler {
        fn name(&self) -> &str {
            "pin"
        }
        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
            SchedulingDecision {
                assignments: ctx
                    .pending
                    .iter()
                    .map(|p| Assignment {
                        job: p.spec.id,
                        region: self.0,
                    })
                    .collect(),
            }
        }
    }

    fn small_trace(seed: u64) -> Vec<JobSpec> {
        TraceGenerator::new(TraceConfig::borg(0.05, seed)).generate()
    }

    fn hand_built_job(submit_time: f64, execution_time: f64) -> JobSpec {
        use waterwise_sustain::KilowattHours;
        use waterwise_traces::Benchmark;
        JobSpec {
            id: JobId(0),
            benchmark: Benchmark::Dedup,
            submit_time: Seconds::new(submit_time),
            home_region: Region::Oregon,
            actual_execution_time: Seconds::new(execution_time),
            actual_energy: KilowattHours::new(0.01),
            estimated_execution_time: Seconds::new(execution_time),
            estimated_energy: KilowattHours::new(0.01),
            package_bytes: 1,
        }
    }

    fn simulator(servers: usize, tolerance: f64) -> Simulator<SyntheticTelemetry> {
        Simulator::new(
            SimulationConfig::paper_default(servers, tolerance),
            SyntheticTelemetry::with_seed(1),
        )
        .unwrap()
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let jobs = small_trace(3);
        let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
        assert_eq!(report.summary.total_jobs, jobs.len());
        assert_eq!(report.outcomes.len(), jobs.len());
        let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.job.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn home_scheduler_never_migrates_and_never_violates_generously() {
        let jobs = small_trace(5);
        let report = simulator(200, 1.0).run(&jobs, &mut HomeScheduler).unwrap();
        assert_eq!(report.summary.migration_fraction, 0.0);
        // With ample capacity and no migration, the only delay is the
        // scheduling-round granularity, so violations should be rare.
        assert!(report.summary.violation_fraction < 0.2);
        assert!(report.summary.mean_service_stretch >= 1.0);
    }

    #[test]
    fn service_time_is_at_least_execution_time() {
        let jobs = small_trace(7);
        let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
        for o in &report.outcomes {
            assert!(o.service_time().value() >= o.execution_time.value() - 1e-6);
            assert!(o.completion_time.value() > o.start_time.value());
            assert!(o.start_time.value() >= o.submit_time.value());
        }
    }

    #[test]
    fn footprints_are_positive() {
        let jobs = small_trace(9);
        let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
        assert!(report.summary.total_carbon.value() > 0.0);
        assert!(report.summary.total_water.value() > 0.0);
        for o in &report.outcomes {
            assert!(o.footprint.total_carbon().value() > 0.0);
            assert!(o.footprint.total_water().value() > 0.0);
        }
    }

    #[test]
    fn pinning_to_a_tiny_region_queues_jobs_and_stretches_service_time() {
        let jobs = small_trace(11);
        // Only 2 servers per region: pinning everything to Zurich must queue.
        let report = simulator(2, 0.25)
            .run(&jobs, &mut PinScheduler(Region::Zurich))
            .unwrap();
        assert!(report.summary.migration_fraction > 0.5);
        assert!(report.summary.mean_service_stretch > 1.0);
        assert_eq!(
            report.summary.jobs_per_region[Region::Zurich.index()],
            jobs.len()
        );
        // Capacity is never exceeded: utilization cannot exceed 1.
        assert!(report.summary.mean_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn migrated_jobs_carry_transfer_overhead() {
        let jobs = small_trace(13);
        let report = simulator(20, 0.5)
            .run(&jobs, &mut PinScheduler(Region::Mumbai))
            .unwrap();
        let migrated: Vec<_> = report.outcomes.iter().filter(|o| o.migrated()).collect();
        assert!(!migrated.is_empty());
        for o in migrated {
            assert!(o.transfer_time.value() > 0.0);
            assert!(o.transfer_footprint.total_carbon().value() > 0.0);
            // Transfer overhead must be small relative to execution (Table 3).
            assert!(
                o.transfer_footprint.total_carbon().value()
                    < 0.1 * o.footprint.total_carbon().value()
            );
        }
    }

    #[test]
    fn overhead_samples_are_recorded() {
        let jobs = small_trace(15);
        let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
        assert!(!report.overhead.is_empty());
        assert!(report.summary.mean_decision_time.value() >= 0.0);
        assert!(report.summary.decision_overhead_fraction < 0.01);
    }

    #[test]
    fn empty_trace_is_handled() {
        let report = simulator(10, 0.5).run(&[], &mut HomeScheduler).unwrap();
        assert_eq!(report.summary.total_jobs, 0);
        assert_eq!(report.outcomes.len(), 0);
    }

    #[test]
    fn nan_submit_time_is_rejected_at_insertion() {
        let jobs = vec![hand_built_job(f64::NAN, 100.0)];
        let err = simulator(10, 0.5)
            .run(&jobs, &mut HomeScheduler)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::NonFiniteEventTime { time, ref event }
                if time.is_nan() && event.contains("arrival")
        ));
    }

    #[test]
    fn non_finite_execution_time_is_rejected_at_insertion() {
        for bad in [f64::NAN, f64::INFINITY] {
            let jobs = vec![hand_built_job(0.0, bad)];
            let err = simulator(10, 0.5)
                .run(&jobs, &mut HomeScheduler)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    SimulationError::NonFiniteEventTime { ref event, .. }
                        if event.contains("completion")
                ),
                "execution time {bad} should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_job_ids_fail_the_campaign_with_a_typed_error() {
        // Two jobs sharing an id would leave one twin unschedulable forever
        // (assignments are keyed by id); the engine must reject the trace
        // instead of spinning or panicking.
        let mut a = hand_built_job(0.0, 50.0);
        let mut b = hand_built_job(10.0, 60.0);
        a.id = JobId(7);
        b.id = JobId(7);
        let err = simulator(10, 0.5)
            .run(&[a, b], &mut HomeScheduler)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::DuplicateJobId { id: JobId(7) }
        ));
    }

    #[test]
    fn invalid_config_surfaces_as_typed_error() {
        let err = Simulator::new(
            SimulationConfig::paper_default(0, 0.5),
            SyntheticTelemetry::with_seed(1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::Config(crate::error::ConfigError::EmptyRegion { .. })
        ));
    }

    #[test]
    fn deferring_scheduler_eventually_everything_still_completes() {
        /// Defers everything for the first few rounds, then behaves like home.
        struct LazyScheduler {
            rounds: u32,
        }
        impl Scheduler for LazyScheduler {
            fn name(&self) -> &str {
                "lazy"
            }
            fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
                self.rounds += 1;
                if self.rounds <= 3 {
                    SchedulingDecision::defer_all()
                } else {
                    SchedulingDecision {
                        assignments: ctx
                            .pending
                            .iter()
                            .map(|p| Assignment {
                                job: p.spec.id,
                                region: p.spec.home_region,
                            })
                            .collect(),
                    }
                }
            }
        }
        let jobs = small_trace(17);
        let report = simulator(50, 0.5)
            .run(&jobs, &mut LazyScheduler { rounds: 0 })
            .unwrap();
        assert_eq!(report.summary.total_jobs, jobs.len());
        // Deferral shows up as extra waiting time.
        assert!(report.summary.mean_service_stretch >= 1.0);
    }
}
