//! Inter-region transfer model: latency, bandwidth, and the energy (and
//! hence carbon/water) cost of moving a job package between regions.
//!
//! The paper transfers compressed `.tar` execution packages over SCP between
//! AWS regions on 25 Gbps NICs; the effective WAN throughput between
//! continents is far lower. Table 3 reports the resulting communication
//! overhead as a fraction of execution carbon/water, which this model
//! reproduces: the overhead is dominated by transfer latency and is a
//! fraction of a percent of the execution footprint.

use serde::{Deserialize, Serialize};
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::Region;

/// Transfer model between the five regions.
///
/// ```
/// use waterwise_cluster::TransferModel;
/// use waterwise_telemetry::Region;
///
/// let model = TransferModel::paper_default();
/// // Same-region "transfers" are free; real hops pay setup + latency +
/// // bandwidth.
/// assert_eq!(model.transfer_time(Region::Oregon, Region::Oregon, 1 << 30).value(), 0.0);
/// assert!(model.transfer_time(Region::Oregon, Region::Mumbai, 1 << 30).value() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// One-way network latency between region pairs (seconds), symmetric.
    rtt: [[f64; 5]; 5],
    /// Effective inter-region throughput in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Marginal energy consumed by the network path per byte transferred
    /// (kWh/byte). The paper attributes only a fraction of a percent of the
    /// execution footprint to communication (Table 3), which corresponds to
    /// the *marginal* energy of pushing packets through already-powered
    /// equipment (~0.2 Wh/GB), not the amortized total network energy.
    pub energy_per_byte_kwh: f64,
    /// Fixed per-transfer protocol overhead (seconds) covering SCP session
    /// setup and packaging.
    pub setup_overhead: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl TransferModel {
    /// The default model calibrated to inter-continental AWS paths.
    pub fn paper_default() -> Self {
        // One-way latencies in milliseconds, roughly proportional to
        // geographic distance between the five AWS regions.
        const MS: [[f64; 5]; 5] = [
            // Zurich  Madrid  Oregon  Milan   Mumbai
            [0.0, 17.0, 75.0, 8.0, 55.0],   // Zurich
            [17.0, 0.0, 80.0, 15.0, 65.0],  // Madrid
            [75.0, 80.0, 0.0, 78.0, 110.0], // Oregon
            [8.0, 15.0, 78.0, 0.0, 50.0],   // Milan
            [55.0, 65.0, 110.0, 50.0, 0.0], // Mumbai
        ];
        let mut rtt = [[0.0; 5]; 5];
        for (i, row) in MS.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                rtt[i][j] = v / 1000.0;
            }
        }
        Self {
            rtt,
            // ~1.2 Gbps effective cross-region throughput.
            bandwidth_bytes_per_sec: 150.0 * 1024.0 * 1024.0,
            energy_per_byte_kwh: 0.0002 / 1.0e9,
            setup_overhead: 1.5,
        }
    }

    /// One-way latency between two regions.
    pub fn latency(&self, from: Region, to: Region) -> Seconds {
        Seconds::new(self.rtt[from.index()][to.index()])
    }

    /// Total time to move a package of `bytes` from `from` to `to`
    /// (zero if the regions are the same).
    pub fn transfer_time(&self, from: Region, to: Region, bytes: u64) -> Seconds {
        if from == to {
            return Seconds::zero();
        }
        let latency = self.rtt[from.index()][to.index()];
        Seconds::new(self.setup_overhead + latency + bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Energy consumed by transferring `bytes` between distinct regions.
    pub fn transfer_energy(&self, from: Region, to: Region, bytes: u64) -> KilowattHours {
        if from == to {
            return KilowattHours::zero();
        }
        KilowattHours::new(bytes as f64 * self.energy_per_byte_kwh)
    }

    /// The average transfer time from `from` to every *other* region for a
    /// package of `bytes` — the `L_avg` term of the slack manager's urgency
    /// score (Eq. 14).
    pub fn average_transfer_time(&self, from: Region, bytes: u64, regions: &[Region]) -> Seconds {
        let others: Vec<&Region> = regions.iter().filter(|r| **r != from).collect();
        if others.is_empty() {
            return Seconds::zero();
        }
        let total: f64 = others
            .iter()
            .map(|r| self.transfer_time(from, **r, bytes).value())
            .sum();
        Seconds::new(total / others.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_telemetry::ALL_REGIONS;

    #[test]
    fn same_region_transfer_is_free() {
        let m = TransferModel::paper_default();
        assert_eq!(
            m.transfer_time(Region::Oregon, Region::Oregon, 1 << 30)
                .value(),
            0.0
        );
        assert_eq!(
            m.transfer_energy(Region::Oregon, Region::Oregon, 1 << 30)
                .value(),
            0.0
        );
    }

    #[test]
    fn latency_matrix_is_symmetric_with_zero_diagonal() {
        let m = TransferModel::paper_default();
        for a in ALL_REGIONS {
            assert_eq!(m.latency(a, a).value(), 0.0);
            for b in ALL_REGIONS {
                assert_eq!(m.latency(a, b).value(), m.latency(b, a).value());
            }
        }
    }

    #[test]
    fn bigger_packages_take_longer() {
        let m = TransferModel::paper_default();
        let small = m.transfer_time(Region::Oregon, Region::Zurich, 100 << 20);
        let large = m.transfer_time(Region::Oregon, Region::Zurich, 1 << 30);
        assert!(large.value() > small.value());
    }

    #[test]
    fn oregon_to_mumbai_is_the_longest_hop_from_oregon() {
        let m = TransferModel::paper_default();
        let bytes = 500 << 20;
        let to_mumbai = m
            .transfer_time(Region::Oregon, Region::Mumbai, bytes)
            .value();
        for r in [Region::Zurich, Region::Madrid, Region::Milan] {
            assert!(to_mumbai >= m.transfer_time(Region::Oregon, r, bytes).value());
        }
    }

    #[test]
    fn transfer_is_fast_relative_to_job_execution() {
        // Table 3 / Sec. 6: communication overhead is a small fraction of the
        // execution footprint; a ~500 MB package must move in well under the
        // shortest job's execution time (~200 s).
        let m = TransferModel::paper_default();
        let t = m
            .transfer_time(Region::Oregon, Region::Mumbai, 500 << 20)
            .value();
        assert!(t < 60.0, "transfer takes {t}s");
        assert!(t > 1.0);
    }

    #[test]
    fn transfer_energy_is_small_but_positive() {
        let m = TransferModel::paper_default();
        let e = m
            .transfer_energy(Region::Oregon, Region::Zurich, 1 << 30)
            .value();
        // ~0.2 Wh/GB marginal energy.
        assert!(e > 1e-5 && e < 1e-3, "energy {e}");
    }

    #[test]
    fn average_transfer_time_excludes_self() {
        let m = TransferModel::paper_default();
        let avg = m
            .average_transfer_time(Region::Oregon, 200 << 20, &ALL_REGIONS)
            .value();
        assert!(avg > 0.0);
        let only_self = m.average_transfer_time(Region::Oregon, 200 << 20, &[Region::Oregon]);
        assert_eq!(only_self.value(), 0.0);
    }
}
