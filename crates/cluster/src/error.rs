//! Typed errors for configuration validation and simulation.
//!
//! Every fallible public API in this crate reports one of these enums
//! (instead of the stringly-typed `Result<_, String>` the crate started
//! with), so callers can match on the failure, and `waterwise-core` can wrap
//! them into its campaign-level `WaterWiseError` without parsing messages.

use std::fmt;
use waterwise_telemetry::Region;
use waterwise_traces::JobId;

/// A [`crate::SimulationConfig`] failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The region list is empty.
    NoRegions,
    /// A participating region has zero servers.
    EmptyRegion {
        /// The region with no servers.
        region: Region,
    },
    /// The scheduling interval is zero or negative.
    NonPositiveSchedulingInterval {
        /// The offending interval in seconds.
        seconds: f64,
    },
    /// The delay tolerance is negative.
    NegativeDelayTolerance {
        /// The offending tolerance.
        tolerance: f64,
    },
    /// The embodied-footprint perturbation factor is zero or negative.
    NonPositiveEmbodiedPerturbation {
        /// The offending factor.
        factor: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoRegions => write!(f, "at least one region is required"),
            ConfigError::EmptyRegion { region } => {
                write!(f, "region {region} needs at least one server")
            }
            ConfigError::NonPositiveSchedulingInterval { seconds } => {
                write!(f, "scheduling interval must be positive, got {seconds} s")
            }
            ConfigError::NegativeDelayTolerance { tolerance } => {
                write!(f, "delay tolerance must be non-negative, got {tolerance}")
            }
            ConfigError::NonPositiveEmbodiedPerturbation { factor } => {
                write!(f, "embodied perturbation must be positive, got {factor}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The discrete-event engine could not be constructed or could not replay
/// the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// The simulation configuration is invalid.
    Config(ConfigError),
    /// An event with a NaN or infinite timestamp was about to enter the
    /// event queue. Admitting it would silently break the min-heap ordering
    /// invariant, so the engine rejects the whole run instead.
    NonFiniteEventTime {
        /// The offending timestamp.
        time: f64,
        /// Which event carried it (for example `arrival of job 17`).
        event: String,
    },
    /// A readiness/completion event was dispatched for a job that has no
    /// assigned region. This is an engine-invariant violation (events are
    /// only scheduled after assignment); reporting it as an error fails the
    /// one affected campaign instead of panicking the whole parallel run.
    UnassignedJob {
        /// The job the event referenced.
        job: JobId,
        /// Which event was being dispatched (for example `readiness of job 3`).
        event: String,
    },
    /// The trace contains two jobs with the same id. Assignments are keyed
    /// by job id, so a duplicate would leave one of the twins unschedulable
    /// forever (the campaign would never terminate); the engine rejects the
    /// trace up front instead.
    DuplicateJobId {
        /// The id that appears more than once.
        id: JobId,
    },
    /// The pipelined engine's solver stage hung up before delivering a
    /// slot's decision. This only happens when the stage died abnormally
    /// (e.g. the scheduler panicked mid-solve); the error fails the one
    /// affected campaign, and the panic — if any — still propagates when
    /// the engine joins the stage, exactly as it would have from an inline
    /// synchronous solve.
    SolverStageDisconnected {
        /// The scheduling slot whose decision never arrived.
        slot: usize,
    },
    /// A pipelined-engine accounting shard hung up before accepting a
    /// completion record. Like [`SimulationError::SolverStageDisconnected`],
    /// this only happens when the shard died abnormally; the error fails the
    /// one affected campaign.
    AccountingStageDisconnected {
        /// Completion index of the record that could not be shipped.
        index: usize,
    },
    /// The pipelined engine received a decision out of slot order. The
    /// commit protocol applies decisions strictly in slot order, so this is
    /// an engine-invariant violation; reporting it as an error fails the one
    /// affected campaign instead of silently committing a stale decision.
    PipelineCommitOrder {
        /// The slot whose decision the event stage was waiting for.
        expected: usize,
        /// The slot the solver stage actually delivered.
        got: usize,
    },
    /// An online injection under [`crate::ClockMode::Discrete`] carried a
    /// submit time at or before state the engine has already committed
    /// (an earlier stamp, or a dispatched round/ready/complete event at or
    /// after it). Admitting it would make the recorded trace unreplayable —
    /// the offline replay would order the arrival ahead of effects the
    /// online run produced without it — so the run is rejected instead.
    /// `RealTime` runs never produce this error (stamps are taken from the
    /// monotone clock).
    OutOfOrderArrival {
        /// The rejected job.
        job: JobId,
        /// The submit time the injection carried.
        time: f64,
        /// The smallest admissible submit time at the point of injection.
        watermark: f64,
    },
    /// The pipelined engine's deterministic merge found a completion index
    /// that no accounting shard returned an outcome for. Completion records
    /// are indexed contiguously at dispatch, so this is an engine-invariant
    /// violation (a shard dropped a record without erroring); reporting it
    /// as a typed error fails the one affected campaign instead of
    /// panicking the whole parallel run — the PR 3 de-panicking discipline.
    MissingCompletionRecord {
        /// The completion index no shard accounted for.
        index: usize,
    },
    /// The online caller dropped the placement-notice receiver while the
    /// campaign was still placing jobs. Placements are the service's
    /// responses; silently discarding them would strand the requests they
    /// answer, so the run fails with the job whose notice could not be
    /// delivered.
    PlacementSinkDisconnected {
        /// The placed job whose notice had no receiver.
        job: JobId,
    },
    /// A caller-sequenced online injection carried an arrival sequence at
    /// or above the round/decision band floor
    /// ([`crate::ONLINE_ARRIVAL_SEQ_LIMIT`]). Admitting it could make the
    /// arrival lose exact-timestamp ties against decision events — an
    /// ordering no offline replay can reproduce — so the run is rejected.
    ArrivalSeqOutOfBand {
        /// The rejected job.
        job: JobId,
        /// The out-of-band sequence it carried.
        seq: u64,
    },
    /// A caller-sequenced online injection reused an arrival sequence an
    /// earlier injection already carried. The sequence is the
    /// exact-timestamp tie-breaker, so a reuse would leave the order
    /// between the twins ambiguous; the run is rejected instead.
    ArrivalSeqReused {
        /// The rejected job.
        job: JobId,
        /// The sequence that was already taken.
        seq: u64,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimulationError::NonFiniteEventTime { time, event } => {
                write!(f, "non-finite event time {time} for {event}")
            }
            SimulationError::UnassignedJob { job, event } => {
                write!(f, "{event}: {job} has no assigned region")
            }
            SimulationError::DuplicateJobId { id } => {
                write!(f, "trace contains duplicate id {id}")
            }
            SimulationError::SolverStageDisconnected { slot } => {
                write!(
                    f,
                    "pipelined solver stage hung up before delivering slot {slot}"
                )
            }
            SimulationError::AccountingStageDisconnected { index } => {
                write!(
                    f,
                    "pipelined accounting shard hung up before accepting completion {index}"
                )
            }
            SimulationError::PipelineCommitOrder { expected, got } => {
                write!(
                    f,
                    "pipeline commit protocol violated: expected slot {expected}, got {got}"
                )
            }
            SimulationError::OutOfOrderArrival {
                job,
                time,
                watermark,
            } => {
                write!(
                    f,
                    "out-of-order online arrival: {job} submitted at {time} s, \
                     but the discrete watermark already passed {watermark} s"
                )
            }
            SimulationError::MissingCompletionRecord { index } => {
                write!(
                    f,
                    "pipelined merge missing an outcome for completion index {index}"
                )
            }
            SimulationError::PlacementSinkDisconnected { job } => {
                write!(
                    f,
                    "placement sink hung up before accepting the notice for {job}"
                )
            }
            SimulationError::ArrivalSeqOutOfBand { job, seq } => {
                write!(
                    f,
                    "sequenced online arrival for {job} carries sequence {seq}, \
                     at or above the arrival band limit"
                )
            }
            SimulationError::ArrivalSeqReused { job, seq } => {
                write!(
                    f,
                    "sequenced online arrival for {job} reuses arrival sequence {seq}"
                )
            }
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimulationError::Config(e) => Some(e),
            SimulationError::NonFiniteEventTime { .. }
            | SimulationError::UnassignedJob { .. }
            | SimulationError::DuplicateJobId { .. }
            | SimulationError::SolverStageDisconnected { .. }
            | SimulationError::AccountingStageDisconnected { .. }
            | SimulationError::PipelineCommitOrder { .. }
            | SimulationError::OutOfOrderArrival { .. }
            | SimulationError::MissingCompletionRecord { .. }
            | SimulationError::PlacementSinkDisconnected { .. }
            | SimulationError::ArrivalSeqOutOfBand { .. }
            | SimulationError::ArrivalSeqReused { .. } => None,
        }
    }
}

impl From<ConfigError> for SimulationError {
    fn from(e: ConfigError) -> Self {
        SimulationError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ConfigError::NoRegions.to_string().contains("region"));
        assert!(ConfigError::EmptyRegion {
            region: Region::Milan
        }
        .to_string()
        .contains("Milan"));
        assert!(ConfigError::NonPositiveSchedulingInterval { seconds: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(ConfigError::NegativeDelayTolerance { tolerance: -0.5 }
            .to_string()
            .contains("-0.5"));
        assert!(ConfigError::NonPositiveEmbodiedPerturbation { factor: 0.0 }
            .to_string()
            .contains('0'));
    }

    #[test]
    fn simulation_error_wraps_config_error_as_source() {
        use std::error::Error;
        let e = SimulationError::from(ConfigError::NoRegions);
        assert!(matches!(e, SimulationError::Config(_)));
        assert!(e.source().is_some());
        let nan = SimulationError::NonFiniteEventTime {
            time: f64::NAN,
            event: "arrival of job 3".into(),
        };
        assert!(nan.source().is_none());
        assert!(nan.to_string().contains("job 3"));
    }

    #[test]
    fn event_dispatch_errors_name_the_job() {
        use std::error::Error;
        let unassigned = SimulationError::UnassignedJob {
            job: JobId(17),
            event: "readiness of job 17".into(),
        };
        assert!(unassigned.to_string().contains("job-17"));
        assert!(unassigned.to_string().contains("no assigned region"));
        assert!(unassigned.source().is_none());
        let duplicate = SimulationError::DuplicateJobId { id: JobId(4) };
        assert!(duplicate.to_string().contains("job-4"));
        assert!(duplicate.to_string().contains("duplicate"));
    }

    #[test]
    fn pipeline_errors_name_the_slots() {
        use std::error::Error;
        let gone = SimulationError::SolverStageDisconnected { slot: 12 };
        assert!(gone.to_string().contains("slot 12"));
        assert!(gone.source().is_none());
        let order = SimulationError::PipelineCommitOrder {
            expected: 3,
            got: 5,
        };
        assert!(order.to_string().contains("slot 3"));
        assert!(order.to_string().contains('5'));
        assert!(order.source().is_none());
    }
}
