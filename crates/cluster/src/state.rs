//! Runtime state of each simulated region and the read-only view exposed to
//! schedulers.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use waterwise_telemetry::Region;

/// The read-only view of one region's state that a scheduler may consult
/// when making placement decisions (the `cap(n)` of Eq. 10 comes from here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionView {
    /// Which region this describes.
    pub region: Region,
    /// Total number of servers in the region.
    pub total_servers: usize,
    /// Servers currently running a job.
    pub busy_servers: usize,
    /// Jobs waiting in the region's queue (assigned but not yet started).
    pub queued_jobs: usize,
    /// Jobs currently in flight to this region (assigned, still transferring).
    pub inbound_jobs: usize,
}

impl RegionView {
    /// Remaining capacity usable by the scheduler this round: servers not
    /// busy and not already promised to queued or in-flight jobs.
    pub fn remaining_capacity(&self) -> usize {
        self.total_servers
            .saturating_sub(self.busy_servers + self.queued_jobs + self.inbound_jobs)
    }

    /// Current utilization of the region's servers (0–1).
    pub fn utilization(&self) -> f64 {
        if self.total_servers == 0 {
            0.0
        } else {
            self.busy_servers as f64 / self.total_servers as f64
        }
    }

    /// Total load committed to the region (running + queued + inbound) as a
    /// fraction of its servers — the signal the Least-Load baseline uses.
    pub fn committed_load(&self) -> f64 {
        if self.total_servers == 0 {
            f64::INFINITY
        } else {
            (self.busy_servers + self.queued_jobs + self.inbound_jobs) as f64
                / self.total_servers as f64
        }
    }
}

/// Mutable runtime state of one region inside the simulator.
#[derive(Debug, Clone)]
pub(crate) struct RegionRuntime {
    /// Which region this is.
    pub region: Region,
    /// Number of servers.
    pub servers: usize,
    /// Servers currently busy.
    pub busy: usize,
    /// Jobs currently in flight to this region.
    pub inbound: usize,
    /// FIFO queue of job indices waiting for a free server.
    pub queue: VecDeque<usize>,
    /// Accumulated busy server-seconds (for utilization accounting).
    pub busy_server_seconds: f64,
    /// Time of the last busy-count change (for utilization accounting).
    pub last_update: f64,
}

impl RegionRuntime {
    pub fn new(region: Region, servers: usize) -> Self {
        Self {
            region,
            servers,
            busy: 0,
            inbound: 0,
            queue: VecDeque::new(),
            busy_server_seconds: 0.0,
            last_update: 0.0,
        }
    }

    /// Advance the utilization integral to `now`.
    pub fn advance_to(&mut self, now: f64) {
        if now > self.last_update {
            self.busy_server_seconds += self.busy as f64 * (now - self.last_update);
            self.last_update = now;
        }
    }

    /// Snapshot visible to schedulers.
    pub fn view(&self) -> RegionView {
        RegionView {
            region: self.region,
            total_servers: self.servers,
            busy_servers: self.busy,
            queued_jobs: self.queue.len(),
            inbound_jobs: self.inbound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_capacity_accounts_for_commitments() {
        let v = RegionView {
            region: Region::Milan,
            total_servers: 10,
            busy_servers: 4,
            queued_jobs: 2,
            inbound_jobs: 1,
        };
        assert_eq!(v.remaining_capacity(), 3);
        assert!((v.utilization() - 0.4).abs() < 1e-12);
        assert!((v.committed_load() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn remaining_capacity_saturates_at_zero() {
        let v = RegionView {
            region: Region::Milan,
            total_servers: 2,
            busy_servers: 2,
            queued_jobs: 5,
            inbound_jobs: 0,
        };
        assert_eq!(v.remaining_capacity(), 0);
    }

    #[test]
    fn empty_region_has_infinite_committed_load() {
        let v = RegionView {
            region: Region::Milan,
            total_servers: 0,
            busy_servers: 0,
            queued_jobs: 0,
            inbound_jobs: 0,
        };
        assert!(v.committed_load().is_infinite());
        assert_eq!(v.utilization(), 0.0);
    }

    #[test]
    fn utilization_integral_advances() {
        let mut r = RegionRuntime::new(Region::Oregon, 4);
        r.busy = 2;
        r.advance_to(10.0);
        assert!((r.busy_server_seconds - 20.0).abs() < 1e-12);
        r.busy = 4;
        r.advance_to(15.0);
        assert!((r.busy_server_seconds - 40.0).abs() < 1e-12);
        // Advancing backwards is a no-op.
        r.advance_to(10.0);
        assert!((r.busy_server_seconds - 40.0).abs() < 1e-12);
    }
}
