//! Engine unit tests: the synchronous reference behavior, the pipelined
//! mode's byte-identity to it, and both modes' error paths.

use super::*;
use crate::scheduler::Assignment;
use waterwise_telemetry::SyntheticTelemetry;
use waterwise_traces::{TraceConfig, TraceGenerator};

/// A trivial scheduler that always sends every pending job to its home
/// region immediately (the paper's Baseline).
struct HomeScheduler;
impl Scheduler for HomeScheduler {
    fn name(&self) -> &str {
        "home"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        SchedulingDecision {
            assignments: ctx
                .pending
                .iter()
                .map(|p| Assignment {
                    job: p.spec.id,
                    region: p.spec.home_region,
                })
                .collect(),
        }
    }
}

/// A scheduler that sends everything to one region, to exercise queueing.
struct PinScheduler(Region);
impl Scheduler for PinScheduler {
    fn name(&self) -> &str {
        "pin"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        SchedulingDecision {
            assignments: ctx
                .pending
                .iter()
                .map(|p| Assignment {
                    job: p.spec.id,
                    region: self.0,
                })
                .collect(),
        }
    }
}

fn small_trace(seed: u64) -> Vec<JobSpec> {
    TraceGenerator::new(TraceConfig::borg(0.05, seed)).generate()
}

fn hand_built_job(submit_time: f64, execution_time: f64) -> JobSpec {
    use waterwise_sustain::KilowattHours;
    use waterwise_traces::Benchmark;
    JobSpec {
        id: JobId(0),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit_time),
        home_region: Region::Oregon,
        actual_execution_time: Seconds::new(execution_time),
        actual_energy: KilowattHours::new(0.01),
        estimated_execution_time: Seconds::new(execution_time),
        estimated_energy: KilowattHours::new(0.01),
        package_bytes: 1,
    }
}

fn simulator(servers: usize, tolerance: f64) -> Simulator<SyntheticTelemetry> {
    Simulator::new(
        SimulationConfig::paper_default(servers, tolerance),
        SyntheticTelemetry::with_seed(1),
    )
    .unwrap()
}

fn pipelined_simulator(
    servers: usize,
    tolerance: f64,
    workers: usize,
) -> Simulator<SyntheticTelemetry> {
    Simulator::new(
        SimulationConfig::paper_default(servers, tolerance)
            .with_engine_mode(EngineMode::Pipelined { workers }),
        SyntheticTelemetry::with_seed(1),
    )
    .unwrap()
}

#[test]
fn every_job_completes_exactly_once() {
    let jobs = small_trace(3);
    let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
    assert_eq!(report.summary.total_jobs, jobs.len());
    assert_eq!(report.outcomes.len(), jobs.len());
    let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.job.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), jobs.len());
}

#[test]
fn home_scheduler_never_migrates_and_never_violates_generously() {
    let jobs = small_trace(5);
    let report = simulator(200, 1.0).run(&jobs, &mut HomeScheduler).unwrap();
    assert_eq!(report.summary.migration_fraction, 0.0);
    // With ample capacity and no migration, the only delay is the
    // scheduling-round granularity, so violations should be rare.
    assert!(report.summary.violation_fraction < 0.2);
    assert!(report.summary.mean_service_stretch >= 1.0);
}

#[test]
fn service_time_is_at_least_execution_time() {
    let jobs = small_trace(7);
    let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
    for o in &report.outcomes {
        assert!(o.service_time().value() >= o.execution_time.value() - 1e-6);
        assert!(o.completion_time.value() > o.start_time.value());
        assert!(o.start_time.value() >= o.submit_time.value());
    }
}

#[test]
fn footprints_are_positive() {
    let jobs = small_trace(9);
    let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
    assert!(report.summary.total_carbon.value() > 0.0);
    assert!(report.summary.total_water.value() > 0.0);
    for o in &report.outcomes {
        assert!(o.footprint.total_carbon().value() > 0.0);
        assert!(o.footprint.total_water().value() > 0.0);
    }
}

#[test]
fn pinning_to_a_tiny_region_queues_jobs_and_stretches_service_time() {
    let jobs = small_trace(11);
    // Only 2 servers per region: pinning everything to Zurich must queue.
    let report = simulator(2, 0.25)
        .run(&jobs, &mut PinScheduler(Region::Zurich))
        .unwrap();
    assert!(report.summary.migration_fraction > 0.5);
    assert!(report.summary.mean_service_stretch > 1.0);
    assert_eq!(
        report.summary.jobs_per_region[Region::Zurich.index()],
        jobs.len()
    );
    // Capacity is never exceeded: utilization cannot exceed 1.
    assert!(report.summary.mean_utilization <= 1.0 + 1e-9);
}

#[test]
fn migrated_jobs_carry_transfer_overhead() {
    let jobs = small_trace(13);
    let report = simulator(20, 0.5)
        .run(&jobs, &mut PinScheduler(Region::Mumbai))
        .unwrap();
    let migrated: Vec<_> = report.outcomes.iter().filter(|o| o.migrated()).collect();
    assert!(!migrated.is_empty());
    for o in migrated {
        assert!(o.transfer_time.value() > 0.0);
        assert!(o.transfer_footprint.total_carbon().value() > 0.0);
        // Transfer overhead must be small relative to execution (Table 3).
        assert!(
            o.transfer_footprint.total_carbon().value() < 0.1 * o.footprint.total_carbon().value()
        );
    }
}

#[test]
fn overhead_samples_are_recorded() {
    let jobs = small_trace(15);
    let report = simulator(50, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
    assert!(!report.overhead.is_empty());
    assert!(report.summary.mean_decision_time.value() >= 0.0);
    assert!(report.summary.decision_overhead_fraction < 0.01);
    // The synchronous engine blocks for the full solve: the stall equals
    // the decision wall clock on every sample.
    for sample in &report.overhead {
        assert_eq!(sample.commit_wait, sample.wall_clock);
    }
    assert!(report.summary.pipeline.is_none());
}

#[test]
fn empty_trace_is_handled() {
    let report = simulator(10, 0.5).run(&[], &mut HomeScheduler).unwrap();
    assert_eq!(report.summary.total_jobs, 0);
    assert_eq!(report.outcomes.len(), 0);
}

#[test]
fn nan_submit_time_is_rejected_at_insertion() {
    let jobs = vec![hand_built_job(f64::NAN, 100.0)];
    let err = simulator(10, 0.5)
        .run(&jobs, &mut HomeScheduler)
        .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::NonFiniteEventTime { time, ref event }
            if time.is_nan() && event.contains("arrival")
    ));
}

#[test]
fn non_finite_execution_time_is_rejected_at_insertion() {
    for bad in [f64::NAN, f64::INFINITY] {
        let jobs = vec![hand_built_job(0.0, bad)];
        let err = simulator(10, 0.5)
            .run(&jobs, &mut HomeScheduler)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimulationError::NonFiniteEventTime { ref event, .. }
                    if event.contains("completion")
            ),
            "execution time {bad} should be rejected, got {err:?}"
        );
    }
}

#[test]
fn duplicate_job_ids_fail_the_campaign_with_a_typed_error() {
    // Two jobs sharing an id would leave one twin unschedulable forever
    // (assignments are keyed by id); the engine must reject the trace
    // instead of spinning or panicking.
    let mut a = hand_built_job(0.0, 50.0);
    let mut b = hand_built_job(10.0, 60.0);
    a.id = JobId(7);
    b.id = JobId(7);
    let err = simulator(10, 0.5)
        .run(&[a, b], &mut HomeScheduler)
        .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::DuplicateJobId { id: JobId(7) }
    ));
}

#[test]
fn invalid_config_surfaces_as_typed_error() {
    let err = Simulator::new(
        SimulationConfig::paper_default(0, 0.5),
        SyntheticTelemetry::with_seed(1),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::Config(crate::error::ConfigError::EmptyRegion { .. })
    ));
}

#[test]
fn deferring_scheduler_eventually_everything_still_completes() {
    /// Defers everything for the first few rounds, then behaves like home.
    struct LazyScheduler {
        rounds: u32,
    }
    impl Scheduler for LazyScheduler {
        fn name(&self) -> &str {
            "lazy"
        }
        fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
            self.rounds += 1;
            if self.rounds <= 3 {
                SchedulingDecision::defer_all()
            } else {
                SchedulingDecision {
                    assignments: ctx
                        .pending
                        .iter()
                        .map(|p| Assignment {
                            job: p.spec.id,
                            region: p.spec.home_region,
                        })
                        .collect(),
                }
            }
        }
    }
    let jobs = small_trace(17);
    let report = simulator(50, 0.5)
        .run(&jobs, &mut LazyScheduler { rounds: 0 })
        .unwrap();
    assert_eq!(report.summary.total_jobs, jobs.len());
    // Deferral shows up as extra waiting time.
    assert!(report.summary.mean_service_stretch >= 1.0);
}

// ---------------------------------------------------------------------------
// Pipelined mode
// ---------------------------------------------------------------------------

/// Compare two reports for logical identity: schedules, outcomes, and
/// everything deterministic about the overhead samples (wall-clock timings
/// and pipeline occupancy are measurements and may differ).
#[track_caller]
fn assert_reports_identical(sync: &SimulationReport, pipelined: &SimulationReport) {
    assert_eq!(sync.outcomes, pipelined.outcomes);
    assert_eq!(sync.makespan, pipelined.makespan);
    assert_eq!(
        format!("{:?}", sync.summary.without_wall_clock()),
        format!("{:?}", pipelined.summary.without_wall_clock()),
    );
    assert_eq!(sync.overhead.len(), pipelined.overhead.len());
    for (a, b) in sync.overhead.iter().zip(&pipelined.overhead) {
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.solver, b.solver);
    }
}

#[test]
fn pipelined_engine_matches_sync_byte_for_byte() {
    for seed in [3, 11, 19] {
        let jobs = small_trace(seed);
        let sync = simulator(20, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
        for workers in [1, 2, 4] {
            let pipelined = pipelined_simulator(20, 0.5, workers)
                .run(&jobs, &mut HomeScheduler)
                .unwrap();
            assert_reports_identical(&sync, &pipelined);
            let stats = pipelined.summary.pipeline.expect("pipelined stats");
            assert_eq!(stats.workers, workers);
            assert_eq!(stats.accounting_shards, workers - 1);
            assert_eq!(stats.solve_requests, pipelined.overhead.len());
            if workers > 1 {
                assert_eq!(stats.accounted_jobs, jobs.len());
            } else {
                assert_eq!(stats.accounted_jobs, 0);
            }
        }
    }
}

#[test]
fn pipelined_engine_matches_sync_under_queueing_pressure() {
    // A starved region forces long queues, deferrals, and dense event
    // windows — the hardest case for the commit protocol.
    let jobs = small_trace(23);
    let sync = simulator(2, 0.25)
        .run(&jobs, &mut PinScheduler(Region::Zurich))
        .unwrap();
    let pipelined = pipelined_simulator(2, 0.25, 3)
        .run(&jobs, &mut PinScheduler(Region::Zurich))
        .unwrap();
    assert_reports_identical(&sync, &pipelined);
}

#[test]
fn pipelined_engine_overlaps_arrivals_with_solves() {
    let jobs = small_trace(29);
    let report = pipelined_simulator(50, 0.5, 2)
        .run(&jobs, &mut HomeScheduler)
        .unwrap();
    let stats = report.summary.pipeline.unwrap();
    // The Borg-like trace delivers several arrivals per scheduling window;
    // the event stage must ingest the arrival *prefix* of each window (it
    // stops at the first Ready/Complete event, whose ordering against the
    // decision's effects matters) instead of stalling behind the solve.
    assert!(
        stats.overlapped_arrivals > jobs.len() / 20,
        "only {} of {} arrivals overlapped a solve",
        stats.overlapped_arrivals,
        jobs.len()
    );
    // Occupancy counters are deterministic: a re-run ingests the same set.
    let again = pipelined_simulator(50, 0.5, 2)
        .run(&jobs, &mut HomeScheduler)
        .unwrap();
    assert_eq!(
        again.summary.pipeline.unwrap().overlapped_arrivals,
        stats.overlapped_arrivals
    );
}

#[test]
fn zero_worker_pipeline_clamps_to_sync() {
    // Regression guard in the spirit of the `with_horizon(Some(0))` clamp:
    // a zero-worker pipeline has no solver stage to run on and must degrade
    // to the synchronous engine instead of deadlocking.
    let jobs = small_trace(31);
    let report = pipelined_simulator(30, 0.5, 0)
        .run(&jobs, &mut HomeScheduler)
        .unwrap();
    let sync = simulator(30, 0.5).run(&jobs, &mut HomeScheduler).unwrap();
    assert_reports_identical(&sync, &report);
    // Proof it actually ran the synchronous driver: no pipeline stats, and
    // every stall equals its decision time.
    assert!(report.summary.pipeline.is_none());
    for sample in &report.overhead {
        assert_eq!(sample.commit_wait, sample.wall_clock);
    }
}

#[test]
fn pipelined_duplicate_job_ids_fail_with_the_same_typed_error() {
    let mut a = hand_built_job(0.0, 50.0);
    let mut b = hand_built_job(10.0, 60.0);
    a.id = JobId(7);
    b.id = JobId(7);
    let err = pipelined_simulator(10, 0.5, 2)
        .run(&[a, b], &mut HomeScheduler)
        .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::DuplicateJobId { id: JobId(7) }
    ));
}

#[test]
fn pipelined_non_finite_times_fail_with_the_same_typed_error() {
    let err = pipelined_simulator(10, 0.5, 2)
        .run(&[hand_built_job(f64::NAN, 100.0)], &mut HomeScheduler)
        .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::NonFiniteEventTime { time, .. } if time.is_nan()
    ));
    let err = pipelined_simulator(10, 0.5, 2)
        .run(&[hand_built_job(0.0, f64::INFINITY)], &mut HomeScheduler)
        .unwrap_err();
    assert!(matches!(
        err,
        SimulationError::NonFiniteEventTime { ref event, .. } if event.contains("completion")
    ));
}

#[test]
fn pipelined_empty_trace_is_handled() {
    let report = pipelined_simulator(10, 0.5, 3)
        .run(&[], &mut HomeScheduler)
        .unwrap();
    assert_eq!(report.summary.total_jobs, 0);
    assert_eq!(report.summary.pipeline.unwrap().solve_requests, 0);
}

#[test]
fn a_decision_can_never_reach_jobs_that_arrived_after_its_snapshot() {
    /// An adversarial scheduler that knows every job id in the trace and
    /// claims all of them every round — including ids the engine has not
    /// offered it yet. Both engine modes must ignore the premature
    /// assignments identically (the pipelined event stage has *already*
    /// ingested some of those arrivals when the decision commits, which is
    /// exactly the hole the snapshot-prefix matching closes).
    struct OmniscientScheduler {
        all_ids: Vec<JobId>,
    }
    impl Scheduler for OmniscientScheduler {
        fn name(&self) -> &str {
            "omniscient"
        }
        fn schedule(&mut self, _ctx: &SchedulingContext<'_>) -> SchedulingDecision {
            SchedulingDecision {
                assignments: self
                    .all_ids
                    .iter()
                    .map(|&job| Assignment {
                        job,
                        region: Region::Zurich,
                    })
                    .collect(),
            }
        }
    }
    let jobs = small_trace(37);
    let all_ids: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
    let sync = simulator(30, 0.5)
        .run(
            &jobs,
            &mut OmniscientScheduler {
                all_ids: all_ids.clone(),
            },
        )
        .unwrap();
    let pipelined = pipelined_simulator(30, 0.5, 2)
        .run(&jobs, &mut OmniscientScheduler { all_ids })
        .unwrap();
    assert_reports_identical(&sync, &pipelined);
    assert_eq!(sync.summary.total_jobs, jobs.len());
}

#[test]
fn pipelined_commit_wait_never_exceeds_reported_stall_totals() {
    let jobs = small_trace(41);
    let report = pipelined_simulator(40, 0.5, 2)
        .run(&jobs, &mut HomeScheduler)
        .unwrap();
    let stats = report.summary.pipeline.unwrap();
    let summed: f64 = report.overhead.iter().map(|s| s.commit_wait.value()).sum();
    assert!((stats.commit_wait.value() - summed).abs() < 1e-9);
    let busy: f64 = report.overhead.iter().map(|s| s.wall_clock.value()).sum();
    assert!((stats.solver_busy.value() - busy).abs() < 1e-9);
    assert!(stats.stall_fraction() >= 0.0 && stats.stall_fraction() <= 1.0);
}

// ---------------------------------------------------------------------------
// Online driver: live injection must be decision-identical to offline replay.

mod online_driver {
    use super::*;
    use crate::engine::clock::ClockMode;
    use crate::engine::online::OnlineReport;
    use crate::engine::online::PlacementNotice;

    /// Feed `jobs` through the online driver in submission order (the whole
    /// stream is buffered up front, which a bounded channel permits because
    /// the driver drains while running) and collect the report plus every
    /// placement notice.
    fn run_online_with(
        sim: &Simulator<SyntheticTelemetry>,
        scheduler: &mut dyn Scheduler,
        jobs: &[JobSpec],
        clock: ClockMode,
    ) -> (OnlineReport, Vec<PlacementNotice>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(jobs.len().max(1));
        let (notice_tx, notice_rx) = std::sync::mpsc::sync_channel(jobs.len() + 4);
        for job in jobs {
            tx.send(job.clone()).unwrap();
        }
        drop(tx);
        let report = sim.run_online(scheduler, rx, notice_tx, clock).unwrap();
        let notices: Vec<_> = notice_rx.iter().collect();
        (report, notices)
    }

    #[test]
    fn discrete_online_run_matches_offline_replay_sync_engine() {
        let jobs = small_trace(11);
        let sim = simulator(50, 0.5);
        let offline = sim.run(&jobs, &mut HomeScheduler).unwrap();
        let (online, notices) =
            run_online_with(&sim, &mut HomeScheduler, &jobs, ClockMode::Discrete);
        assert_eq!(online.trace, jobs, "discrete stamps must keep the trace");
        assert_eq!(online.report.outcomes, offline.outcomes);
        assert_eq!(online.report.makespan, offline.makespan);
        assert_eq!(
            online.report.summary.without_wall_clock(),
            offline.summary.without_wall_clock()
        );
        // Every job is placed exactly once and notified with its region.
        assert_eq!(notices.len(), jobs.len());
        let mut ids: Vec<u64> = notices.iter().map(|n| n.job.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
        for notice in &notices {
            assert_eq!(
                notice.projected_start.value(),
                notice.decided_at.value() + notice.transfer_time.value()
            );
        }
    }

    #[test]
    fn discrete_online_run_matches_offline_replay_pipelined_engine() {
        let jobs = small_trace(13);
        let sync_sim = simulator(40, 0.5);
        let offline = sync_sim.run(&jobs, &mut HomeScheduler).unwrap();
        for workers in [1, 3] {
            let sim = pipelined_simulator(40, 0.5, workers);
            let (online, notices) =
                run_online_with(&sim, &mut HomeScheduler, &jobs, ClockMode::Discrete);
            assert_eq!(online.report.outcomes, offline.outcomes);
            assert_eq!(online.report.makespan, offline.makespan);
            // The scrub drops pipeline stats, so scrubbed summaries match
            // the sync offline replay even for staged online runs.
            assert_eq!(
                online.report.summary.without_wall_clock(),
                offline.summary.without_wall_clock()
            );
            assert_eq!(notices.len(), jobs.len());
            let stats = online
                .report
                .summary
                .pipeline
                .expect("staged online run reports pipeline stats");
            assert!(stats.solve_requests > 0);
            // The online pipeline is always one solver stage + inline
            // accounting, whatever worker count the mode named.
            assert_eq!(stats.workers, 1);
            assert_eq!(stats.accounting_shards, 0);
        }
    }

    #[test]
    fn real_time_online_recorded_trace_replays_byte_identically() {
        let jobs = small_trace(17);
        let sim = simulator(50, 0.5);
        // A huge scale compresses the whole campaign into microseconds of
        // wall time; the stamps land wherever the wall clock put them.
        let (online, notices) = run_online_with(
            &sim,
            &mut HomeScheduler,
            &jobs,
            ClockMode::RealTime { scale: 5e7 },
        );
        assert_eq!(online.trace.len(), jobs.len());
        // Stamps are monotone non-decreasing in receipt order.
        for pair in online.trace.windows(2) {
            assert!(pair[0].submit_time.value() <= pair[1].submit_time.value());
        }
        let replay = sim.run(&online.trace, &mut HomeScheduler).unwrap();
        assert_eq!(online.report.outcomes, replay.outcomes);
        assert_eq!(online.report.makespan, replay.makespan);
        assert_eq!(notices.len(), jobs.len());
    }

    #[test]
    fn discrete_rejects_out_of_order_and_duplicate_injections() {
        let sim = simulator(10, 0.5);
        let (tx, rx) = std::sync::mpsc::sync_channel(4);
        let (notice_tx, _notice_rx) = std::sync::mpsc::sync_channel(4);
        let mut early = hand_built_job(100.0, 60.0);
        early.id = JobId(1);
        let mut late = hand_built_job(50.0, 60.0);
        late.id = JobId(2);
        tx.send(early).unwrap();
        tx.send(late).unwrap();
        drop(tx);
        let err = sim
            .run_online(&mut HomeScheduler, rx, notice_tx, ClockMode::Discrete)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::OutOfOrderArrival { job: JobId(2), .. }
        ));

        let (tx, rx) = std::sync::mpsc::sync_channel(4);
        let (notice_tx, _notice_rx) = std::sync::mpsc::sync_channel(4);
        tx.send(hand_built_job(10.0, 60.0)).unwrap();
        tx.send(hand_built_job(20.0, 60.0)).unwrap(); // same JobId(0)
        drop(tx);
        let err = sim
            .run_online(&mut HomeScheduler, rx, notice_tx, ClockMode::Discrete)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::DuplicateJobId { id: JobId(0) }
        ));
    }

    #[test]
    fn dropped_notice_receiver_is_a_typed_error() {
        let sim = simulator(10, 0.5);
        let (tx, rx) = std::sync::mpsc::sync_channel(4);
        let (notice_tx, notice_rx) = std::sync::mpsc::sync_channel(4);
        drop(notice_rx);
        tx.send(hand_built_job(10.0, 60.0)).unwrap();
        drop(tx);
        let err = sim
            .run_online(&mut HomeScheduler, rx, notice_tx, ClockMode::Discrete)
            .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::PlacementSinkDisconnected { job: JobId(0) }
        ));
    }

    #[test]
    fn empty_online_run_produces_an_empty_report() {
        let sim = simulator(10, 0.5);
        let (tx, rx) = std::sync::mpsc::sync_channel::<JobSpec>(1);
        let (notice_tx, _notice_rx) = std::sync::mpsc::sync_channel(1);
        drop(tx);
        let online = sim
            .run_online(&mut HomeScheduler, rx, notice_tx, ClockMode::Discrete)
            .unwrap();
        assert!(online.report.outcomes.is_empty());
        assert!(online.trace.is_empty());
        assert_eq!(online.report.makespan.value(), 0.0);
    }
}
