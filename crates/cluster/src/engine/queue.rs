//! The discrete-event queue shared by the synchronous and pipelined engine
//! drivers.
//!
//! Events are ordered by `(time, sequence)` — a min-heap on the timestamp
//! with the insertion sequence as the tie-breaker, so events at equal
//! simulated times dispatch in the order they were scheduled. Both engine
//! drivers must produce *identical* `(time, sequence)` keys for every event
//! or their replay order (and therefore the whole campaign) could diverge on
//! exact timestamp ties. Because the pipelined driver pushes a round's
//! decision events *after* it has already ingested later arrivals (the solve
//! overlaps arrival processing), it cannot rely on push order alone; instead
//! both drivers [`EventQueue::reserve`] a sequence block at the round
//! snapshot and stamp the decision's events with
//! [`EventQueue::push_with_seq`], which keeps the keys byte-identical across
//! engine modes regardless of when the pushes physically happen.

use crate::error::SimulationError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event. The payload is the index of the job in the campaign's
/// trace (not its [`waterwise_traces::JobId`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Event {
    /// A job from the trace arrives at its home region's decision controller.
    Arrival(usize),
    /// A periodic scheduling round.
    Round,
    /// A job's package transfer has completed; it is ready to run in
    /// its assigned region.
    Ready(usize),
    /// A job finished executing.
    Complete(usize),
}

impl Event {
    /// Human-readable description used in error reports.
    pub(crate) fn describe(self) -> String {
        match self {
            Event::Arrival(i) => format!("arrival of job {i}"),
            Event::Round => "scheduling round".to_string(),
            Event::Ready(i) => format!("readiness of job {i}"),
            Event::Complete(i) => format!("completion of job {i}"),
        }
    }
}

/// An event stamped with its dispatch key `(time, seq)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering to make BinaryHeap a min-heap on (time, seq).
        // `total_cmp` keeps this a true total order; [`EventQueue::push`]
        // guarantees no non-finite time ever enters the heap.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: a min-heap on (time, insertion order) that rejects
/// non-finite timestamps at insertion, so the heap invariant can never be
/// silently corrupted by a NaN comparing as "equal" to everything.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
    /// Queued events that are *not* periodic rounds, maintained at
    /// push/pop so the engine's stop condition
    /// ([`EventQueue::only_rounds_left`]) is O(1) instead of a heap scan —
    /// the online driver evaluates it once per loop iteration.
    non_round_events: usize,
}

impl EventQueue {
    /// Enqueue `event` at `time` with the next sequence number, rejecting
    /// NaN and infinite timestamps.
    pub(crate) fn push(&mut self, time: f64, event: Event) -> Result<(), SimulationError> {
        let seq = self.reserve(1);
        self.push_with_seq(time, seq, event)
    }

    /// Reserve a block of `n` consecutive sequence numbers and return the
    /// first. Paired with [`EventQueue::push_with_seq`], this lets a round
    /// stamp its decision events with the keys they would have received in a
    /// strictly synchronous replay even when the physical pushes happen
    /// after later events were already ingested (the pipelined driver's
    /// arrival overlap).
    pub(crate) fn reserve(&mut self, n: u64) -> u64 {
        let first = self.seq;
        self.seq += n;
        first
    }

    /// Enqueue `event` at `time` with an explicitly reserved sequence
    /// number (see [`EventQueue::reserve`]).
    pub(crate) fn push_with_seq(
        &mut self,
        time: f64,
        seq: u64,
        event: Event,
    ) -> Result<(), SimulationError> {
        if !time.is_finite() {
            return Err(SimulationError::NonFiniteEventTime {
                time,
                event: event.describe(),
            });
        }
        if !matches!(event, Event::Round) {
            self.non_round_events += 1;
        }
        self.heap.push(QueuedEvent { time, seq, event });
        Ok(())
    }

    /// Remove and return the earliest event.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let popped = self.heap.pop();
        if let Some(event) = &popped {
            if !matches!(event.event, Event::Round) {
                self.non_round_events -= 1;
            }
        }
        popped
    }

    /// The earliest queued event, without removing it.
    pub(crate) fn peek(&self) -> Option<&QueuedEvent> {
        self.heap.peek()
    }

    /// Whether only periodic `Round` events remain queued. O(1): evaluated
    /// after every event in both the offline and online drivers' stop
    /// conditions.
    pub(crate) fn only_rounds_left(&self) -> bool {
        self.non_round_events == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::default();
        q.push(2.0, Event::Round).unwrap();
        q.push(1.0, Event::Arrival(0)).unwrap();
        q.push(1.0, Event::Arrival(1)).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(
            order,
            vec![Event::Arrival(0), Event::Arrival(1), Event::Round]
        );
    }

    #[test]
    fn reserved_seqs_outrank_later_pushes_on_time_ties() {
        // A round reserves a block, later events are pushed, and only then
        // the decision events land with the reserved (smaller) sequence
        // numbers: on an exact time tie the decision events must win.
        let mut q = EventQueue::default();
        let s0 = q.reserve(2);
        q.push(5.0, Event::Arrival(9)).unwrap();
        q.push_with_seq(5.0, s0, Event::Ready(1)).unwrap();
        q.push_with_seq(5.0, s0 + 1, Event::Round).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(
            order,
            vec![Event::Ready(1), Event::Round, Event::Arrival(9)]
        );
    }

    #[test]
    fn non_finite_times_are_rejected() {
        let mut q = EventQueue::default();
        assert!(q.push(f64::NAN, Event::Round).is_err());
        assert!(q.push(f64::INFINITY, Event::Arrival(0)).is_err());
        assert!(q.pop().is_none());
    }

    #[test]
    fn only_rounds_left_detects_non_round_events() {
        let mut q = EventQueue::default();
        assert!(q.only_rounds_left());
        q.push(1.0, Event::Round).unwrap();
        assert!(q.only_rounds_left());
        q.push(2.0, Event::Complete(3)).unwrap();
        assert!(!q.only_rounds_left());
        // The counter tracks pops too: draining the completion (after the
        // earlier round) restores the rounds-only state.
        assert!(matches!(q.pop().unwrap().event, Event::Round));
        assert!(!q.only_rounds_left());
        assert!(matches!(q.pop().unwrap().event, Event::Complete(3)));
        assert!(q.only_rounds_left());
        // Rejected (non-finite) pushes must not leak into the counter.
        assert!(q.push(f64::NAN, Event::Arrival(1)).is_err());
        assert!(q.only_rounds_left());
    }
}
