//! The clock abstraction of the online engine driver.
//!
//! An offline replay needs no clock: event timestamps come from the trace
//! and the engine dispatches them as fast as it can. The online driver
//! ([`crate::Simulator::run_online`]) serves a *live* arrival source, so it
//! must decide two things the trace used to decide for it: what submit time
//! an incoming job is stamped with, and when a queued event is safe to
//! dispatch (no earlier arrival can still show up). [`ClockMode`] picks the
//! time authority for both.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The time authority of an online run.
///
/// ```
/// use waterwise_cluster::ClockMode;
///
/// // Replay pacing: injected submit times are authoritative.
/// assert_eq!(ClockMode::default(), ClockMode::Discrete);
/// // Free-running: one wall-clock second advances 60 simulated seconds. A
/// // degenerate scale normalizes to 1.0 instead of freezing the clock.
/// assert_eq!(
///     ClockMode::RealTime { scale: 0.0 }.normalized(),
///     ClockMode::RealTime { scale: 1.0 },
/// );
/// assert_eq!(ClockMode::RealTime { scale: 60.0 }.label(), "real-time(60x)");
/// assert_eq!(ClockMode::Discrete.label(), "discrete");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ClockMode {
    /// The arrival source is the time authority: each injected job keeps
    /// the `submit_time` its request carried, and a queued event dispatches
    /// only once a *later* injection (or the closed source) proves that no
    /// earlier arrival can come. Deterministic — the same request stream
    /// always produces the same schedule — which makes it the mode for
    /// trace replay, tests, and the online==offline identity proofs. The
    /// cost: placements for pending work flush only when the stream moves
    /// past them, so a quiet source defers decisions (see
    /// `docs/ONLINE_SERVICE.md`).
    #[default]
    Discrete,
    /// The wall clock is the time authority, scaled by `scale` simulated
    /// seconds per wall-clock second (1.0 = real time). Injected jobs are
    /// stamped with the current simulated time and queued events dispatch
    /// as the clock passes them, so placements happen promptly — the mode
    /// for live serving. The *recorded* trace still replays offline to the
    /// byte-identical schedule, but the stamps themselves depend on request
    /// timing, so two live runs of the same client are not identical.
    RealTime {
        /// Simulated seconds per wall-clock second (must be finite and
        /// positive; anything else normalizes to 1.0).
        scale: f64,
    },
}

impl ClockMode {
    /// Resolve degenerate configurations: a non-finite or non-positive
    /// `RealTime` scale would freeze or reverse the clock, so it clamps to
    /// 1.0 (mirroring how a zero-worker pipeline clamps to the synchronous
    /// engine). The online driver normalizes before running.
    pub fn normalized(self) -> Self {
        match self {
            ClockMode::RealTime { scale } if !scale.is_finite() || scale <= 0.0 => {
                ClockMode::RealTime { scale: 1.0 }
            }
            other => other,
        }
    }

    /// Whether this mode (after normalization) runs against the wall clock.
    pub fn is_real_time(self) -> bool {
        matches!(self, ClockMode::RealTime { .. })
    }

    /// Stable label used in experiment output.
    pub fn label(self) -> String {
        match self.normalized() {
            ClockMode::Discrete => "discrete".to_string(),
            ClockMode::RealTime { scale } => format!("real-time({scale}x)"),
        }
    }
}

/// A started free-running clock: maps wall-clock elapsed time to simulated
/// seconds. Only the online driver reads it; simulated state never does,
/// which is what keeps the recorded trace replayable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimClock {
    origin: Instant,
    scale: f64,
}

impl SimClock {
    /// Start the clock now, at simulated time zero.
    pub(crate) fn start(scale: f64) -> Self {
        Self {
            // lint:allow(DET002: the RealTime clock origin IS the wall clock; Discrete mode — the deterministic path — never constructs a SimClock)
            origin: Instant::now(),
            scale,
        }
    }

    /// Current simulated time.
    pub(crate) fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * self.scale
    }

    /// Wall-clock duration until the clock reaches simulated time `sim`
    /// (zero if already passed).
    pub(crate) fn wall_until(&self, sim: f64) -> Duration {
        let remaining = (sim - self.now()) / self.scale;
        if remaining <= 0.0 || !remaining.is_finite() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(remaining.min(3600.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_degenerate_scales() {
        assert_eq!(ClockMode::Discrete.normalized(), ClockMode::Discrete);
        for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                ClockMode::RealTime { scale: bad }.normalized(),
                ClockMode::RealTime { scale: 1.0 },
            );
        }
        assert_eq!(
            ClockMode::RealTime { scale: 30.0 }.normalized(),
            ClockMode::RealTime { scale: 30.0 },
        );
        assert!(ClockMode::RealTime { scale: 1.0 }.is_real_time());
        assert!(!ClockMode::Discrete.is_real_time());
    }

    #[test]
    fn sim_clock_advances_and_scales() {
        let clock = SimClock::start(1000.0);
        std::thread::sleep(Duration::from_millis(5));
        let now = clock.now();
        // 5 ms of wall time at 1000x is at least 5 simulated seconds.
        assert!(now >= 5.0, "clock must scale wall time, got {now}");
        assert_eq!(clock.wall_until(now - 1.0), Duration::ZERO);
        assert!(clock.wall_until(now + 1000.0) > Duration::ZERO);
    }
}
