//! The pipelined engine driver: event loop, solver stage, and accounting
//! shards connected by bounded channels.
//!
//! # Stage layout
//!
//! ```text
//!  event stage (caller thread)          solver stage (1 thread)
//!  ┌──────────────────────────┐  snapshots   ┌─────────────────────────┐
//!  │ pop events, keep region/ │ ───────────► │ owns the scheduler,     │
//!  │ job state, ingest        │  bounded(1)  │ solves one slot at a    │
//!  │ arrivals ahead of the    │ ◄─────────── │ time, returns decision  │
//!  │ commit barrier, commit   │  decisions   │ + per-round solver work │
//!  │ decisions in slot order  │              └─────────────────────────┘
//!  └───────────┬──────────────┘
//!              │ completion records (bounded, sharded by completion index)
//!              ▼
//!  accounting shards (`workers − 1` threads): pure footprint accounting
//!  per completed job, merged back in completion order at the end.
//! ```
//!
//! # Commit protocol and determinism
//!
//! The solver stage receives round snapshots over a bounded channel and its
//! decisions are committed strictly in slot order — the event stage tags
//! every request with a slot counter and refuses an out-of-order response
//! ([`SimulationError::PipelineCommitOrder`]). While slot `t`'s solve is in
//! flight, the event stage keeps ingesting *arrival* events ahead of the
//! commit barrier (the next round's position in the event order): arrivals
//! only append to the pending pool, which the slot-`t` decision cannot touch
//! (commits match assignments against the snapshot prefix only), so the
//! overlap commutes with the commit. Every other event type waits for the
//! commit, because decision effects (`Ready` events, possibly at the very
//! same timestamp for home-region placements) may interleave anywhere after
//! the round.
//!
//! Two mechanisms make the replay byte-identical to the synchronous engine:
//!
//! 1. **Reserved sequence blocks** — the round reserves its decision
//!    events' queue keys at snapshot time
//!    ([`EventQueue::reserve`](super::queue::EventQueue::reserve)), so the
//!    late commit stamps exactly the keys an inline commit would have.
//! 2. **Completion-indexed accounting** — footprint accounting is pure, so
//!    shards may compute outcomes in any order; results are merged back by
//!    completion index, reproducing the synchronous engine's outcome order
//!    (and, on failure, the first error in completion order).
//!
//! The byte-identity guarantee is property-tested in
//! `tests/pipeline_equivalence.rs` against adversarial traces (exact
//! timestamp ties, duplicate-free id shuffles, capacity starvation) and
//! asserted again at campaign level in the workspace integration tests.

use super::queue::{Event, QueuedEvent};
use super::{CompletionRecord, SimState, SimulationReport, Simulator};
use crate::error::SimulationError;
use crate::metrics::{CampaignSummary, JobOutcome, OverheadSample, PipelineStats};
use crate::scheduler::{
    PendingJob, Scheduler, SchedulingContext, SchedulingDecision, SolverActivity,
};
use crate::state::RegionView;
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;
use waterwise_sustain::Seconds;
use waterwise_telemetry::ConditionsProvider;
use waterwise_traces::JobSpec;

/// In-flight solve bound. One slot is the deepest the pipeline can run
/// without speculating on uncommitted decisions (slot `t+1`'s snapshot
/// depends on slot `t`'s commit), so a deeper queue could never fill.
const SOLVE_QUEUE_DEPTH: usize = 1;

/// Completion records buffered per accounting shard before the event stage
/// backpressures. Large enough that a burst of completions inside one
/// scheduling window never blocks the event loop in practice.
const ACCOUNTING_QUEUE_DEPTH: usize = 1024;

/// A round snapshot shipped to the solver stage. Shared with the online
/// driver, which runs the same solver stage against live arrivals.
pub(super) struct SolveRequest {
    pub(super) slot: usize,
    pub(super) now: f64,
    pub(super) pending: Vec<PendingJob>,
    pub(super) views: Vec<RegionView>,
}

/// The solver stage's answer for one slot.
pub(super) struct SolveResponse {
    pub(super) slot: usize,
    pub(super) decision: SchedulingDecision,
    pub(super) wall: f64,
    pub(super) solver: Option<SolverActivity>,
    pub(super) batch: usize,
}

/// Run one campaign on the pipelined engine. `workers` counts auxiliary
/// threads: one solver stage plus `workers − 1` accounting shards (the
/// caller guarantees `workers ≥ 1`; zero workers normalize to the
/// synchronous engine before dispatch).
pub(crate) fn run_pipelined<P: ConditionsProvider>(
    sim: &Simulator<P>,
    jobs: &[JobSpec],
    scheduler: &mut dyn Scheduler,
    workers: usize,
) -> Result<SimulationReport, SimulationError> {
    let workers = workers.max(1);
    let shards = workers - 1;
    let scheduler_name = scheduler.name().to_string();
    let mut state = SimState::new(sim.config(), jobs.to_vec())?;
    let mut stats = PipelineStats {
        workers,
        accounting_shards: shards,
        ..PipelineStats::default()
    };

    let outcomes: Vec<JobOutcome> = std::thread::scope(|scope| {
        let (req_tx, req_rx) = std::sync::mpsc::sync_channel::<SolveRequest>(SOLVE_QUEUE_DEPTH);
        let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<SolveResponse>(SOLVE_QUEUE_DEPTH);
        let delay_tolerance = state.tolerance;
        let transfer = &sim.config().transfer;
        scope.spawn(move || solver_stage(req_rx, resp_tx, delay_tolerance, transfer, scheduler));

        let mut shard_txs: Vec<SyncSender<CompletionRecord>> = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) =
                std::sync::mpsc::sync_channel::<CompletionRecord>(ACCOUNTING_QUEUE_DEPTH);
            shard_handles.push(scope.spawn(move || accounting_stage(rx, sim, delay_tolerance)));
            shard_txs.push(tx);
        }

        let mut inline_outcomes: Vec<JobOutcome> =
            Vec::with_capacity(if shards == 0 { jobs.len() } else { 0 });
        let loop_result = event_loop(
            sim,
            jobs,
            &mut state,
            &mut stats,
            &mut inline_outcomes,
            &req_tx,
            &resp_rx,
            &shard_txs,
        );
        // Hang up the stages so every thread drains and exits; the scope
        // would otherwise deadlock joining a stage still blocked on recv.
        drop(req_tx);
        drop(shard_txs);
        loop_result?;

        if shards == 0 {
            return Ok(inline_outcomes);
        }
        // Deterministic merge: place every shard's outcomes back at their
        // completion index, then surface the first error (if any) in
        // completion order — exactly the error a synchronous replay would
        // have hit first.
        let mut merged: Vec<Option<Result<JobOutcome, SimulationError>>> =
            (0..state.completions).map(|_| None).collect();
        for handle in shard_handles {
            // A join error carries the shard's own panic; re-raise it with
            // its original payload instead of wrapping it in a fresh panic
            // (DET003: the engine introduces no panic of its own here).
            let outcomes = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (index, result) in outcomes {
                merged[index] = Some(result);
            }
        }
        merged
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Some(result) => result,
                None => Err(SimulationError::MissingCompletionRecord { index }),
            })
            .collect()
    })?;

    let (makespan, mean_utilization) = state.finalize();
    let summary = CampaignSummary::from_outcomes(&outcomes, &state.overhead, mean_utilization)
        .with_pipeline(stats);
    Ok(SimulationReport {
        scheduler_name,
        outcomes,
        overhead: state.overhead,
        summary,
        makespan: Seconds::new(makespan),
    })
}

/// The event stage: identical state transitions to the synchronous driver,
/// with solves shipped to the solver stage (arrivals ahead of the commit
/// barrier ingested while waiting) and accounting shipped to the shards.
#[allow(clippy::too_many_arguments)]
fn event_loop<P: ConditionsProvider>(
    sim: &Simulator<P>,
    jobs: &[JobSpec],
    state: &mut SimState,
    stats: &mut PipelineStats,
    inline_outcomes: &mut Vec<JobOutcome>,
    requests: &SyncSender<SolveRequest>,
    responses: &Receiver<SolveResponse>,
    shard_txs: &[SyncSender<CompletionRecord>],
) -> Result<(), SimulationError> {
    let mut slot = 0usize;
    while let Some(QueuedEvent { time, event, .. }) = state.queue.pop() {
        state.last_time = time;
        match event {
            Event::Arrival(i) => state.handle_arrival(i, time),
            Event::Round => {
                if !state.pending.is_empty() {
                    let (pending_jobs, views) = state.snapshot();
                    let batch = pending_jobs.len();
                    let seq_base = state.queue.reserve(batch as u64 + 1);
                    // The commit barrier: the key the next round will carry.
                    // Events strictly ahead of it in `(time, seq)` order
                    // belong to this scheduling window.
                    let barrier = (time + state.interval, seq_base + batch as u64);
                    requests
                        .send(SolveRequest {
                            slot,
                            now: time,
                            pending: pending_jobs,
                            views,
                        })
                        .map_err(|_| SimulationError::SolverStageDisconnected { slot })?;
                    stats.solve_requests += 1;
                    // Overlap: ingest arrivals ahead of the barrier while
                    // the solver stage works on this slot. Arrivals only
                    // append to the pending pool, which this slot's commit
                    // cannot touch; every other event type must wait for
                    // the decision's `Ready` events to take their reserved
                    // places in the event order.
                    while let Some(top) = state.queue.peek() {
                        if !matches!(top.event, Event::Arrival(_)) || (top.time, top.seq) >= barrier
                        {
                            break;
                        }
                        // The peek above proved the queue is non-empty; an
                        // empty pop just ends the overlap early (DET003).
                        let Some(arrival) = state.queue.pop() else {
                            break;
                        };
                        state.last_time = arrival.time;
                        if let Event::Arrival(i) = arrival.event {
                            state.handle_arrival(i, arrival.time);
                            stats.overlapped_arrivals += 1;
                        }
                    }
                    // Block for the slot's decision and commit it. Strict
                    // slot ordering is the commit protocol's invariant.
                    // lint:allow(DET002: commit_wait timing capture; scrubbed from schedules by without_wall_clock)
                    let wait_started = Instant::now();
                    let resp = responses
                        .recv()
                        .map_err(|_| SimulationError::SolverStageDisconnected { slot })?;
                    let commit_wait = wait_started.elapsed().as_secs_f64();
                    if resp.slot != slot {
                        return Err(SimulationError::PipelineCommitOrder {
                            expected: slot,
                            got: resp.slot,
                        });
                    }
                    stats.commit_wait = Seconds::new(stats.commit_wait.value() + commit_wait);
                    stats.solver_busy = Seconds::new(stats.solver_busy.value() + resp.wall);
                    state.overhead.push(OverheadSample {
                        sim_time: Seconds::new(time),
                        wall_clock: Seconds::new(resp.wall),
                        commit_wait: Seconds::new(commit_wait),
                        batch_size: resp.batch,
                        solver: resp.solver,
                    });
                    state.commit_round(&resp.decision, batch, seq_base, time, sim.config())?;
                    slot += 1;
                } else if state.completed < jobs.len() {
                    state.queue.push(time + state.interval, Event::Round)?;
                }
            }
            Event::Ready(i) => state.handle_ready(i, time)?,
            Event::Complete(i) => {
                let record = state.handle_complete(i, time)?;
                if shard_txs.is_empty() {
                    inline_outcomes.push(sim.record_outcome(
                        &record.spec,
                        &record.runtime,
                        state.tolerance,
                    )?);
                } else {
                    stats.accounted_jobs += 1;
                    send_record(&shard_txs[record.index % shard_txs.len()], record)?;
                }
            }
        }
        if state.should_stop() {
            // Drain any remaining Round events implicitly by stopping.
            break;
        }
    }
    Ok(())
}

/// Ship a completion record to its accounting shard, reporting a dead shard
/// as a typed error instead of panicking the event stage. Blocks when the
/// shard's queue is full (backpressure on the event loop).
fn send_record(
    tx: &SyncSender<CompletionRecord>,
    record: CompletionRecord,
) -> Result<(), SimulationError> {
    let index = record.index;
    tx.send(record)
        .map_err(|_| SimulationError::AccountingStageDisconnected { index })
}

/// The solver stage: owns the scheduler for the campaign's lifetime,
/// solving one snapshot at a time in slot order. Exits when the event stage
/// hangs up either side of the channel pair. Shared with the online driver.
pub(super) fn solver_stage(
    requests: Receiver<SolveRequest>,
    responses: SyncSender<SolveResponse>,
    delay_tolerance: f64,
    transfer: &crate::network::TransferModel,
    scheduler: &mut dyn Scheduler,
) {
    while let Ok(request) = requests.recv() {
        let ctx = SchedulingContext {
            now: Seconds::new(request.now),
            pending: &request.pending,
            regions: &request.views,
            delay_tolerance,
            transfer,
        };
        let (decision, wall, solver) = super::timed_schedule(scheduler, &ctx);
        let response = SolveResponse {
            slot: request.slot,
            decision,
            wall,
            solver,
            batch: request.pending.len(),
        };
        if responses.send(response).is_err() {
            break; // Event stage hung up (error path); exit cleanly.
        }
    }
}

/// An accounting shard: pure footprint accounting per completion record,
/// tagged with the completion index for the deterministic merge.
fn accounting_stage<P: ConditionsProvider>(
    records: Receiver<CompletionRecord>,
    sim: &Simulator<P>,
    tolerance: f64,
) -> Vec<(usize, Result<JobOutcome, SimulationError>)> {
    records
        .iter()
        .map(|record| {
            (
                record.index,
                sim.record_outcome(&record.spec, &record.runtime, tolerance),
            )
        })
        .collect()
}
