//! The online engine driver: live arrival injection into a running
//! campaign.
//!
//! Offline replays preload the whole trace into the event queue before the
//! first event dispatches. The online driver instead starts from an empty
//! job table and *injects* jobs while the campaign runs: an
//! `mpsc::Receiver<JobSpec>` is the arrival source, every enacted placement
//! is reported over a bounded [`PlacementNotice`] channel as it commits,
//! and the run ends when the source closes and every admitted job has
//! completed. `waterwise-service` builds the request/response front-ends
//! (in-process channels, a line-delimited-JSON TCP listener) on top of this
//! driver; see `docs/ONLINE_SERVICE.md` for the operator-facing view.
//!
//! # The identity discipline
//!
//! The driver's contract is that going online changes *when* work is
//! revealed to the engine, never *what* the engine computes: replaying an
//! online run's recorded trace ([`OnlineReport::trace`]) through
//! [`Simulator::run`] produces the byte-identical schedule. Three
//! mechanisms enforce it:
//!
//! 1. **Split sequence bands.** In an offline replay every arrival enters
//!    the queue before the first round, so on exact timestamp ties arrivals
//!    always order ahead of round/decision events. The online driver cannot
//!    rely on push order — arrivals are pushed throughout the run — so it
//!    stamps them from a dedicated low sequence band (`0, 1, 2, …` in
//!    receipt order) and floors the regular band at `ONLINE_ROUND_SEQ_BASE`
//!    (2^48). Relative order within each band matches the offline replay,
//!    and the low band wins every cross-band tie, exactly as offline.
//! 2. **The watermark rule.** A queued event dispatches only when no
//!    earlier (or equally-timed) arrival can still be injected:
//!    [`ClockMode::Discrete`] requires a strictly later injection (or the
//!    closed source) as proof, [`ClockMode::RealTime`] uses the scaled wall
//!    clock, whose monotonicity bounds every future stamp from below.
//! 3. **Monotone stamps.** An injected job's submit time is never allowed
//!    at or before an already-dispatched round/ready/complete event
//!    (`RealTime` nudges the stamp up; `Discrete` rejects the request with
//!    [`SimulationError::OutOfOrderArrival`]), so the replayed arrival
//!    cannot land ahead of effects the online run has already committed.
//!
//! The guarantee is property-tested in `waterwise-service`
//! (`tests/online_equivalence.rs`) across Sync and Pipelined engine modes
//! and asserted again inside the `fig17_service` benchmark over the TCP
//! path.

use super::clock::{ClockMode, SimClock};
use super::pipeline::{solver_stage, SolveRequest, SolveResponse};
use super::queue::{Event, QueuedEvent};
use super::{timed_schedule, SimState, SimulationReport, Simulator};
use crate::config::EngineMode;
use crate::error::SimulationError;
use crate::metrics::{CampaignSummary, JobOutcome, OverheadSample, PipelineStats};
use crate::scheduler::{Scheduler, SchedulingContext, SolverActivity};
use std::collections::BTreeSet;
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SyncSender, TryRecvError};
use std::time::{Duration, Instant};
use waterwise_sustain::Seconds;
use waterwise_telemetry::{ConditionsProvider, Region};
use waterwise_traces::{JobId, JobSpec};

/// Floor of the sequence band used for round/decision/completion events in
/// an online run. Arrivals are stamped from the low band (`0, 1, 2, …` in
/// receipt order), so they win every exact-timestamp tie against the high
/// band — the ordering an offline replay produces by pushing all arrivals
/// first. 2^48 events is far beyond any campaign; the bands cannot collide.
pub(crate) const ONLINE_ROUND_SEQ_BASE: u64 = 1 << 48;

/// Exclusive upper bound of the low (arrival) sequence band for
/// caller-sequenced online runs ([`Simulator::run_online_sequenced`]).
/// Every caller-allocated arrival sequence must be strictly below this
/// value or the arrival would collide with the round/decision band and the
/// run is rejected with [`SimulationError::ArrivalSeqOutOfBand`].
///
/// The admission layer in `waterwise-service` partitions this band per
/// session (`session << 32 | request`), which makes exact-timestamp tie
/// order a pure function of `(session, request index)` — independent of
/// the physical interleaving in which concurrent sessions reached the
/// engine.
pub const ONLINE_ARRIVAL_SEQ_LIMIT: u64 = ONLINE_ROUND_SEQ_BASE;

/// How long the staged (pipelined) online driver waits on the solver-stage
/// response channel between ingestion sweeps while a solve is in flight.
const SOLVE_POLL_INTERVAL: Duration = Duration::from_micros(500);

/// One enacted placement, reported to the online caller as it commits.
///
/// This is the engine-level answer to a placement request; the service
/// layer enriches it with projected footprints and deadline feasibility
/// before answering the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementNotice {
    /// The placed job.
    pub job: JobId,
    /// The region that will execute it.
    pub region: Region,
    /// Index of the scheduling round that placed it (0-based).
    pub slot: usize,
    /// Simulated time of the placing round.
    pub decided_at: Seconds,
    /// The submit time the job was stamped with at ingestion (equals the
    /// request's own submit time under [`ClockMode::Discrete`]).
    pub submitted_at: Seconds,
    /// Package transfer time charged for the placement.
    pub transfer_time: Seconds,
    /// Earliest possible execution start: `decided_at + transfer_time`
    /// (actual start may be later if the region's servers are busy).
    pub projected_start: Seconds,
    /// Scheduling rounds the job was deferred before this placement.
    pub deferrals: u32,
    /// Solver work the placing round performed, if the scheduler runs an
    /// optimization solver (the per-round delta, not a cumulative total).
    pub solver: Option<SolverActivity>,
}

/// A job injected into a caller-sequenced online run
/// ([`Simulator::run_online_sequenced`]) together with its caller-allocated
/// low-band arrival sequence.
///
/// The sequence is the exact-timestamp tie-breaker: on equal submit times
/// the arrival with the smaller `seq` orders first, regardless of the
/// physical order in which the injections reached the engine. Sequences
/// must be unique across the run and strictly below
/// [`ONLINE_ARRIVAL_SEQ_LIMIT`]; they need not be contiguous or arrive in
/// order (the admission layer may hand out per-session bands).
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedJob {
    /// The injected request.
    pub spec: JobSpec,
    /// Caller-allocated low-band arrival sequence
    /// (`< ONLINE_ARRIVAL_SEQ_LIMIT`, unique per run).
    pub seq: u64,
}

/// The result of one online campaign.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The full simulation report, identical in structure to an offline
    /// run's.
    pub report: SimulationReport,
    /// Every admitted job in receipt order, with the submit times they
    /// were stamped with — replaying this trace through
    /// [`Simulator::run`] reproduces [`OnlineReport::report`]'s schedule
    /// byte-identically.
    ///
    /// For caller-sequenced runs ([`Simulator::run_online_sequenced`])
    /// receipt order and sequence order may differ, so an offline replay
    /// must re-inject the trace through `run_online_sequenced` with the
    /// same per-arrival sequences (the service's admission journal records
    /// them) rather than through [`Simulator::run`].
    pub trace: Vec<JobSpec>,
}

/// Where a round's solve executes, mirroring [`EngineMode`] for the online
/// loop: inline on the event loop (`Sync`) or on the dedicated solver-stage
/// thread (`Pipelined`).
enum SolveBackend<'s> {
    Inline(&'s mut dyn Scheduler),
    Staged {
        requests: SyncSender<SolveRequest>,
        responses: Receiver<SolveResponse>,
    },
}

/// The arrival source of an online run: either a plain [`JobSpec`] channel
/// (the driver assigns low-band sequences `0, 1, 2, …` in receipt order) or
/// a caller-sequenced channel (the caller allocated each arrival's low-band
/// sequence up front, e.g. from per-session bands).
enum ArrivalStream {
    Auto(Receiver<JobSpec>),
    Sequenced(Receiver<SequencedJob>),
}

impl ArrivalStream {
    fn try_recv(&self) -> Result<(JobSpec, Option<u64>), TryRecvError> {
        match self {
            ArrivalStream::Auto(rx) => rx.try_recv().map(|spec| (spec, None)),
            ArrivalStream::Sequenced(rx) => rx.try_recv().map(|job| (job.spec, Some(job.seq))),
        }
    }

    fn recv(&self) -> Result<(JobSpec, Option<u64>), RecvError> {
        match self {
            ArrivalStream::Auto(rx) => rx.recv().map(|spec| (spec, None)),
            ArrivalStream::Sequenced(rx) => rx.recv().map(|job| (job.spec, Some(job.seq))),
        }
    }

    fn recv_timeout(&self, wait: Duration) -> Result<(JobSpec, Option<u64>), RecvTimeoutError> {
        match self {
            ArrivalStream::Auto(rx) => rx.recv_timeout(wait).map(|spec| (spec, None)),
            ArrivalStream::Sequenced(rx) => {
                rx.recv_timeout(wait).map(|job| (job.spec, Some(job.seq)))
            }
        }
    }
}

/// Run one online campaign. See [`Simulator::run_online`] for the public
/// contract and [`self`] (module docs) for the identity discipline.
pub(crate) fn run_online<P: ConditionsProvider>(
    sim: &Simulator<P>,
    scheduler: &mut dyn Scheduler,
    arrivals: Receiver<JobSpec>,
    placements: SyncSender<PlacementNotice>,
    clock: ClockMode,
) -> Result<OnlineReport, SimulationError> {
    run_online_stream(
        sim,
        scheduler,
        ArrivalStream::Auto(arrivals),
        placements,
        clock,
    )
}

/// Run one caller-sequenced online campaign. See
/// [`Simulator::run_online_sequenced`] for the public contract.
pub(crate) fn run_online_sequenced<P: ConditionsProvider>(
    sim: &Simulator<P>,
    scheduler: &mut dyn Scheduler,
    arrivals: Receiver<SequencedJob>,
    placements: SyncSender<PlacementNotice>,
    clock: ClockMode,
) -> Result<OnlineReport, SimulationError> {
    run_online_stream(
        sim,
        scheduler,
        ArrivalStream::Sequenced(arrivals),
        placements,
        clock,
    )
}

fn run_online_stream<P: ConditionsProvider>(
    sim: &Simulator<P>,
    scheduler: &mut dyn Scheduler,
    arrivals: ArrivalStream,
    placements: SyncSender<PlacementNotice>,
    clock: ClockMode,
) -> Result<OnlineReport, SimulationError> {
    let scheduler_name = scheduler.name().to_string();
    let mut driver = OnlineDriver::new(sim, arrivals, placements, clock.normalized());
    match sim.config().engine.normalized() {
        EngineMode::Sync => driver.run(SolveBackend::Inline(scheduler), scheduler_name),
        EngineMode::Pipelined { .. } => std::thread::scope(|scope| {
            let (req_tx, req_rx) = std::sync::mpsc::sync_channel::<SolveRequest>(1);
            let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<SolveResponse>(1);
            let delay_tolerance = sim.config().delay_tolerance;
            let transfer = &sim.config().transfer;
            scope
                .spawn(move || solver_stage(req_rx, resp_tx, delay_tolerance, transfer, scheduler));
            driver.stats = Some(PipelineStats {
                workers: 1,
                accounting_shards: 0,
                ..PipelineStats::default()
            });
            // `req_tx` moves into the backend and drops when `run` returns
            // (on success or error), hanging up the solver stage so the
            // scope can join it.
            driver.run(
                SolveBackend::Staged {
                    requests: req_tx,
                    responses: resp_rx,
                },
                scheduler_name,
            )
        }),
    }
}

struct OnlineDriver<'a, P> {
    sim: &'a Simulator<P>,
    state: SimState,
    arrivals: ArrivalStream,
    placements: SyncSender<PlacementNotice>,
    /// `None` for [`ClockMode::Discrete`], a started clock for `RealTime`.
    clock: Option<SimClock>,
    /// Whether the arrival source can still produce requests.
    open: bool,
    /// Next low-band sequence number (receipt order of arrivals), used when
    /// the stream does not carry caller-allocated sequences.
    arrival_seq: u64,
    /// Caller-allocated sequences seen so far (sequenced streams only):
    /// a reused sequence would make the exact-tie order between the twins
    /// ambiguous, so the run is rejected instead.
    used_seqs: BTreeSet<u64>,
    /// Largest submit time stamped so far — the `Discrete` watermark.
    last_stamp: f64,
    /// Largest dispatched non-arrival event time: new stamps must exceed it
    /// or the replay could order the arrival ahead of committed effects.
    committed_time: f64,
    outcomes: Vec<JobOutcome>,
    /// Pipeline counters, `Some` iff the solve backend is staged.
    stats: Option<PipelineStats>,
    slot: usize,
}

impl<'a, P: ConditionsProvider> OnlineDriver<'a, P> {
    fn new(
        sim: &'a Simulator<P>,
        arrivals: ArrivalStream,
        placements: SyncSender<PlacementNotice>,
        clock: ClockMode,
    ) -> Self {
        let mut state = SimState::empty(sim.config());
        // Floor the regular sequence band; arrivals use the low band.
        state.queue.reserve(ONLINE_ROUND_SEQ_BASE);
        let clock = match clock {
            ClockMode::Discrete => None,
            ClockMode::RealTime { scale } => Some(SimClock::start(scale)),
        };
        Self {
            sim,
            state,
            arrivals,
            placements,
            clock,
            open: true,
            arrival_seq: 0,
            used_seqs: BTreeSet::new(),
            last_stamp: f64::NEG_INFINITY,
            committed_time: f64::NEG_INFINITY,
            outcomes: Vec::new(),
            stats: None,
            slot: 0,
        }
    }

    /// The smallest submit time a new injection may be stamped with:
    /// strictly after every dispatched non-arrival event (its effects are
    /// committed) and no earlier than the previous stamp (receipt order
    /// must equal replay order).
    fn stamp_floor(&self) -> f64 {
        let above_committed = if self.committed_time == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.committed_time.next_up()
        };
        self.last_stamp.max(above_committed)
    }

    /// Admit one injected job: stamp (or validate) its submit time and
    /// enqueue its arrival from the low sequence band. `seq` is the
    /// caller-allocated arrival sequence on sequenced streams (validated
    /// against the band limit and for uniqueness); `None` assigns the next
    /// receipt-order sequence.
    fn ingest(&mut self, mut spec: JobSpec, seq: Option<u64>) -> Result<(), SimulationError> {
        let arrival_seq = match seq {
            None => {
                let next = self.arrival_seq;
                self.arrival_seq += 1;
                next
            }
            Some(seq) => {
                if seq >= ONLINE_ARRIVAL_SEQ_LIMIT {
                    return Err(SimulationError::ArrivalSeqOutOfBand { job: spec.id, seq });
                }
                if !self.used_seqs.insert(seq) {
                    return Err(SimulationError::ArrivalSeqReused { job: spec.id, seq });
                }
                seq
            }
        };
        let floor = self.stamp_floor();
        let stamp = match &self.clock {
            None => {
                let time = spec.submit_time.value();
                if time < floor {
                    return Err(SimulationError::OutOfOrderArrival {
                        job: spec.id,
                        time,
                        watermark: floor,
                    });
                }
                time
            }
            Some(clock) => {
                let stamp = clock.now().max(floor).max(0.0);
                spec.submit_time = Seconds::new(stamp);
                stamp
            }
        };
        self.state.push_job(spec, arrival_seq)?;
        self.last_stamp = stamp;
        Ok(())
    }

    /// Ingest every request currently sitting in the channel without
    /// blocking. Notices the source closing.
    fn drain_injections(&mut self) -> Result<(), SimulationError> {
        while self.open {
            match self.arrivals.try_recv() {
                Ok((spec, seq)) => self.ingest(spec, seq)?,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => self.open = false,
            }
        }
        Ok(())
    }

    /// Block until the source produces a request (ingested) or closes.
    fn await_source(&mut self) -> Result<(), SimulationError> {
        match self.arrivals.recv() {
            Ok((spec, seq)) => self.ingest(spec, seq),
            Err(_) => {
                self.open = false;
                Ok(())
            }
        }
    }

    /// Whether an event at `time` is safe to dispatch: no earlier (or
    /// equally-timed) arrival can still be injected.
    fn dispatchable(&self, time: f64) -> bool {
        if !self.open {
            return true;
        }
        match &self.clock {
            // An injection at exactly `last_stamp` is still admissible, so
            // the proof must be strict.
            None => time < self.last_stamp,
            Some(clock) => time <= clock.now(),
        }
    }

    /// Whether every admitted job has been fully processed (the offline
    /// engine's stop condition). While the source is open this means
    /// "idle", not "done".
    fn drained(&self) -> bool {
        self.state.completed == self.state.jobs.len()
            && self.state.pending.is_empty()
            && self.state.queue.only_rounds_left()
    }

    fn run(
        mut self,
        mut backend: SolveBackend<'_>,
        scheduler_name: String,
    ) -> Result<OnlineReport, SimulationError> {
        loop {
            self.drain_injections()?;
            if self.drained() {
                // Idle: nothing the engine may legally dispatch. Offline
                // replays stop exactly here (trailing rounds are never
                // popped), so to keep makespans identical the online
                // driver must not dispatch them either — it waits for the
                // source instead, and stops when it closes.
                if !self.open {
                    break;
                }
                self.await_source()?;
                continue;
            }
            let Some(&QueuedEvent { time, .. }) = self.state.queue.peek() else {
                // Pending work with an empty queue cannot happen (the round
                // chain re-arms while jobs are incomplete); treat it like
                // drained for robustness.
                if !self.open {
                    break;
                }
                self.await_source()?;
                continue;
            };
            if !self.dispatchable(time) {
                match &self.clock {
                    None => self.await_source()?,
                    Some(clock) => {
                        let wait = clock.wall_until(time);
                        match self.arrivals.recv_timeout(wait) {
                            Ok((spec, seq)) => self.ingest(spec, seq)?,
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => self.open = false,
                        }
                    }
                }
                continue;
            }
            // The dispatchability check above peeked a queued event; an
            // empty pop just re-enters the watermark wait (DET003).
            let Some(QueuedEvent { time, event, .. }) = self.state.queue.pop() else {
                continue;
            };
            self.state.last_time = time;
            match event {
                Event::Arrival(i) => self.state.handle_arrival(i, time),
                Event::Round => {
                    self.committed_time = self.committed_time.max(time);
                    if !self.state.pending.is_empty() {
                        self.solve_and_commit(time, &mut backend)?;
                    } else if self.state.completed < self.state.jobs.len() {
                        // Same re-arm condition as the offline drivers; an
                        // idle round can only be dispatched while admitted
                        // jobs are incomplete (a fully-drained engine
                        // parks in the idle branch of `run` instead), so
                        // the recorded trace re-arms identically offline.
                        self.state
                            .queue
                            .push(time + self.state.interval, Event::Round)?;
                    }
                }
                Event::Ready(i) => {
                    self.committed_time = self.committed_time.max(time);
                    self.state.handle_ready(i, time)?;
                }
                Event::Complete(i) => {
                    self.committed_time = self.committed_time.max(time);
                    let record = self.state.handle_complete(i, time)?;
                    self.outcomes.push(self.sim.record_outcome(
                        &record.spec,
                        &record.runtime,
                        self.state.tolerance,
                    )?);
                }
            }
            if !self.open && self.state.should_stop() {
                break;
            }
        }

        let (makespan, mean_utilization) = self.state.finalize();
        let mut summary =
            CampaignSummary::from_outcomes(&self.outcomes, &self.state.overhead, mean_utilization);
        if let Some(stats) = self.stats {
            summary = summary.with_pipeline(stats);
        }
        Ok(OnlineReport {
            report: SimulationReport {
                scheduler_name,
                outcomes: self.outcomes,
                overhead: self.state.overhead,
                summary,
                makespan: Seconds::new(makespan),
            },
            trace: self.state.jobs,
        })
    }

    /// Solve one round (inline or on the solver stage) and commit its
    /// decision, reporting every enacted placement.
    fn solve_and_commit(
        &mut self,
        now: f64,
        backend: &mut SolveBackend<'_>,
    ) -> Result<(), SimulationError> {
        let (pending_jobs, views) = self.state.snapshot();
        let batch = pending_jobs.len();
        let seq_base = self.state.queue.reserve(batch as u64 + 1);
        let (decision, wall, commit_wait, solver) = match backend {
            SolveBackend::Inline(scheduler) => {
                let ctx = SchedulingContext {
                    now: Seconds::new(now),
                    pending: &pending_jobs,
                    regions: &views,
                    delay_tolerance: self.state.tolerance,
                    transfer: &self.sim.config().transfer,
                };
                let (decision, elapsed, solver) = timed_schedule(&mut **scheduler, &ctx);
                (decision, elapsed, elapsed, solver)
            }
            SolveBackend::Staged {
                requests,
                responses,
            } => {
                let slot = self.slot;
                requests
                    .send(SolveRequest {
                        slot,
                        now,
                        pending: pending_jobs,
                        views,
                    })
                    .map_err(|_| SimulationError::SolverStageDisconnected { slot })?;
                if let Some(stats) = &mut self.stats {
                    stats.solve_requests += 1;
                }
                // The commit barrier: the key the next round will carry.
                let barrier = (now + self.state.interval, seq_base + batch as u64);
                // lint:allow(DET002: commit_wait timing capture; scrubbed from schedules by without_wall_clock)
                let wait_started = Instant::now();
                let resp = loop {
                    // Overlap: while the solver stage works on this slot,
                    // keep ingesting — live injections and queued arrivals
                    // ahead of the barrier (they only append to the
                    // pending pool, which this slot's commit cannot
                    // touch). The watermark rule still gates every pop.
                    self.drain_injections()?;
                    while let Some(top) = self.state.queue.peek() {
                        if !matches!(top.event, Event::Arrival(_))
                            || (top.time, top.seq) >= barrier
                            || !self.dispatchable(top.time)
                        {
                            break;
                        }
                        // The peek above proved the queue is non-empty; an
                        // empty pop just ends the overlap early (DET003).
                        let Some(arrival) = self.state.queue.pop() else {
                            break;
                        };
                        self.state.last_time = arrival.time;
                        if let Event::Arrival(i) = arrival.event {
                            self.state.handle_arrival(i, arrival.time);
                            if let Some(stats) = &mut self.stats {
                                stats.overlapped_arrivals += 1;
                            }
                        }
                    }
                    match responses.recv_timeout(SOLVE_POLL_INTERVAL) {
                        Ok(resp) => break resp,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(SimulationError::SolverStageDisconnected { slot });
                        }
                    }
                };
                let commit_wait = wait_started.elapsed().as_secs_f64();
                if resp.slot != slot {
                    return Err(SimulationError::PipelineCommitOrder {
                        expected: slot,
                        got: resp.slot,
                    });
                }
                if let Some(stats) = &mut self.stats {
                    stats.commit_wait = Seconds::new(stats.commit_wait.value() + commit_wait);
                    stats.solver_busy = Seconds::new(stats.solver_busy.value() + resp.wall);
                }
                (resp.decision, resp.wall, commit_wait, resp.solver)
            }
        };
        self.state.overhead.push(OverheadSample {
            sim_time: Seconds::new(now),
            wall_clock: Seconds::new(wall),
            commit_wait: Seconds::new(commit_wait),
            batch_size: batch,
            solver,
        });
        let enacted =
            self.state
                .commit_round(&decision, batch, seq_base, now, self.sim.config())?;
        let slot = self.slot;
        self.slot += 1;
        for placement in enacted {
            let spec = &self.state.jobs[placement.job];
            let notice = PlacementNotice {
                job: spec.id,
                region: placement.region,
                slot,
                decided_at: Seconds::new(now),
                submitted_at: spec.submit_time,
                transfer_time: Seconds::new(placement.transfer_time),
                projected_start: Seconds::new(now + placement.transfer_time),
                deferrals: placement.deferrals,
                solver,
            };
            self.placements
                .send(notice)
                .map_err(|_| SimulationError::PlacementSinkDisconnected { job: spec.id })?;
        }
        Ok(())
    }
}
