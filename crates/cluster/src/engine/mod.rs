//! The discrete-event simulation engine.
//!
//! The engine replays a workload trace against a set of regional server
//! pools, consulting a [`Scheduler`] every scheduling round and accounting
//! carbon and water footprints with the environmental conditions in effect
//! when each job starts. It replaces the paper's physical 175-node AWS
//! deployment (the scheduler code is identical in both worlds — it only sees
//! the [`SchedulingContext`]).
//!
//! # Execution modes
//!
//! The engine runs in one of two modes, selected by
//! [`crate::config::EngineMode`] on the simulation configuration:
//!
//! * **Sync** — the reference behavior: scheduler solves and footprint
//!   accounting run inline on the event loop, one event at a time.
//! * **Pipelined** — the event loop, the scheduler (the *solver stage*),
//!   and footprint accounting run as separate stages connected by bounded
//!   channels; see the `pipeline` submodule for the stage layout and the
//!   commit protocol.
//!
//! Both modes drive the *same* deterministic core (the private `SimState`)
//! and are guaranteed to produce byte-identical schedules and summaries;
//! the mode only changes which thread executes each piece of work. The
//! guarantee is enforced by the unit tests below, by the property tests in
//! `tests/pipeline_equivalence.rs`, and by campaign-level integration
//! tests.

pub mod clock;
pub mod online;
pub(crate) mod pipeline;
pub(crate) mod queue;
#[cfg(test)]
mod tests;

use crate::config::{EngineMode, SimulationConfig};
use crate::error::SimulationError;
use crate::metrics::{CampaignSummary, JobOutcome, OverheadSample};
use crate::scheduler::{
    PendingJob, Scheduler, SchedulingContext, SchedulingDecision, SolverActivity,
};
use crate::state::{RegionRuntime, RegionView};
use queue::{Event, EventQueue, QueuedEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use waterwise_sustain::{FootprintEstimator, JobResourceUsage, Seconds};
use waterwise_telemetry::{ConditionsProvider, Region};
use waterwise_traces::{JobId, JobSpec};

/// The result of simulating one campaign with one scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Name of the scheduler that produced this report.
    pub scheduler_name: String,
    /// Per-job outcomes in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Scheduler decision-overhead samples, one per round that had work.
    pub overhead: Vec<OverheadSample>,
    /// Aggregate summary.
    pub summary: CampaignSummary,
    /// Total simulated time from first submission to last completion.
    pub makespan: Seconds,
}

/// Discrete-event simulator of the geo-distributed cluster.
///
/// ```
/// use waterwise_cluster::{SimulationConfig, Simulator};
/// use waterwise_telemetry::SyntheticTelemetry;
///
/// let config = SimulationConfig::paper_default(40, 0.5);
/// let simulator = Simulator::new(config, SyntheticTelemetry::with_seed(1)).unwrap();
/// assert_eq!(simulator.config().regions.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<P> {
    config: SimulationConfig,
    provider: P,
    estimator: FootprintEstimator,
}

/// Per-job bookkeeping the engine maintains while a job moves through
/// arrival → assignment → transfer → execution → completion.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JobRuntime {
    pub(crate) assigned_region: Option<Region>,
    pub(crate) transfer_time: f64,
    pub(crate) start_time: f64,
    pub(crate) completion_time: f64,
    pub(crate) started: bool,
    pub(crate) completed: bool,
}

/// Everything footprint accounting needs about one completed job, copied out
/// of the engine state so the pipelined driver can compute the
/// [`JobOutcome`] on an accounting shard while the event loop keeps moving.
///
/// The record carries the job's full spec (not an index into a shared
/// slice): the online driver grows the engine's job table while the
/// campaign runs, so accounting must never hold a reference into it.
#[derive(Debug, Clone)]
pub(crate) struct CompletionRecord {
    /// Position of this completion in completion order (the index of the
    /// outcome in [`SimulationReport::outcomes`]).
    pub(crate) index: usize,
    /// The completed job's trace record.
    pub(crate) spec: JobSpec,
    /// The job's final runtime bookkeeping.
    pub(crate) runtime: JobRuntime,
}

/// One placement enacted by [`SimState::commit_round`], reported back to the
/// driver so the online service can answer the request that produced it.
/// Offline replays ignore these.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnactedPlacement {
    /// Index of the job in the engine's job table.
    pub(crate) job: usize,
    /// The region the job was assigned to.
    pub(crate) region: Region,
    /// Transfer time charged for shipping the package there (seconds).
    pub(crate) transfer_time: f64,
    /// Scheduling rounds the job was deferred before this placement.
    pub(crate) deferrals: u32,
}

/// The mode-independent engine core: event queue, region/job bookkeeping,
/// and the slot commit logic. Both the synchronous driver
/// ([`Simulator::run`] with [`EngineMode::Sync`]) and the pipelined driver
/// ([`pipeline::run_pipelined`]) drive exactly this state machine, which is
/// what makes their schedules byte-identical by construction: every state
/// transition an engine mode may take lives here, and the drivers only
/// choose *which thread* performs the scheduler solve and the footprint
/// accounting.
pub(crate) struct SimState {
    pub(crate) jobs: Vec<JobSpec>,
    /// Every job id admitted so far; rejects duplicates both in offline
    /// traces (up front) and in online injections (per request). Ordered
    /// containers by the DET001 discipline: nothing schedule-affecting may
    /// iterate in hash order, and membership checks cost the same either way.
    seen_ids: BTreeSet<JobId>,
    participating: Vec<Region>,
    regions: Vec<RegionRuntime>,
    region_slot: BTreeMap<Region, usize>,
    pub(crate) queue: EventQueue,
    pub(crate) interval: f64,
    pub(crate) tolerance: f64,
    runtimes: Vec<JobRuntime>,
    /// Pending pool: job indices with the time the controller received them
    /// and the number of rounds the job has been deferred.
    pub(crate) pending: Vec<(usize, f64, u32)>,
    pub(crate) overhead: Vec<OverheadSample>,
    pub(crate) completed: usize,
    /// Completions recorded so far (the next [`CompletionRecord::index`]).
    pub(crate) completions: usize,
    pub(crate) last_time: f64,
    first_time: f64,
}

impl SimState {
    /// Validate the trace, enqueue every arrival plus the first scheduling
    /// round, and build the initial region state.
    pub(crate) fn new(
        config: &SimulationConfig,
        jobs: Vec<JobSpec>,
    ) -> Result<Self, SimulationError> {
        // Assignments are keyed by job id; a duplicate would leave one twin
        // pending forever (the round loop would never drain), so reject the
        // malformed trace up front with a typed error.
        let mut seen_ids: BTreeSet<JobId> = BTreeSet::new();
        for job in &jobs {
            if !seen_ids.insert(job.id) {
                return Err(SimulationError::DuplicateJobId { id: job.id });
            }
        }

        let mut state = Self::empty(config);
        state.seen_ids = seen_ids;
        state.runtimes = vec![JobRuntime::default(); jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            state
                .queue
                .push(job.submit_time.value(), Event::Arrival(i))?;
        }
        let first_time = jobs.first().map(|j| j.submit_time.value()).unwrap_or(0.0);
        state.queue.push(first_time, Event::Round)?;
        state.jobs = jobs;
        state.last_time = first_time;
        state.first_time = first_time;
        Ok(state)
    }

    /// An engine state with no jobs and no queued events — the starting
    /// point of the online driver, which injects arrivals while the
    /// campaign runs ([`SimState::push_job`]) instead of preloading a trace.
    pub(crate) fn empty(config: &SimulationConfig) -> Self {
        let participating = config.region_list();
        let regions: Vec<RegionRuntime> = config
            .regions
            .iter()
            .map(|(r, servers)| RegionRuntime::new(*r, *servers))
            .collect();
        let region_slot: BTreeMap<Region, usize> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.region, i))
            .collect();
        Self {
            jobs: Vec::new(),
            seen_ids: BTreeSet::new(),
            participating,
            regions,
            region_slot,
            queue: EventQueue::default(),
            interval: config.scheduling_interval.value(),
            tolerance: config.delay_tolerance,
            runtimes: Vec::new(),
            pending: Vec::new(),
            overhead: Vec::new(),
            completed: 0,
            completions: 0,
            last_time: 0.0,
            first_time: 0.0,
        }
    }

    /// Admit a dynamically injected job: validate its id, grow the runtime
    /// table, and enqueue its arrival with the caller-chosen sequence
    /// number (the online driver stamps arrivals from a dedicated low
    /// sequence band so they order ahead of round/decision events on exact
    /// timestamp ties, exactly as a preloaded trace would). The first
    /// admitted job also bootstraps the periodic round chain at its own
    /// submit time, mirroring [`SimState::new`].
    pub(crate) fn push_job(
        &mut self,
        spec: JobSpec,
        arrival_seq: u64,
    ) -> Result<usize, SimulationError> {
        if !self.seen_ids.insert(spec.id) {
            return Err(SimulationError::DuplicateJobId { id: spec.id });
        }
        let index = self.jobs.len();
        let time = spec.submit_time.value();
        self.queue
            .push_with_seq(time, arrival_seq, Event::Arrival(index))?;
        if index == 0 {
            self.queue.push(time, Event::Round)?;
            self.first_time = time;
            self.last_time = time;
        }
        self.runtimes.push(JobRuntime::default());
        self.jobs.push(spec);
        Ok(index)
    }

    /// A job arrived at its home region's decision controller.
    pub(crate) fn handle_arrival(&mut self, i: usize, time: f64) {
        self.pending.push((i, time, 0));
    }

    /// Snapshot the scheduler-visible state for a round: the pending jobs
    /// (with received times and deferral counts) and the per-region views.
    pub(crate) fn snapshot(&self) -> (Vec<PendingJob>, Vec<RegionView>) {
        let pending_jobs = self
            .pending
            .iter()
            .map(|&(i, received, deferrals)| PendingJob {
                spec: self.jobs[i].clone(),
                received_at: Seconds::new(received),
                deferrals,
            })
            .collect();
        let views = self.regions.iter().map(|r| r.view()).collect();
        (pending_jobs, views)
    }

    /// Commit a round's decision: enact the placements, count a deferral for
    /// every snapshot job left pending, and schedule the next round.
    ///
    /// `snapshot_len` is the pending-pool size when the round's snapshot was
    /// taken and `seq_base` the sequence block reserved at that moment (see
    /// [`EventQueue::reserve`]). The decision's `Ready` events are stamped
    /// with `seq_base + k` and the next round with `seq_base + snapshot_len`
    /// — the exact keys a synchronous inline commit hands out — so the
    /// pipelined driver may ingest arrivals between snapshot and commit
    /// without perturbing event order. Assignments are matched against the
    /// snapshot prefix of the pending pool only: a decision can never reach
    /// jobs that arrived after its snapshot, in either engine mode.
    /// Returns the placements actually enacted (in decision order), so the
    /// online driver can notify the requests they answer; offline replays
    /// discard the list.
    pub(crate) fn commit_round(
        &mut self,
        decision: &SchedulingDecision,
        snapshot_len: usize,
        seq_base: u64,
        now: f64,
        config: &SimulationConfig,
    ) -> Result<Vec<EnactedPlacement>, SimulationError> {
        let by_id: BTreeMap<JobId, (usize, u32)> = self
            .pending
            .iter()
            .take(snapshot_len)
            .map(|&(i, _, deferrals)| (self.jobs[i].id, (i, deferrals)))
            .collect();
        let mut enacted: Vec<EnactedPlacement> = Vec::new();
        let mut assigned: Vec<usize> = Vec::new();
        for a in &decision.assignments {
            let Some(&(i, deferrals)) = by_id.get(&a.job) else {
                continue; // Unknown or already-scheduled job id: ignore.
            };
            if !self.participating.contains(&a.region) || self.runtimes[i].assigned_region.is_some()
            {
                continue;
            }
            let transfer_time = config
                .transfer
                .transfer_time(
                    self.jobs[i].home_region,
                    a.region,
                    self.jobs[i].package_bytes,
                )
                .value();
            self.runtimes[i].assigned_region = Some(a.region);
            self.runtimes[i].transfer_time = transfer_time;
            let slot = self.region_slot[&a.region];
            self.regions[slot].inbound += 1;
            self.queue.push_with_seq(
                now + transfer_time,
                seq_base + assigned.len() as u64,
                Event::Ready(i),
            )?;
            assigned.push(i);
            enacted.push(EnactedPlacement {
                job: i,
                region: a.region,
                transfer_time,
                deferrals,
            });
        }
        // Drop the assigned jobs from the pool; jobs that were *offered*
        // this round (the snapshot prefix) and stayed count one more
        // deferral. Arrivals ingested after the snapshot are untouched.
        let mut position = 0usize;
        self.pending.retain_mut(|entry| {
            let offered = position < snapshot_len;
            position += 1;
            if assigned.contains(&entry.0) {
                return false;
            }
            if offered {
                entry.2 += 1;
            }
            true
        });
        if self.completed < self.jobs.len() {
            self.queue.push_with_seq(
                now + self.interval,
                seq_base + snapshot_len as u64,
                Event::Round,
            )?;
        }
        Ok(enacted)
    }

    /// A job's package transfer completed: start it or queue it in its
    /// assigned region.
    pub(crate) fn handle_ready(&mut self, i: usize, time: f64) -> Result<(), SimulationError> {
        // Name the job by its trace id, not the internal array index
        // `Event::describe` would render — the two only coincide for 0..n
        // traces.
        let region =
            self.runtimes[i]
                .assigned_region
                .ok_or_else(|| SimulationError::UnassignedJob {
                    job: self.jobs[i].id,
                    event: format!("readiness of job {}", self.jobs[i].id.0),
                })?;
        let slot = self.region_slot[&region];
        self.regions[slot].advance_to(time);
        self.regions[slot].inbound = self.regions[slot].inbound.saturating_sub(1);
        if self.regions[slot].busy < self.regions[slot].servers {
            self.regions[slot].busy += 1;
            self.runtimes[i].started = true;
            self.runtimes[i].start_time = time;
            self.queue.push(
                time + self.jobs[i].actual_execution_time.value(),
                Event::Complete(i),
            )?;
        } else {
            self.regions[slot].queue.push_back(i);
        }
        Ok(())
    }

    /// A job finished executing: free the server (or admit the next queued
    /// job) and return the record footprint accounting needs.
    pub(crate) fn handle_complete(
        &mut self,
        i: usize,
        time: f64,
    ) -> Result<CompletionRecord, SimulationError> {
        let region =
            self.runtimes[i]
                .assigned_region
                .ok_or_else(|| SimulationError::UnassignedJob {
                    job: self.jobs[i].id,
                    event: format!("completion of job {}", self.jobs[i].id.0),
                })?;
        let slot = self.region_slot[&region];
        self.regions[slot].advance_to(time);
        self.runtimes[i].completed = true;
        self.runtimes[i].completion_time = time;
        self.completed += 1;
        let record = CompletionRecord {
            index: self.completions,
            spec: self.jobs[i].clone(),
            runtime: self.runtimes[i],
        };
        self.completions += 1;
        // Free the server and admit the next queued job, if any.
        if let Some(next) = self.regions[slot].queue.pop_front() {
            self.runtimes[next].started = true;
            self.runtimes[next].start_time = time;
            self.queue.push(
                time + self.jobs[next].actual_execution_time.value(),
                Event::Complete(next),
            )?;
        } else {
            self.regions[slot].busy -= 1;
        }
        Ok(record)
    }

    /// Whether the campaign is finished: every job completed, nothing
    /// pending, and only periodic rounds left queued.
    pub(crate) fn should_stop(&self) -> bool {
        self.completed == self.jobs.len()
            && self.pending.is_empty()
            && self.queue.only_rounds_left()
    }

    /// Close the utilization integrals and return
    /// `(makespan, mean_utilization)`.
    pub(crate) fn finalize(&mut self) -> (f64, f64) {
        for r in &mut self.regions {
            r.advance_to(self.last_time);
        }
        let makespan = (self.last_time - self.first_time).max(0.0);
        let capacity_seconds: f64 = self
            .regions
            .iter()
            .map(|r| r.servers as f64 * makespan)
            .sum();
        let busy_seconds: f64 = self.regions.iter().map(|r| r.busy_server_seconds).sum();
        let mean_utilization = if capacity_seconds > 0.0 {
            busy_seconds / capacity_seconds
        } else {
            0.0
        };
        (makespan, mean_utilization)
    }
}

/// Run one `Scheduler::schedule` call, timing it and attributing the solver
/// work spent during the call (cold vs warm solves, pivots, nodes, cache
/// traffic). Both engine drivers record exactly this measurement per round,
/// so the per-round `OverheadSample::solver` deltas cannot diverge between
/// modes.
pub(crate) fn timed_schedule(
    scheduler: &mut dyn Scheduler,
    ctx: &SchedulingContext<'_>,
) -> (SchedulingDecision, f64, Option<SolverActivity>) {
    let before = scheduler.solver_activity();
    // lint:allow(DET002: OverheadSample wall_clock timing capture; scrubbed from schedules by without_wall_clock)
    let started = Instant::now();
    let decision = scheduler.schedule(ctx);
    let elapsed = started.elapsed().as_secs_f64();
    let solver = match (before, scheduler.solver_activity()) {
        (Some(before), Some(after)) => Some(after.delta_since(&before)),
        _ => None,
    };
    (decision, elapsed, solver)
}

impl<P: ConditionsProvider> Simulator<P> {
    /// Create a simulator. Fails if the configuration is invalid.
    pub fn new(config: SimulationConfig, provider: P) -> Result<Self, SimulationError> {
        config.validate()?;
        let mut datacenter = config.datacenter;
        datacenter.server = datacenter
            .server
            .perturbed_embodied(config.embodied_perturbation);
        let estimator = FootprintEstimator::new(datacenter);
        Ok(Self {
            config,
            provider,
            estimator,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The footprint estimator (after applying any embodied perturbation).
    pub fn estimator(&self) -> &FootprintEstimator {
        &self.estimator
    }

    /// Run the campaign: replay `jobs` (sorted by submit time) under
    /// `scheduler` and return the full report.
    ///
    /// Dispatches on the configured [`EngineMode`] (after
    /// [`EngineMode::normalized`], so a zero-worker pipeline runs
    /// synchronously). The produced schedule is byte-identical across
    /// modes.
    ///
    /// Fails if the trace contains duplicate job ids, if the trace or
    /// transfer model would produce an event with a non-finite timestamp
    /// (see [`SimulationError::NonFiniteEventTime`]), or — pipelined mode
    /// only — if a pipeline stage dies or violates the commit protocol.
    pub fn run(
        &self,
        jobs: &[JobSpec],
        scheduler: &mut dyn Scheduler,
    ) -> Result<SimulationReport, SimulationError> {
        match self.config.engine.normalized() {
            EngineMode::Sync => self.run_sync(jobs, scheduler),
            EngineMode::Pipelined { workers } => {
                pipeline::run_pipelined(self, jobs, scheduler, workers)
            }
        }
    }

    /// Run a campaign against a *live* arrival source instead of a
    /// preloaded trace: jobs received over `arrivals` are injected into the
    /// running event loop, and every enacted placement is reported over
    /// `placements` as it commits. See [`online`] for the pacing rules
    /// ([`clock::ClockMode`]), the determinism guarantee (the recorded
    /// trace replays offline to the byte-identical schedule), and a usage
    /// example.
    ///
    /// Dispatches on the configured [`EngineMode`] exactly like
    /// [`Simulator::run`]: under `Sync` the scheduler solves inline on the
    /// event loop, under `Pipelined` it runs on the dedicated solver stage
    /// and arrivals — queued *and* newly injected — are ingested while a
    /// solve is in flight. The online pipeline always runs exactly one
    /// auxiliary thread (the solver stage) with footprint accounting
    /// inline, whatever worker count the mode names — so
    /// [`crate::PipelineStats`] reports `workers: 1, accounting_shards: 0`
    /// for any online `Pipelined { workers: n ≥ 1 }` run. Schedules are
    /// unaffected (accounting placement never changes outcomes), and the
    /// scrubbed-summary identity with offline replays holds regardless
    /// because [`CampaignSummary::without_wall_clock`] drops the pipeline
    /// stats.
    ///
    /// ```
    /// use waterwise_cluster::{
    ///     ClockMode, Scheduler, SchedulingContext, SchedulingDecision, SimulationConfig,
    ///     Simulator,
    /// };
    /// use waterwise_sustain::{KilowattHours, Seconds};
    /// use waterwise_telemetry::{Region, SyntheticTelemetry};
    /// use waterwise_traces::{Benchmark, JobId, JobSpec};
    ///
    /// struct Home;
    /// impl Scheduler for Home {
    ///     fn name(&self) -> &str {
    ///         "home"
    ///     }
    ///     fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
    ///         SchedulingDecision::from_pairs(
    ///             ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
    ///         )
    ///     }
    /// }
    ///
    /// let simulator = Simulator::new(
    ///     SimulationConfig::paper_default(40, 0.5),
    ///     SyntheticTelemetry::with_seed(1),
    /// )
    /// .unwrap();
    /// let (jobs_tx, jobs_rx) = std::sync::mpsc::sync_channel(8);
    /// let (notice_tx, notice_rx) = std::sync::mpsc::sync_channel(8);
    /// jobs_tx
    ///     .send(JobSpec {
    ///         id: JobId(1),
    ///         benchmark: Benchmark::Dedup,
    ///         submit_time: Seconds::new(5.0),
    ///         home_region: Region::Oregon,
    ///         actual_execution_time: Seconds::new(120.0),
    ///         actual_energy: KilowattHours::new(0.01),
    ///         estimated_execution_time: Seconds::new(120.0),
    ///         estimated_energy: KilowattHours::new(0.01),
    ///         package_bytes: 1,
    ///     })
    ///     .unwrap();
    /// drop(jobs_tx); // closing the source lets the run drain and return
    ///
    /// let online = simulator
    ///     .run_online(&mut Home, jobs_rx, notice_tx, ClockMode::Discrete)
    ///     .unwrap();
    /// let notice = notice_rx.recv().unwrap();
    /// assert_eq!(notice.region, Region::Oregon);
    /// assert_eq!(online.report.outcomes.len(), 1);
    /// // The recorded trace replays offline to the identical schedule.
    /// let replay = simulator.run(&online.trace, &mut Home).unwrap();
    /// assert_eq!(replay.outcomes, online.report.outcomes);
    /// ```
    pub fn run_online(
        &self,
        scheduler: &mut dyn Scheduler,
        arrivals: std::sync::mpsc::Receiver<JobSpec>,
        placements: std::sync::mpsc::SyncSender<online::PlacementNotice>,
        clock: clock::ClockMode,
    ) -> Result<online::OnlineReport, SimulationError> {
        online::run_online(self, scheduler, arrivals, placements, clock)
    }

    /// Run one online campaign whose arrivals carry caller-allocated
    /// low-band sequence numbers ([`online::SequencedJob`]) instead of
    /// receipt-order ones.
    ///
    /// [`Simulator::run_online`] breaks exact-timestamp ties by receipt
    /// order, which is fine for a single ingestion thread but racy when a
    /// multi-session admission layer funnels concurrent tenants into one
    /// engine: whichever session's submission happened to win the queue
    /// would win the tie, and the schedule would depend on thread timing.
    /// Here the admission layer allocates each arrival's sequence itself —
    /// e.g. `waterwise-service` partitions the band per session
    /// (`session << 32 | request index`) — so tie order is a pure function
    /// of the allocated sequences and the identical schedule is reproduced
    /// by re-injecting the journaled `(spec, seq)` pairs in any order.
    ///
    /// Sequences must be unique and strictly below
    /// [`online::ONLINE_ARRIVAL_SEQ_LIMIT`]; violations fail the run with
    /// [`SimulationError::ArrivalSeqOutOfBand`] /
    /// [`SimulationError::ArrivalSeqReused`]. Everything else — clock
    /// pacing, the watermark rule, monotone stamps, engine modes — behaves
    /// exactly as in [`Simulator::run_online`].
    pub fn run_online_sequenced(
        &self,
        scheduler: &mut dyn Scheduler,
        arrivals: std::sync::mpsc::Receiver<online::SequencedJob>,
        placements: std::sync::mpsc::SyncSender<online::PlacementNotice>,
        clock: clock::ClockMode,
    ) -> Result<online::OnlineReport, SimulationError> {
        online::run_online_sequenced(self, scheduler, arrivals, placements, clock)
    }

    /// The conditions provider the engine accounts footprints with.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// The synchronous driver: every stage of the slot lifecycle runs
    /// inline on the caller's thread.
    fn run_sync(
        &self,
        jobs: &[JobSpec],
        scheduler: &mut dyn Scheduler,
    ) -> Result<SimulationReport, SimulationError> {
        let mut state = SimState::new(&self.config, jobs.to_vec())?;
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());

        while let Some(QueuedEvent { time, event, .. }) = state.queue.pop() {
            state.last_time = time;
            match event {
                Event::Arrival(i) => state.handle_arrival(i, time),
                Event::Round => {
                    if !state.pending.is_empty() {
                        let (pending_jobs, views) = state.snapshot();
                        let batch = pending_jobs.len();
                        let seq_base = state.queue.reserve(batch as u64 + 1);
                        let ctx = SchedulingContext {
                            now: Seconds::new(time),
                            pending: &pending_jobs,
                            regions: &views,
                            delay_tolerance: state.tolerance,
                            transfer: &self.config.transfer,
                        };
                        let (decision, elapsed, solver) = timed_schedule(scheduler, &ctx);
                        state.overhead.push(OverheadSample {
                            sim_time: Seconds::new(time),
                            wall_clock: Seconds::new(elapsed),
                            // The inline solve blocks the event loop for its
                            // full duration.
                            commit_wait: Seconds::new(elapsed),
                            batch_size: batch,
                            solver,
                        });
                        state.commit_round(&decision, batch, seq_base, time, &self.config)?;
                    } else if state.completed < jobs.len() {
                        state.queue.push(time + state.interval, Event::Round)?;
                    }
                }
                Event::Ready(i) => state.handle_ready(i, time)?,
                Event::Complete(i) => {
                    let record = state.handle_complete(i, time)?;
                    outcomes.push(self.record_outcome(
                        &record.spec,
                        &record.runtime,
                        state.tolerance,
                    )?);
                }
            }
            if state.should_stop() {
                // Drain any remaining Round events implicitly by stopping.
                break;
            }
        }

        let (makespan, mean_utilization) = state.finalize();
        let summary = CampaignSummary::from_outcomes(&outcomes, &state.overhead, mean_utilization);
        Ok(SimulationReport {
            scheduler_name: scheduler.name().to_string(),
            outcomes,
            overhead: state.overhead,
            summary,
            makespan: Seconds::new(makespan),
        })
    }

    /// Footprint accounting for one completed job: estimate the execution
    /// and transfer footprints under the conditions at the job's start time
    /// and derive the service-time verdicts. Pure with respect to engine
    /// state, which is what lets the pipelined driver run it on accounting
    /// shards.
    pub(crate) fn record_outcome(
        &self,
        job: &JobSpec,
        runtime: &JobRuntime,
        tolerance: f64,
    ) -> Result<JobOutcome, SimulationError> {
        let region = runtime
            .assigned_region
            .ok_or_else(|| SimulationError::UnassignedJob {
                job: job.id,
                event: format!("outcome of job {}", job.id.0),
            })?;
        let start = Seconds::new(runtime.start_time);
        let conditions = self.provider.conditions(region, start);
        let usage = JobResourceUsage::new(job.actual_energy, job.actual_execution_time);
        let footprint = self.estimator.estimate(usage, conditions);
        let transfer_footprint = if region == job.home_region {
            Default::default()
        } else {
            let energy =
                self.config
                    .transfer
                    .transfer_energy(job.home_region, region, job.package_bytes);
            // The transfer consumes energy along the path; attribute it to the
            // destination region's conditions and exclude embodied terms.
            self.estimator
                .estimate_operational(JobResourceUsage::new(energy, Seconds::zero()), conditions)
        };
        let service_time = runtime.completion_time - job.submit_time.value();
        let allowed = (1.0 + tolerance) * job.actual_execution_time.value();
        Ok(JobOutcome {
            job: job.id,
            home_region: job.home_region,
            executed_region: region,
            submit_time: job.submit_time,
            start_time: start,
            completion_time: Seconds::new(runtime.completion_time),
            execution_time: job.actual_execution_time,
            footprint,
            transfer_footprint,
            transfer_time: Seconds::new(runtime.transfer_time),
            violated_tolerance: service_time > allowed + 1e-6,
        })
    }
}
