//! Per-job outcomes and campaign-level summary metrics.

use crate::scheduler::SolverActivity;
use serde::{Deserialize, Serialize};
use waterwise_sustain::{Co2Grams, FootprintBreakdown, Liters, Seconds};
use waterwise_telemetry::Region;
use waterwise_traces::JobId;

/// The recorded outcome of one job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Which job.
    pub job: JobId,
    /// The job's home region.
    pub home_region: Region,
    /// Where it actually executed.
    pub executed_region: Region,
    /// Submission time.
    pub submit_time: Seconds,
    /// Time the job started executing.
    pub start_time: Seconds,
    /// Time the job finished.
    pub completion_time: Seconds,
    /// Actual execution time charged.
    pub execution_time: Seconds,
    /// Execution footprint (carbon + water) under the conditions at start.
    pub footprint: FootprintBreakdown,
    /// Additional footprint caused by the inter-region package transfer
    /// (zero when the job ran in its home region).
    pub transfer_footprint: FootprintBreakdown,
    /// Transfer latency incurred (zero when the job ran at home).
    pub transfer_time: Seconds,
    /// Whether the job violated its delay tolerance.
    pub violated_tolerance: bool,
}

impl JobOutcome {
    /// Service time: completion − submission.
    pub fn service_time(&self) -> Seconds {
        Seconds::new(self.completion_time.value() - self.submit_time.value())
    }

    /// Service time normalized to the execution time (1.0 = no stretch), the
    /// metric of Table 2.
    pub fn service_stretch(&self) -> f64 {
        if self.execution_time.value() <= 0.0 {
            1.0
        } else {
            self.service_time().value() / self.execution_time.value()
        }
    }

    /// Total carbon including transfer overhead.
    pub fn total_carbon(&self) -> Co2Grams {
        self.footprint.total_carbon() + self.transfer_footprint.total_carbon()
    }

    /// Total effective water including transfer overhead.
    pub fn total_water(&self) -> Liters {
        self.footprint.total_water() + self.transfer_footprint.total_water()
    }

    /// Whether the job was migrated away from its home region.
    pub fn migrated(&self) -> bool {
        self.home_region != self.executed_region
    }
}

/// One sample of scheduler decision-making overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadSample {
    /// Simulation time of the scheduling round.
    pub sim_time: Seconds,
    /// Wall-clock time the scheduler took to decide.
    pub wall_clock: Seconds,
    /// Wall-clock time the *event stage* spent blocked waiting for this
    /// round's decision to commit. In the synchronous engine this equals
    /// [`OverheadSample::wall_clock`] (the solve runs inline); in the
    /// pipelined engine it is smaller whenever arrival ingestion overlapped
    /// the solve — the per-round stall the pipeline removed from the event
    /// path.
    pub commit_wait: Seconds,
    /// Number of pending jobs offered in the round.
    pub batch_size: usize,
    /// Solver work spent in this round (`None` for schedulers that do not
    /// run an optimization solver).
    pub solver: Option<SolverActivity>,
}

/// Occupancy and stall counters of one pipelined-engine run, reported
/// through [`CampaignSummary::pipeline`] (`None` for synchronous runs).
///
/// The wall-clock fields are measurements and therefore never repeat
/// exactly; [`CampaignSummary::without_wall_clock`] drops the whole struct
/// so byte-identity comparisons across engine modes stay meaningful. The
/// *counter* fields (`solve_requests`, `overlapped_arrivals`,
/// `accounted_jobs`) are deterministic for a fixed seed: the event stage
/// always ingests every arrival ahead of the commit barrier, whether or not
/// the solver stage finished first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Auxiliary worker threads the mode requested (solver stage +
    /// accounting shards).
    pub workers: usize,
    /// Footprint-accounting shards that ran (`workers − 1`).
    pub accounting_shards: usize,
    /// Round snapshots shipped to the solver stage.
    pub solve_requests: usize,
    /// Arrival events ingested while a solve was in flight (ahead of the
    /// commit barrier) instead of stalling behind it.
    pub overlapped_arrivals: usize,
    /// Job outcomes whose footprint accounting ran on an accounting shard.
    pub accounted_jobs: usize,
    /// Total wall-clock the solver stage spent inside `Scheduler::schedule`.
    pub solver_busy: Seconds,
    /// Total wall-clock the event stage spent blocked on decision commits.
    pub commit_wait: Seconds,
}

impl PipelineStats {
    /// Wall-clock removed from the event path: solver busy time the event
    /// stage did *not* spend blocked (zero when every solve fully stalled
    /// the event loop, as in the synchronous engine).
    pub fn overlap_seconds(&self) -> Seconds {
        Seconds::new((self.solver_busy.value() - self.commit_wait.value()).max(0.0))
    }

    /// Fraction of solver busy time that stalled the event stage
    /// (1.0 = fully synchronous behavior, lower is better overlap).
    pub fn stall_fraction(&self) -> f64 {
        if self.solver_busy.value() <= 0.0 {
            0.0
        } else {
            (self.commit_wait.value() / self.solver_busy.value()).min(1.0)
        }
    }
}

/// Aggregated results of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Number of jobs that completed.
    pub total_jobs: usize,
    /// Total carbon footprint (execution + transfer) in gCO2.
    pub total_carbon: Co2Grams,
    /// Total effective water footprint (execution + transfer) in liters.
    pub total_water: Liters,
    /// Mean service-time stretch (Table 2, "service time normalized to
    /// execution time").
    pub mean_service_stretch: f64,
    /// Fraction of jobs that violated their delay tolerance (Table 2).
    pub violation_fraction: f64,
    /// Fraction of jobs executed away from their home region.
    pub migration_fraction: f64,
    /// Number of jobs executed per region (indexed by [`Region::index`]).
    pub jobs_per_region: [usize; 5],
    /// Mean utilization across regions (busy server-seconds / capacity).
    pub mean_utilization: f64,
    /// Mean scheduler decision time per round (wall clock).
    pub mean_decision_time: Seconds,
    /// Decision time as a fraction of the mean job execution time (Fig. 13's
    /// y-axis).
    pub decision_overhead_fraction: f64,
    /// Total solver work across the campaign (zeroed for schedulers without
    /// a solver). Deterministic for a fixed seed, unlike the wall-clock
    /// fields.
    pub solver: SolverActivity,
    /// Pipeline occupancy/stall counters (`None` when the campaign ran on
    /// the synchronous engine).
    pub pipeline: Option<PipelineStats>,
}

impl CampaignSummary {
    /// Compute a summary from per-job outcomes plus engine-level statistics.
    pub fn from_outcomes(
        outcomes: &[JobOutcome],
        overhead: &[OverheadSample],
        mean_utilization: f64,
    ) -> Self {
        let total_jobs = outcomes.len();
        let total_carbon = outcomes.iter().map(|o| o.total_carbon()).sum();
        let total_water = outcomes.iter().map(|o| o.total_water()).sum();
        let mean_service_stretch = if total_jobs == 0 {
            1.0
        } else {
            outcomes.iter().map(|o| o.service_stretch()).sum::<f64>() / total_jobs as f64
        };
        let violation_fraction = if total_jobs == 0 {
            0.0
        } else {
            outcomes.iter().filter(|o| o.violated_tolerance).count() as f64 / total_jobs as f64
        };
        let migration_fraction = if total_jobs == 0 {
            0.0
        } else {
            outcomes.iter().filter(|o| o.migrated()).count() as f64 / total_jobs as f64
        };
        let mut jobs_per_region = [0usize; 5];
        for o in outcomes {
            jobs_per_region[o.executed_region.index()] += 1;
        }
        let mean_decision_time = if overhead.is_empty() {
            Seconds::zero()
        } else {
            Seconds::new(
                overhead.iter().map(|s| s.wall_clock.value()).sum::<f64>() / overhead.len() as f64,
            )
        };
        let mean_execution = if total_jobs == 0 {
            0.0
        } else {
            outcomes
                .iter()
                .map(|o| o.execution_time.value())
                .sum::<f64>()
                / total_jobs as f64
        };
        let decision_overhead_fraction = if mean_execution <= 0.0 {
            0.0
        } else {
            mean_decision_time.value() / mean_execution
        };
        let mut solver = SolverActivity::default();
        for sample in overhead.iter().filter_map(|s| s.solver.as_ref()) {
            solver.accumulate(sample);
        }
        Self {
            total_jobs,
            total_carbon,
            total_water,
            mean_service_stretch,
            violation_fraction,
            migration_fraction,
            jobs_per_region,
            mean_utilization,
            mean_decision_time,
            decision_overhead_fraction,
            solver,
            pipeline: None,
        }
    }

    /// This summary with pipeline occupancy counters attached (builder form
    /// used by the pipelined engine driver).
    pub fn with_pipeline(mut self, stats: PipelineStats) -> Self {
        self.pipeline = Some(stats);
        self
    }

    /// This summary with the wall-clock-derived fields
    /// ([`CampaignSummary::mean_decision_time`],
    /// [`CampaignSummary::decision_overhead_fraction`], and
    /// [`CampaignSummary::pipeline`]) zeroed out.
    ///
    /// Every other field is a pure function of the seeded inputs, so two
    /// logically identical campaigns — e.g. serial versus parallel
    /// `run_all`, synchronous versus pipelined engine mode, or two runs
    /// with the same seed — compare byte-identical through this view
    /// (wall-clock timings never repeat exactly, and pipeline occupancy is
    /// a property of the execution mode, not of the schedule).
    pub fn without_wall_clock(&self) -> Self {
        Self {
            mean_decision_time: Seconds::zero(),
            decision_overhead_fraction: 0.0,
            pipeline: None,
            ..self.clone()
        }
    }

    /// Percentage carbon saving of this campaign relative to a baseline
    /// (positive = this campaign emits less).
    pub fn carbon_saving_vs(&self, baseline: &CampaignSummary) -> f64 {
        saving_percent(baseline.total_carbon.value(), self.total_carbon.value())
    }

    /// Percentage water saving of this campaign relative to a baseline.
    pub fn water_saving_vs(&self, baseline: &CampaignSummary) -> f64 {
        saving_percent(baseline.total_water.value(), self.total_water.value())
    }

    /// Distribution of executed jobs across regions as fractions.
    pub fn region_distribution(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        if self.total_jobs == 0 {
            return out;
        }
        for (i, n) in self.jobs_per_region.iter().enumerate() {
            out[i] = *n as f64 / self.total_jobs as f64;
        }
        out
    }
}

/// Order-sensitive 64-bit FNV-1a digest of a schedule.
///
/// Hashes every deterministic field of every [`JobOutcome`] — identity,
/// placement, all event times, footprints (execution and transfer), and the
/// violation flag — in outcome order, with floats folded in by their exact
/// IEEE-754 bit patterns. Two campaigns produce the same digest exactly when
/// their schedules and accounting are byte-identical, which makes the digest
/// the one-line form of the workspace's replay contract: sync vs pipelined
/// engines, warm vs cold solves, every solution-cache mode, and online
/// ingestion vs offline replay must all collide on it. Wall-clock
/// measurements never enter the hash.
///
/// ```
/// use waterwise_cluster::schedule_digest;
///
/// assert_eq!(schedule_digest(&[]), 0xcbf2_9ce4_8422_2325); // FNV offset basis
/// ```
pub fn schedule_digest(outcomes: &[JobOutcome]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for o in outcomes {
        eat(&o.job.0.to_le_bytes());
        eat(&[o.home_region.index() as u8, o.executed_region.index() as u8]);
        for t in [
            o.submit_time,
            o.start_time,
            o.completion_time,
            o.execution_time,
            o.transfer_time,
        ] {
            eat(&t.value().to_bits().to_le_bytes());
        }
        for v in [
            o.footprint.total_carbon().value(),
            o.footprint.total_water().value(),
            o.transfer_footprint.total_carbon().value(),
            o.transfer_footprint.total_water().value(),
        ] {
            eat(&v.to_bits().to_le_bytes());
        }
        eat(&[o.violated_tolerance as u8]);
    }
    hash
}

/// Percentage saving of `candidate` relative to `baseline` (positive when the
/// candidate is smaller).
///
/// A non-positive or non-finite baseline (for example a zero-job campaign
/// with no footprint at all) has no meaningful saving; the result is NaN so
/// renderers can show a placeholder (`waterwise-bench` prints `—`) instead
/// of a fabricated `0.0%`.
///
/// ```
/// use waterwise_cluster::saving_percent;
///
/// assert_eq!(saving_percent(200.0, 150.0), 25.0);
/// assert_eq!(saving_percent(200.0, 250.0), -25.0);
/// assert!(saving_percent(0.0, 150.0).is_nan());
/// ```
pub fn saving_percent(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 || !baseline.is_finite() {
        f64::NAN
    } else {
        (baseline - candidate) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwise_sustain::{CarbonFootprint, WaterFootprint};

    fn outcome(job: u64, home: Region, executed: Region, carbon: f64, water: f64) -> JobOutcome {
        JobOutcome {
            job: JobId(job),
            home_region: home,
            executed_region: executed,
            submit_time: Seconds::new(0.0),
            start_time: Seconds::new(10.0),
            completion_time: Seconds::new(110.0),
            execution_time: Seconds::new(100.0),
            footprint: FootprintBreakdown {
                carbon: CarbonFootprint {
                    operational: Co2Grams::new(carbon),
                    embodied: Co2Grams::zero(),
                },
                water: WaterFootprint {
                    offsite: Liters::new(water),
                    onsite: Liters::zero(),
                    embodied: Liters::zero(),
                },
            },
            transfer_footprint: FootprintBreakdown::default(),
            transfer_time: Seconds::zero(),
            violated_tolerance: false,
        }
    }

    #[test]
    fn service_stretch_and_migration() {
        let o = outcome(1, Region::Oregon, Region::Zurich, 10.0, 5.0);
        assert!((o.service_stretch() - 1.1).abs() < 1e-12);
        assert!(o.migrated());
        assert!(!outcome(2, Region::Oregon, Region::Oregon, 1.0, 1.0).migrated());
    }

    #[test]
    fn summary_aggregates_totals() {
        let outcomes = vec![
            outcome(1, Region::Oregon, Region::Oregon, 100.0, 50.0),
            outcome(2, Region::Oregon, Region::Zurich, 200.0, 30.0),
        ];
        let s = CampaignSummary::from_outcomes(&outcomes, &[], 0.15);
        assert_eq!(s.total_jobs, 2);
        assert!((s.total_carbon.value() - 300.0).abs() < 1e-9);
        assert!((s.total_water.value() - 80.0).abs() < 1e-9);
        assert!((s.migration_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.jobs_per_region[Region::Oregon.index()], 1);
        assert_eq!(s.jobs_per_region[Region::Zurich.index()], 1);
        let dist: f64 = s.region_distribution().iter().sum();
        assert!((dist - 1.0).abs() < 1e-12);
    }

    #[test]
    fn savings_are_relative_to_baseline() {
        let baseline = CampaignSummary::from_outcomes(
            &[outcome(1, Region::Oregon, Region::Oregon, 200.0, 100.0)],
            &[],
            0.1,
        );
        let better = CampaignSummary::from_outcomes(
            &[outcome(1, Region::Oregon, Region::Zurich, 150.0, 80.0)],
            &[],
            0.1,
        );
        assert!((better.carbon_saving_vs(&baseline) - 25.0).abs() < 1e-9);
        assert!((better.water_saving_vs(&baseline) - 20.0).abs() < 1e-9);
        // A baseline with zero footprint (zero-job campaign) has no defined
        // saving: NaN signals "render a placeholder", never a silent 0%.
        assert!(saving_percent(0.0, 5.0).is_nan());
        assert!(saving_percent(f64::NAN, 5.0).is_nan());
        assert!(saving_percent(-1.0, 5.0).is_nan());
    }

    #[test]
    fn empty_campaign_is_safe() {
        let s = CampaignSummary::from_outcomes(&[], &[], 0.0);
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.violation_fraction, 0.0);
        assert_eq!(s.mean_service_stretch, 1.0);
        assert_eq!(s.decision_overhead_fraction, 0.0);
    }

    #[test]
    fn overhead_statistics() {
        let outcomes = vec![outcome(1, Region::Oregon, Region::Oregon, 1.0, 1.0)];
        let overhead = vec![
            OverheadSample {
                sim_time: Seconds::new(0.0),
                wall_clock: Seconds::new(0.2),
                commit_wait: Seconds::new(0.2),
                batch_size: 10,
                solver: Some(SolverActivity {
                    solves: 2,
                    warm_solves: 0,
                    simplex_pivots: 40,
                    warm_pivots: 0,
                    nodes: 2,
                    ..SolverActivity::default()
                }),
            },
            OverheadSample {
                sim_time: Seconds::new(60.0),
                wall_clock: Seconds::new(0.4),
                commit_wait: Seconds::new(0.1),
                batch_size: 20,
                solver: Some(SolverActivity {
                    solves: 1,
                    warm_solves: 1,
                    simplex_pivots: 10,
                    warm_pivots: 10,
                    nodes: 1,
                    dual_restarts: 1,
                    basis_reuse_hits: 1,
                    bound_flips: 2,
                    cache_exact_hits: 1,
                    cache_hint_hits: 1,
                    cache_misses: 0,
                    cache_evictions: 0,
                }),
            },
        ];
        let s = CampaignSummary::from_outcomes(&outcomes, &overhead, 0.2);
        assert!((s.mean_decision_time.value() - 0.3).abs() < 1e-12);
        assert!((s.decision_overhead_fraction - 0.003).abs() < 1e-12);
        assert_eq!(s.solver.solves, 3);
        assert_eq!(s.solver.warm_solves, 1);
        assert_eq!(s.solver.simplex_pivots, 50);
        assert!((s.solver.warm_solve_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.solver.pivots_per_solve() - 50.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.solver.cache_exact_hits, 1);
        assert_eq!(s.solver.cache_hint_hits, 1);
        assert_eq!(s.solver.cache_lookups(), 2);
        assert!((s.solver.cache_hit_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(s.solver.dual_restarts, 1);
        assert_eq!(s.solver.basis_reuse_hits, 1);
        assert_eq!(s.solver.bound_flips, 2);
        // The dual-restart counters are deterministic solver work, so the
        // wall-clock scrub must keep them intact.
        assert_eq!(s.without_wall_clock().solver, s.solver);
    }

    #[test]
    fn pipeline_stats_overlap_and_stall_fraction() {
        let stats = PipelineStats {
            workers: 2,
            accounting_shards: 1,
            solve_requests: 10,
            overlapped_arrivals: 40,
            accounted_jobs: 100,
            solver_busy: Seconds::new(2.0),
            commit_wait: Seconds::new(0.5),
        };
        assert!((stats.overlap_seconds().value() - 1.5).abs() < 1e-12);
        assert!((stats.stall_fraction() - 0.25).abs() < 1e-12);
        // Degenerate cases: no solver work at all, and a fully stalled run.
        assert_eq!(PipelineStats::default().stall_fraction(), 0.0);
        assert_eq!(PipelineStats::default().overlap_seconds().value(), 0.0);
        let stalled = PipelineStats {
            solver_busy: Seconds::new(1.0),
            commit_wait: Seconds::new(1.2),
            ..PipelineStats::default()
        };
        assert_eq!(stalled.stall_fraction(), 1.0);
        assert_eq!(stalled.overlap_seconds().value(), 0.0);
    }

    #[test]
    fn without_wall_clock_drops_pipeline_stats() {
        let summary = CampaignSummary::from_outcomes(&[], &[], 0.0).with_pipeline(PipelineStats {
            workers: 3,
            ..PipelineStats::default()
        });
        assert!(summary.pipeline.is_some());
        let scrubbed = summary.without_wall_clock();
        assert!(scrubbed.pipeline.is_none());
        // A synchronous summary and its pipelined twin must compare equal
        // through the scrubbed view.
        assert_eq!(
            format!("{:?}", scrubbed),
            format!("{:?}", CampaignSummary::from_outcomes(&[], &[], 0.0))
        );
    }
}
