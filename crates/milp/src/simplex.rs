//! Dense two-phase primal simplex for linear programs.
//!
//! The solver operates on an [`LpProblem`] in "model form": arbitrary finite
//! or infinite variable bounds and `<=` / `>=` / `==` constraints. It
//! converts the problem to standard form internally:
//!
//! * variables with a finite lower bound are shifted so the solver variable
//!   is non-negative;
//! * variables bounded only from above are mirrored;
//! * free variables are split into a difference of two non-negative
//!   variables;
//! * finite upper bounds become explicit constraint rows;
//! * `>=` and `==` rows receive artificial variables driven out in phase 1.
//!
//! Entering-variable selection uses Dantzig's rule with an automatic switch
//! to Bland's rule after a stall, which guarantees termination on degenerate
//! problems.
//!
//! # Warm starts
//!
//! [`solve_with_hint`] accepts a prior primal point (e.g. the previous
//! scheduling slot's solution). The solver uses it to build a *crash basis*:
//! guided pivots bring the hint's support columns into the basis under the
//! standard ratio test (so primal feasibility of the extended problem is
//! preserved), preferring to evict artificial variables on ties. When the
//! crash drives every artificial to zero, phase 1 is skipped entirely and
//! phase 2 starts at (or next to) the hinted vertex; otherwise the solver
//! falls back to a normal phase 1 from the crashed basis. The result is
//! always the same optimum a cold solve finds — only the pivot path differs.
//!
//! # Dual-simplex restarts
//!
//! Branch & bound re-solves the *same* LP with tightened variable bounds at
//! every child node. In the standard form built here, a bound change is a
//! pure right-hand-side change: constraint rows shift by `coeff · Δlower`
//! (or `Δupper` for mirrored variables) and explicit bound rows move to
//! `upper − lower`, while the coefficient matrix, the column layout, and the
//! phase-2 reduced costs are untouched. The parent node's optimal basis
//! therefore stays *dual feasible* for the child, and
//! [`solve_dual_from_snapshot`] restores it from a [`BasisSnapshot`]
//! (captured by [`solve_with_basis_capture`]), replays only the sparse rhs
//! delta, and runs the dual simplex — leaving row with the most negative
//! rhs, entering column by the dual ratio test — instead of a cold
//! two-phase solve. Restarts are gated by a per-variable bound-class check
//! (a bound turning finite would add rows) and by a pivot cap ~10× below
//! the cold auto cap; both failure modes surface as typed outcomes so the
//! caller can fall back to a cold solve explicitly.

use crate::model::Sense;
use crate::workspace::SolverWorkspace;
use serde::{Deserialize, Serialize};

/// A constraint in "model form" for the LP solver.
#[derive(Debug, Clone, PartialEq)]
pub struct LpConstraint {
    /// Sparse coefficients as `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side (constant already folded in).
    pub rhs: f64,
}

/// A linear program in model form (always a minimization).
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (minimized).
    pub costs: Vec<f64>,
    /// Lower bounds (may be `-inf`).
    pub lower: Vec<f64>,
    /// Upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<LpConstraint>,
}

/// Simplex configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexConfig {
    /// Hard cap on pivots across both phases. `0` means "auto" (scaled with
    /// problem size).
    pub max_iterations: usize,
    /// Numerical tolerance for reduced costs, ratio tests, and feasibility.
    pub tolerance: f64,
    /// Number of non-improving pivots after which the solver switches from
    /// Dantzig's rule to Bland's rule to escape degeneracy cycles.
    pub stall_threshold: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        Self {
            max_iterations: 0,
            tolerance: 1e-9,
            stall_threshold: 64,
        }
    }
}

/// Result of a simplex solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// Optimal solution found.
    Optimal {
        /// Objective value (of the minimization).
        objective: f64,
        /// Values of the original decision variables.
        values: Vec<f64>,
        /// Pivots performed.
        iterations: usize,
    },
    /// The constraints admit no feasible point.
    Infeasible {
        /// Pivots performed.
        iterations: usize,
    },
    /// The objective is unbounded below.
    Unbounded {
        /// Pivots performed.
        iterations: usize,
    },
    /// The pivot budget was exhausted.
    IterationLimit {
        /// Pivots performed.
        iterations: usize,
    },
}

/// Where a standard-form row came from, recorded at construction time so a
/// dual restart can recompute the row's rhs under changed variable bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowSource {
    /// The `index`-th model constraint of the [`LpProblem`].
    Constraint(usize),
    /// The explicit upper-bound row of original variable `var`
    /// (`y_var <= upper - lower` in shifted solver space).
    Bound {
        /// Original variable index.
        var: usize,
    },
}

/// Bound-finiteness class of an original variable. The class fully
/// determines how the variable maps onto solver columns (and whether it owns
/// an explicit bound row), so two problems with equal classes per variable
/// share the same standard-form coefficient matrix — only the rhs differs.
fn bound_class(lower: f64, upper: f64) -> u8 {
    match (lower.is_finite(), upper.is_finite()) {
        (true, true) => 0,   // shifted + bound row
        (true, false) => 1,  // shifted only
        (false, true) => 2,  // mirrored
        (false, false) => 3, // split
    }
}

/// Construction-time metadata needed to re-target a final tableau at new
/// variable bounds (see [`BasisSnapshot`]).
#[derive(Debug, Clone, Default)]
struct SnapshotMeta {
    /// Provenance of each row, in tableau order.
    sources: Vec<RowSource>,
    /// Whether the row's rhs sign was flipped during normalization.
    flipped: Vec<bool>,
    /// The initial basic column of each row (slack for `<=` rows, artificial
    /// for `>=`/`==` rows). Column `unit_cols[r]` of `B^-1` is exactly the
    /// `r`-th column of the current inverse, which is what lets the rhs
    /// delta be replayed without refactorizing.
    unit_cols: Vec<usize>,
    /// Standard-form rhs (post sign-normalization) the tableau was last
    /// solved against.
    b0: Vec<f64>,
    /// Per-variable [`bound_class`] at capture time.
    classes: Vec<u8>,
}

/// A final simplex basis captured after an optimal solve, reusable to
/// warm-restart the *same* LP under changed variable bounds with the dual
/// simplex (see [`solve_dual_from_snapshot`]).
///
/// The snapshot owns the final tableau rows; recycle them into a
/// [`SolverWorkspace`] with [`SolverWorkspace::recycle_snapshot`] once the
/// snapshot is no longer needed.
#[derive(Debug, Clone, Default)]
pub struct BasisSnapshot {
    /// Final tableau, `rows x (cols + 1)`, last column rhs.
    rows: Vec<Vec<f64>>,
    /// Basic column of each row.
    basis: Vec<usize>,
    non_artificial_cols: usize,
    cols: usize,
    structural_cols: usize,
    meta: SnapshotMeta,
}

impl BasisSnapshot {
    /// Number of tableau rows held by the snapshot.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether this snapshot can be restored against `problem`: same
    /// variable count, same constraint count, and the same bound-finiteness
    /// class for every variable (a bound turning finite or infinite changes
    /// the standard-form column/row layout, which a restart cannot express).
    pub fn compatible_with(&self, problem: &LpProblem) -> bool {
        if problem.num_vars != self.meta.classes.len() {
            return false;
        }
        let constraint_rows = self
            .meta
            .sources
            .iter()
            .filter(|s| matches!(s, RowSource::Constraint(_)))
            .count();
        if problem.constraints.len() != constraint_rows {
            return false;
        }
        (0..problem.num_vars)
            .all(|i| bound_class(problem.lower[i], problem.upper[i]) == self.meta.classes[i])
    }

    /// Move this snapshot's row buffers out (used by workspace recycling).
    pub(crate) fn into_rows(self) -> Vec<Vec<f64>> {
        self.rows
    }
}

/// Outcome of a dual-simplex restart attempt from a [`BasisSnapshot`].
// One short-lived value per restart attempt, matched immediately at the call
// site — never stored in bulk, so the variant size gap is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum DualOutcome {
    /// The restart ran to completion and produced a definitive verdict
    /// (optimal, infeasible, or unbounded), optionally capturing the new
    /// final basis for further restarts.
    Finished(SimplexOutcome, Option<BasisSnapshot>),
    /// The dual pivot budget (auto-scaled ~10x below the cold cap, see
    /// [`SimplexConfig::max_iterations`]) was exhausted before convergence.
    /// The caller should fall back to a cold solve; the pivots spent here
    /// are reported but deliberately *not* recorded as a solve.
    PivotLimit {
        /// Dual pivots performed before hitting the cap.
        iterations: usize,
    },
    /// The snapshot cannot be applied to this problem: a variable's
    /// bound-finiteness class changed, the constraint set changed shape, or
    /// a numerical guard tripped during the restart. Solve cold instead.
    Incompatible,
}

/// How an original variable maps onto solver (non-negative) variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + y[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - y[col]` (upper bound finite, lower infinite)
    Mirrored { col: usize, upper: f64 },
    /// `x = y[pos] - y[neg]` (free variable)
    Split { pos: usize, neg: usize },
}

struct Tableau {
    /// `rows x (cols + 1)` matrix; the last column is the rhs.
    a: Vec<Vec<f64>>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural + slack/surplus columns (artificials follow).
    non_artificial_cols: usize,
    /// Total number of columns (excluding rhs).
    cols: usize,
}

impl Tableau {
    fn rows(&self) -> usize {
        self.a.len()
    }

    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.cols]
    }

    /// Perform a pivot on (row, col): normalize the pivot row and eliminate
    /// the column from all other rows and the objective row.
    fn pivot(&mut self, row: usize, col: usize, obj_row: &mut [f64], obj_val: &mut f64) {
        let pivot_value = self.a[row][col];
        debug_assert!(pivot_value.abs() > 0.0);
        let inv = 1.0 / pivot_value;
        for value in self.a[row].iter_mut() {
            *value *= inv;
        }
        // Split borrows: copy the pivot row once (cols is small relative to
        // the full tableau and this keeps the inner loop simple and fast).
        let pivot_row = self.a[row].clone();
        for (r, target) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = target[col];
            if factor != 0.0 {
                for (t, p) in target.iter_mut().zip(pivot_row.iter()) {
                    *t -= factor * p;
                }
            }
        }
        let factor = obj_row[col];
        if factor != 0.0 {
            for (o, p) in obj_row.iter_mut().zip(pivot_row.iter()) {
                *o -= factor * p;
            }
            *obj_val -= factor * pivot_row[self.cols];
        }
        self.basis[row] = col;
    }
}

/// Solve a linear program with the two-phase primal simplex (cold start).
pub fn solve(problem: &LpProblem, config: &SimplexConfig) -> SimplexOutcome {
    solve_with_hint(problem, config, None, None)
}

/// Solve a linear program, optionally warm-started from a prior primal point
/// (`hint`, in original-variable space) and reusing allocations from a
/// [`SolverWorkspace`]. Cold/warm pivot counts are recorded on the workspace.
pub fn solve_with_hint(
    problem: &LpProblem,
    config: &SimplexConfig,
    hint: Option<&[f64]>,
    workspace: Option<&mut SolverWorkspace>,
) -> SimplexOutcome {
    let (outcome, _) = Solver::new(problem, config, hint, workspace).run(false);
    outcome
}

/// Like [`solve_with_hint`], but when the solve ends at an optimum the final
/// basis is captured as a [`BasisSnapshot`] (the tableau rows move into the
/// snapshot instead of being recycled). Branch & bound uses the snapshot to
/// dual-restart child-node LPs via [`solve_dual_from_snapshot`].
pub fn solve_with_basis_capture(
    problem: &LpProblem,
    config: &SimplexConfig,
    hint: Option<&[f64]>,
    workspace: Option<&mut SolverWorkspace>,
) -> (SimplexOutcome, Option<BasisSnapshot>) {
    Solver::new(problem, config, hint, workspace).run(true)
}

/// Re-solve `problem` starting from a previously captured basis with the
/// dual simplex. `problem` must be the same LP as the one the snapshot was
/// captured from *except for variable bounds* (this is exactly the branch &
/// bound child-node situation); bound changes only move the standard-form
/// rhs, so the snapshot basis stays dual-feasible and typically re-optimizes
/// in a handful of pivots. Returns [`DualOutcome::Incompatible`] when the
/// bound shape changed and [`DualOutcome::PivotLimit`] when the (reduced)
/// dual pivot cap is exhausted — in both cases the caller should solve cold.
///
/// Successful restarts are recorded on the workspace as warm solves plus a
/// `dual_restarts`/`basis_reuse_hits` pair; failed attempts count only a
/// `dual_restarts` attempt.
pub fn solve_dual_from_snapshot(
    problem: &LpProblem,
    config: &SimplexConfig,
    snapshot: &BasisSnapshot,
    mut workspace: Option<&mut SolverWorkspace>,
) -> DualOutcome {
    if !snapshot.compatible_with(problem) {
        if let Some(ws) = workspace.as_deref_mut() {
            ws.record_dual_restart(false, 0);
        }
        return DualOutcome::Incompatible;
    }
    let (solver, bound_flips) = Solver::from_snapshot(problem, config, snapshot, workspace);
    solver.run_dual(bound_flips)
}

struct Solver<'a> {
    problem: &'a LpProblem,
    config: SimplexConfig,
    var_map: Vec<VarMap>,
    tableau: Tableau,
    /// Costs on solver columns (for phase 2), plus the constant offset from
    /// bound shifts.
    solver_costs: Vec<f64>,
    structural_cols: usize,
    num_artificials: usize,
    iterations: usize,
    max_iterations: usize,
    hint: Option<&'a [f64]>,
    workspace: Option<&'a mut SolverWorkspace>,
    /// Whether the crash basis eliminated every artificial (phase 1 skipped).
    warm_applied: bool,
    /// Whether a hint was offered but the crash failed to clear phase 1.
    hint_rejected: bool,
    /// Construction-time row provenance, kept so the final basis can be
    /// captured as a [`BasisSnapshot`].
    meta: SnapshotMeta,
}

impl<'a> Solver<'a> {
    fn new(
        problem: &'a LpProblem,
        config: &SimplexConfig,
        hint: Option<&'a [f64]>,
        workspace: Option<&'a mut SolverWorkspace>,
    ) -> Self {
        // --- 1. Map original variables to non-negative solver variables. ---
        let mut var_map = Vec::with_capacity(problem.num_vars);
        let mut next_col = 0usize;
        // Extra rows from finite upper bounds on shifted variables, as
        // `(solver column, original variable, upper - lower)`.
        let mut bound_rows: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..problem.num_vars {
            let lo = problem.lower[i];
            let hi = problem.upper[i];
            if lo.is_finite() {
                var_map.push(VarMap::Shifted {
                    col: next_col,
                    lower: lo,
                });
                if hi.is_finite() {
                    bound_rows.push((next_col, i, hi - lo));
                }
                next_col += 1;
            } else if hi.is_finite() {
                var_map.push(VarMap::Mirrored {
                    col: next_col,
                    upper: hi,
                });
                next_col += 1;
            } else {
                var_map.push(VarMap::Split {
                    pos: next_col,
                    neg: next_col + 1,
                });
                next_col += 2;
            }
        }
        let structural_cols = next_col;

        // --- 2. Transform constraints into solver-variable space. ---
        // Each row: dense coefficients over structural columns + rhs + sense.
        struct Row {
            coeffs: Vec<f64>,
            sense: Sense,
            rhs: f64,
            source: RowSource,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + bound_rows.len());
        for (ci, c) in problem.constraints.iter().enumerate() {
            let mut coeffs = vec![0.0; structural_cols];
            let mut rhs = c.rhs;
            for &(var, coeff) in &c.coeffs {
                match var_map[var] {
                    VarMap::Shifted { col, lower } => {
                        coeffs[col] += coeff;
                        rhs -= coeff * lower;
                    }
                    VarMap::Mirrored { col, upper } => {
                        coeffs[col] -= coeff;
                        rhs -= coeff * upper;
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs[pos] += coeff;
                        coeffs[neg] -= coeff;
                    }
                }
            }
            rows.push(Row {
                coeffs,
                sense: c.sense,
                rhs,
                source: RowSource::Constraint(ci),
            });
        }
        for &(col, var, ub) in &bound_rows {
            let mut coeffs = vec![0.0; structural_cols];
            coeffs[col] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::LessEqual,
                rhs: ub,
                source: RowSource::Bound { var },
            });
        }

        // --- 3. Normalize rhs signs and count slack/artificial columns. ---
        let mut flipped = vec![false; rows.len()];
        for (r, row) in rows.iter_mut().enumerate() {
            if row.rhs < 0.0 {
                for c in row.coeffs.iter_mut() {
                    *c = -*c;
                }
                row.rhs = -row.rhs;
                row.sense = match row.sense {
                    Sense::LessEqual => Sense::GreaterEqual,
                    Sense::GreaterEqual => Sense::LessEqual,
                    Sense::Equal => Sense::Equal,
                };
                flipped[r] = true;
            }
        }
        let num_slack = rows
            .iter()
            .filter(|r| matches!(r.sense, Sense::LessEqual | Sense::GreaterEqual))
            .count();
        let num_artificial = rows
            .iter()
            .filter(|r| matches!(r.sense, Sense::GreaterEqual | Sense::Equal))
            .count();
        let non_artificial_cols = structural_cols + num_slack;
        let total_cols = non_artificial_cols + num_artificial;

        // --- 4. Build the tableau (rows pooled via the workspace). ---
        let mut workspace = workspace;
        let m = rows.len();
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|_| match workspace.as_deref_mut() {
                Some(ws) => ws.take_row(total_cols + 1),
                None => vec![0.0; total_cols + 1],
            })
            .collect();
        let mut basis = vec![0usize; m];
        let mut slack_cursor = structural_cols;
        let mut artificial_cursor = non_artificial_cols;
        // The initial basic column of each row is a +1 unit column (slack
        // for `<=`, artificial for `>=`/`==`): tableau column `unit_cols[r]`
        // always holds the r-th column of B^-1, used by dual restarts.
        let mut unit_cols = vec![0usize; m];
        for (r, row) in rows.iter().enumerate() {
            a[r][..structural_cols].copy_from_slice(&row.coeffs);
            a[r][total_cols] = row.rhs;
            match row.sense {
                Sense::LessEqual => {
                    a[r][slack_cursor] = 1.0;
                    basis[r] = slack_cursor;
                    unit_cols[r] = slack_cursor;
                    slack_cursor += 1;
                }
                Sense::GreaterEqual => {
                    a[r][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    a[r][artificial_cursor] = 1.0;
                    basis[r] = artificial_cursor;
                    unit_cols[r] = artificial_cursor;
                    artificial_cursor += 1;
                }
                Sense::Equal => {
                    a[r][artificial_cursor] = 1.0;
                    basis[r] = artificial_cursor;
                    unit_cols[r] = artificial_cursor;
                    artificial_cursor += 1;
                }
            }
        }

        // --- 5. Phase-2 costs on solver columns. ---
        let solver_costs = build_solver_costs(problem, &var_map, total_cols);

        let max_iterations = if config.max_iterations == 0 {
            2_000 + 40 * (m + total_cols)
        } else {
            config.max_iterations
        };

        let meta = SnapshotMeta {
            sources: rows.iter().map(|r| r.source).collect(),
            flipped,
            unit_cols,
            b0: rows.iter().map(|r| r.rhs).collect(),
            classes: (0..problem.num_vars)
                .map(|i| bound_class(problem.lower[i], problem.upper[i]))
                .collect(),
        };

        Self {
            problem,
            config: *config,
            var_map,
            tableau: Tableau {
                a,
                basis,
                non_artificial_cols,
                cols: total_cols,
            },
            solver_costs,
            structural_cols,
            num_artificials: num_artificial,
            iterations: 0,
            max_iterations,
            hint,
            workspace,
            warm_applied: false,
            hint_rejected: false,
            meta,
        }
    }

    fn run(mut self, capture: bool) -> (SimplexOutcome, Option<BasisSnapshot>) {
        let outcome = self.run_phases();
        let snapshot = if capture && matches!(outcome, SimplexOutcome::Optimal { .. }) {
            Some(self.take_snapshot())
        } else {
            None
        };
        if let Some(ws) = self.workspace.take() {
            ws.record_solve(self.warm_applied, self.iterations);
            if self.hint_rejected {
                ws.record_rejected_hint();
            }
            ws.recycle_rows(self.tableau.a.drain(..));
        }
        (outcome, snapshot)
    }

    /// Move the final tableau into a [`BasisSnapshot`] (zero-copy: the rows
    /// leave the solver instead of being recycled into the workspace).
    fn take_snapshot(&mut self) -> BasisSnapshot {
        BasisSnapshot {
            rows: std::mem::take(&mut self.tableau.a),
            basis: self.tableau.basis.clone(),
            non_artificial_cols: self.tableau.non_artificial_cols,
            cols: self.tableau.cols,
            structural_cols: self.structural_cols,
            meta: std::mem::take(&mut self.meta),
        }
    }

    /// Rebuild a solver positioned at the snapshot's final basis, with the
    /// rhs re-targeted at `problem`'s (possibly changed) variable bounds.
    /// The caller must have verified [`BasisSnapshot::compatible_with`].
    /// Returns the solver and the number of rows whose rhs actually moved.
    fn from_snapshot(
        problem: &'a LpProblem,
        config: &SimplexConfig,
        snapshot: &BasisSnapshot,
        mut workspace: Option<&'a mut SolverWorkspace>,
    ) -> (Self, usize) {
        // Equal bound classes guarantee this reproduces the snapshot's
        // column layout exactly (only the shift/mirror offsets differ).
        let mut var_map = Vec::with_capacity(problem.num_vars);
        let mut next_col = 0usize;
        for i in 0..problem.num_vars {
            let lo = problem.lower[i];
            let hi = problem.upper[i];
            if lo.is_finite() {
                var_map.push(VarMap::Shifted {
                    col: next_col,
                    lower: lo,
                });
                next_col += 1;
            } else if hi.is_finite() {
                var_map.push(VarMap::Mirrored {
                    col: next_col,
                    upper: hi,
                });
                next_col += 1;
            } else {
                var_map.push(VarMap::Split {
                    pos: next_col,
                    neg: next_col + 1,
                });
                next_col += 2;
            }
        }
        debug_assert_eq!(next_col, snapshot.structural_cols);

        // Recompute the standard-form rhs under the new bounds, reusing the
        // snapshot's sign-normalization pattern (the coefficient signs were
        // already flipped at capture time, so the rhs must flip with them).
        let m = snapshot.rows.len();
        let total_cols = snapshot.cols;
        let mut b_child = Vec::with_capacity(m);
        for (r, source) in snapshot.meta.sources.iter().enumerate() {
            let mut rhs = match *source {
                RowSource::Constraint(j) => {
                    let c = &problem.constraints[j];
                    let mut rhs = c.rhs;
                    for &(var, coeff) in &c.coeffs {
                        match var_map[var] {
                            VarMap::Shifted { lower, .. } => rhs -= coeff * lower,
                            VarMap::Mirrored { upper, .. } => rhs -= coeff * upper,
                            VarMap::Split { .. } => {}
                        }
                    }
                    rhs
                }
                RowSource::Bound { var } => problem.upper[var] - problem.lower[var],
            };
            if snapshot.meta.flipped[r] {
                rhs = -rhs;
            }
            b_child.push(rhs);
        }

        // Copy the snapshot tableau into pooled row buffers.
        let mut a: Vec<Vec<f64>> = snapshot
            .rows
            .iter()
            .map(|src| {
                let mut row = match workspace.as_deref_mut() {
                    Some(ws) => ws.take_row(total_cols + 1),
                    None => vec![0.0; total_cols + 1],
                };
                row.copy_from_slice(src);
                row
            })
            .collect();

        // Replay the rhs delta through the basis inverse: adding `delta` to
        // the original rhs of row `r` adds `delta * B^-1 e_r` to the
        // transformed rhs column, and `B^-1 e_r` is exactly tableau column
        // `unit_cols[r]` (the row's initial +1 unit column).
        let mut bound_flips = 0usize;
        for r in 0..m {
            let delta = b_child[r] - snapshot.meta.b0[r];
            if delta == 0.0 {
                continue;
            }
            bound_flips += 1;
            let unit = snapshot.meta.unit_cols[r];
            for row in a.iter_mut() {
                let factor = row[unit];
                if factor != 0.0 {
                    row[total_cols] += delta * factor;
                }
            }
        }

        let solver_costs = build_solver_costs(problem, &var_map, total_cols);

        // Satellite-3 cap fix: a dual restart expects ~10x fewer pivots
        // than a cold two-phase solve, so the "auto" budget scales at 1/10th
        // of the cold formula. Exceeding it surfaces as a typed
        // [`DualOutcome::PivotLimit`] instead of a silent cold fallback.
        let max_iterations = if config.max_iterations == 0 {
            200 + 4 * (m + total_cols)
        } else {
            config.max_iterations
        };

        let meta = SnapshotMeta {
            sources: snapshot.meta.sources.clone(),
            flipped: snapshot.meta.flipped.clone(),
            unit_cols: snapshot.meta.unit_cols.clone(),
            b0: b_child,
            classes: snapshot.meta.classes.clone(),
        };

        let solver = Self {
            problem,
            config: *config,
            var_map,
            tableau: Tableau {
                a,
                basis: snapshot.basis.clone(),
                non_artificial_cols: snapshot.non_artificial_cols,
                cols: total_cols,
            },
            solver_costs,
            structural_cols: snapshot.structural_cols,
            num_artificials: total_cols - snapshot.non_artificial_cols,
            iterations: 0,
            max_iterations,
            hint: None,
            workspace,
            warm_applied: true,
            hint_rejected: false,
            meta,
        };
        (solver, bound_flips)
    }

    /// Dual-simplex loop from a restored basis: the basis is dual feasible
    /// by construction (costs and columns are unchanged from the parent
    /// solve), so only primal feasibility — negative rhs entries introduced
    /// by the bound delta — needs to be repaired.
    fn run_dual(mut self, bound_flips: usize) -> DualOutcome {
        let phase = self.run_dual_phases();
        let snapshot = if let DualPhase::Done(SimplexOutcome::Optimal { .. }) = &phase {
            Some(self.take_snapshot())
        } else {
            None
        };
        if let Some(ws) = self.workspace.take() {
            match &phase {
                DualPhase::Done(_) => {
                    ws.record_solve(true, self.iterations);
                    ws.record_dual_restart(true, bound_flips);
                }
                DualPhase::PivotLimit | DualPhase::Guard => {
                    ws.record_dual_restart(false, bound_flips);
                }
            }
            ws.recycle_rows(self.tableau.a.drain(..));
        }
        match phase {
            DualPhase::Done(outcome) => DualOutcome::Finished(outcome, snapshot),
            DualPhase::PivotLimit => DualOutcome::PivotLimit {
                iterations: self.iterations,
            },
            DualPhase::Guard => DualOutcome::Incompatible,
        }
    }

    fn run_dual_phases(&mut self) -> DualPhase {
        let tol = self.config.tolerance;
        let limit_cols = self.tableau.non_artificial_cols;
        let costs = self.solver_costs.clone();
        let (mut obj_row, mut obj_val) = self.reduced_costs(&costs);
        let mut stall = 0usize;
        let mut last_obj = obj_val;
        loop {
            if self.iterations >= self.max_iterations {
                return DualPhase::PivotLimit;
            }
            // Leaving row: most negative rhs, ties to the smallest basis
            // column; after a stall, smallest basis column among all
            // infeasible rows (Bland-style) to guarantee termination.
            let use_bland = stall >= self.config.stall_threshold;
            let mut leaving: Option<usize> = None;
            let mut most_negative = f64::INFINITY;
            for r in 0..self.tableau.rows() {
                let rhs = self.tableau.rhs(r);
                if rhs >= -tol {
                    continue;
                }
                let better = match leaving {
                    None => true,
                    Some(l) => {
                        if use_bland {
                            self.tableau.basis[r] < self.tableau.basis[l]
                        } else if rhs < most_negative - tol {
                            true
                        } else if rhs < most_negative + tol {
                            self.tableau.basis[r] < self.tableau.basis[l]
                        } else {
                            false
                        }
                    }
                };
                if better {
                    most_negative = rhs;
                    leaving = Some(r);
                }
            }
            let Some(row) = leaving else {
                break; // primal feasible again
            };
            // Dual ratio test: entering column minimizes
            // `obj_row[c] / -a[row][c]` over negative entries of the leaving
            // row (non-artificial columns only). Ascending scan with strict
            // improvement keeps ties on the smallest column index.
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for c in 0..limit_cols {
                let a_rc = self.tableau.a[row][c];
                if a_rc < -tol {
                    let ratio = obj_row[c] / (-a_rc);
                    if entering.is_none() || ratio < best_ratio - tol {
                        best_ratio = ratio;
                        entering = Some(c);
                    }
                }
            }
            let Some(col) = entering else {
                // The leaving row reads `sum(a_c * y_c) = rhs < 0` with every
                // non-artificial `a_c >= 0` and `y >= 0` (artificials must be
                // zero in any original-feasible point): a certificate of
                // primal infeasibility.
                return DualPhase::Done(SimplexOutcome::Infeasible {
                    iterations: self.iterations,
                });
            };
            self.tableau.pivot(row, col, &mut obj_row, &mut obj_val);
            self.iterations += 1;
            if (obj_val - last_obj).abs() <= tol {
                stall += 1;
            } else {
                stall = 0;
                last_obj = obj_val;
            }
        }
        // Guard: a basic artificial sitting at a positive value means the
        // restored point is not feasible for the *original* rows (this can
        // happen when a redundant row's rhs moved); the dual loop cannot
        // certify anything from here, so hand back to a cold solve.
        let artificial_sum: f64 = (0..self.tableau.rows())
            .filter(|&r| self.tableau.basis[r] >= limit_cols)
            .map(|r| self.tableau.rhs(r))
            .sum();
        if artificial_sum > 1e-6 {
            return DualPhase::Guard;
        }
        // Primal polish: bound changes cannot create negative reduced costs
        // (costs and columns are untouched), so this normally returns
        // immediately; it is a numerical backstop. Under the auto budget it
        // gets cold-cap headroom; an explicit user cap stays hard.
        if self.config.max_iterations == 0 {
            self.max_iterations =
                self.iterations + 2_000 + 40 * (self.tableau.rows() + self.tableau.cols);
        }
        match self.optimize(&mut obj_row, &mut obj_val, limit_cols) {
            LoopResult::Optimal => {}
            LoopResult::Unbounded => {
                return DualPhase::Done(SimplexOutcome::Unbounded {
                    iterations: self.iterations,
                });
            }
            LoopResult::IterationLimit => return DualPhase::PivotLimit,
        }
        let values = self.extract_values();
        let objective = self
            .problem
            .costs
            .iter()
            .zip(values.iter())
            .map(|(c, v)| c * v)
            .sum();
        DualPhase::Done(SimplexOutcome::Optimal {
            objective,
            values,
            iterations: self.iterations,
        })
    }

    fn run_phases(&mut self) -> SimplexOutcome {
        let tol = self.config.tolerance;

        // ---- Phase 0: crash a basis from the warm-start hint, if any. ----
        // Only worth doing when artificial variables exist: the payoff of
        // the crash is skipping phase 1. Without artificials the all-slack
        // basis is already feasible and the cold path is optimal work.
        let mut skip_phase1 = false;
        if self.num_artificials > 0 {
            if let Some(hint) = self.hint {
                if self.warm_crash(hint) {
                    self.warm_applied = true;
                    skip_phase1 = true;
                } else {
                    self.hint_rejected = true;
                }
            }
        }

        // ---- Phase 1: minimize the sum of artificial variables. ----
        if self.num_artificials > 0 && !skip_phase1 {
            let cols = self.tableau.cols;
            let mut phase1_costs = vec![0.0; cols];
            for c in self.tableau.non_artificial_cols..cols {
                phase1_costs[c] = 1.0;
            }
            let (mut obj_row, mut obj_val) = self.reduced_costs(&phase1_costs);
            match self.optimize(&mut obj_row, &mut obj_val, cols) {
                LoopResult::Optimal => {}
                LoopResult::Unbounded => {
                    // Phase 1 is bounded below by 0; treat as numerical noise.
                }
                LoopResult::IterationLimit => {
                    return SimplexOutcome::IterationLimit {
                        iterations: self.iterations,
                    };
                }
            }
            // Sum of artificials at optimum = -obj_val? obj_val tracks
            // `z = c_B B^-1 b` negated through pivots; recompute directly.
            let artificial_sum: f64 = (0..self.tableau.rows())
                .filter(|&r| self.tableau.basis[r] >= self.tableau.non_artificial_cols)
                .map(|r| self.tableau.rhs(r))
                .sum();
            if artificial_sum > 1e-6 {
                return SimplexOutcome::Infeasible {
                    iterations: self.iterations,
                };
            }
            self.evict_basic_artificials(tol);
        }

        // ---- Phase 2: minimize the real objective over non-artificial columns. ----
        let limit_cols = self.tableau.non_artificial_cols;
        let costs = self.solver_costs.clone();
        let (mut obj_row, mut obj_val) = self.reduced_costs(&costs);
        match self.optimize(&mut obj_row, &mut obj_val, limit_cols) {
            LoopResult::Optimal => {}
            LoopResult::Unbounded => {
                return SimplexOutcome::Unbounded {
                    iterations: self.iterations,
                };
            }
            LoopResult::IterationLimit => {
                return SimplexOutcome::IterationLimit {
                    iterations: self.iterations,
                };
            }
        }

        let values = self.extract_values();
        let objective = self
            .problem
            .costs
            .iter()
            .zip(values.iter())
            .map(|(c, v)| c * v)
            .sum();
        SimplexOutcome::Optimal {
            objective,
            values,
            iterations: self.iterations,
        }
    }

    /// Build a crash basis from a prior primal point: bring the hint's
    /// support columns into the basis with ratio-test pivots (feasibility of
    /// the extended problem is preserved throughout), preferring to evict
    /// artificial variables on ties. Returns `true` when every artificial
    /// ended at zero, i.e. phase 1 can be skipped.
    fn warm_crash(&mut self, hint: &[f64]) -> bool {
        let tol = self.config.tolerance;
        // Map the hint into non-negative solver-variable space.
        let mut y = vec![0.0; self.tableau.cols];
        for (i, map) in self.var_map.iter().enumerate() {
            let x = hint.get(i).copied().unwrap_or(0.0);
            match *map {
                VarMap::Shifted { col, lower } => y[col] = (x - lower).max(0.0),
                VarMap::Mirrored { col, upper } => y[col] = (upper - x).max(0.0),
                VarMap::Split { pos, neg } => {
                    y[pos] = x.max(0.0);
                    y[neg] = (-x).max(0.0);
                }
            }
        }
        let mut support: Vec<usize> = (0..self.structural_cols).filter(|&c| y[c] > tol).collect();
        // Largest hint values first: they are the most likely basic columns.
        support.sort_by(|&a, &b| {
            y[b].partial_cmp(&y[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut in_basis = vec![false; self.tableau.cols];
        for &b in &self.tableau.basis {
            in_basis[b] = true;
        }
        let mut dummy_obj = vec![0.0; self.tableau.cols + 1];
        let mut dummy_val = 0.0;
        for col in support {
            if in_basis[col] || self.iterations >= self.max_iterations {
                continue;
            }
            // Standard ratio test; ties prefer evicting an artificial, then
            // the smallest basis column index (Bland) for determinism.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut leaving_artificial = false;
            for r in 0..self.tableau.rows() {
                let a_rc = self.tableau.a[r][col];
                if a_rc <= tol {
                    continue;
                }
                let ratio = self.tableau.rhs(r) / a_rc;
                let is_artificial = self.tableau.basis[r] >= self.tableau.non_artificial_cols;
                let better = match leaving {
                    None => true,
                    Some(l) => {
                        if ratio < best_ratio - tol {
                            true
                        } else if ratio < best_ratio + tol {
                            (is_artificial && !leaving_artificial)
                                || (is_artificial == leaving_artificial
                                    && self.tableau.basis[r] < self.tableau.basis[l])
                        } else {
                            false
                        }
                    }
                };
                if better {
                    best_ratio = ratio;
                    leaving = Some(r);
                    leaving_artificial = is_artificial;
                }
            }
            if let Some(row) = leaving {
                in_basis[self.tableau.basis[row]] = false;
                self.tableau.pivot(row, col, &mut dummy_obj, &mut dummy_val);
                in_basis[col] = true;
                self.iterations += 1;
            }
        }
        // Only called when artificials exist (see `run_phases`).
        debug_assert!(self.num_artificials > 0);
        let artificial_sum: f64 = (0..self.tableau.rows())
            .filter(|&r| self.tableau.basis[r] >= self.tableau.non_artificial_cols)
            .map(|r| self.tableau.rhs(r))
            .sum();
        if artificial_sum <= 1e-6 {
            self.evict_basic_artificials(tol);
            true
        } else {
            false
        }
    }

    /// Compute the reduced-cost row `c_j - c_B B^-1 A_j` and objective value
    /// `c_B B^-1 b` for the current basis.
    fn reduced_costs(&self, costs: &[f64]) -> (Vec<f64>, f64) {
        let t = &self.tableau;
        let mut row = vec![0.0; t.cols + 1];
        row[..t.cols].copy_from_slice(costs);
        let mut obj_val = 0.0;
        for r in 0..t.rows() {
            let cb = costs[t.basis[r]];
            if cb != 0.0 {
                for c in 0..=t.cols {
                    row[c] -= cb * t.a[r][c];
                }
                obj_val += cb * t.rhs(r);
            }
        }
        (row, obj_val)
    }

    /// Primal simplex loop over columns `< limit_cols`.
    fn optimize(
        &mut self,
        obj_row: &mut [f64],
        obj_val: &mut f64,
        limit_cols: usize,
    ) -> LoopResult {
        let tol = self.config.tolerance;
        let mut stall = 0usize;
        let mut last_obj = *obj_val;
        loop {
            if self.iterations >= self.max_iterations {
                return LoopResult::IterationLimit;
            }
            // Entering column: Dantzig (most negative reduced cost), or
            // Bland's rule (first negative) once the objective stalls.
            let use_bland = stall >= self.config.stall_threshold;
            let mut entering: Option<usize> = None;
            let mut best = -tol;
            for c in 0..limit_cols {
                let rc = obj_row[c];
                if rc < -tol {
                    if use_bland {
                        entering = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        entering = Some(c);
                    }
                }
            }
            let Some(col) = entering else {
                return LoopResult::Optimal;
            };
            // Ratio test (Bland tie-break: smallest basis column index).
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.tableau.rows() {
                let a_rc = self.tableau.a[r][col];
                if a_rc > tol {
                    let ratio = self.tableau.rhs(r) / a_rc;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leaving
                                .map(|l| self.tableau.basis[r] < self.tableau.basis[l])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(row) = leaving else {
                return LoopResult::Unbounded;
            };
            self.tableau.pivot(row, col, obj_row, obj_val);
            self.iterations += 1;
            if (*obj_val - last_obj).abs() <= tol {
                stall += 1;
            } else {
                stall = 0;
                last_obj = *obj_val;
            }
        }
    }

    /// After phase 1, pivot any artificial variables that remain basic (at
    /// value zero) out of the basis, or neutralize redundant rows.
    fn evict_basic_artificials(&mut self, tol: f64) {
        let non_art = self.tableau.non_artificial_cols;
        let rows = self.tableau.rows();
        let mut dummy_obj = vec![0.0; self.tableau.cols + 1];
        let mut dummy_val = 0.0;
        for r in 0..rows {
            if self.tableau.basis[r] < non_art {
                continue;
            }
            // Find any non-artificial column with a usable pivot element.
            let col = (0..non_art).find(|&c| self.tableau.a[r][c].abs() > tol);
            if let Some(c) = col {
                self.tableau.pivot(r, c, &mut dummy_obj, &mut dummy_val);
                self.iterations += 1;
            }
            // If no pivot column exists the row is redundant (all zeros);
            // the artificial stays basic at zero and is harmless because
            // artificial columns are excluded from phase-2 entering steps.
        }
    }

    /// Read the original-variable values out of the final tableau.
    fn extract_values(&self) -> Vec<f64> {
        let t = &self.tableau;
        let mut solver_values = vec![0.0; t.cols];
        for r in 0..t.rows() {
            solver_values[t.basis[r]] = t.rhs(r).max(0.0);
        }
        self.var_map
            .iter()
            .map(|m| match *m {
                VarMap::Shifted { col, lower } => lower + solver_values[col],
                VarMap::Mirrored { col, upper } => upper - solver_values[col],
                VarMap::Split { pos, neg } => solver_values[pos] - solver_values[neg],
            })
            .collect()
    }
}

enum LoopResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Internal verdict of [`Solver::run_dual`] before workspace recording.
enum DualPhase {
    Done(SimplexOutcome),
    PivotLimit,
    Guard,
}

/// Phase-2 costs on solver columns (shared by cold construction and
/// snapshot restores; the mapping depends only on the bound classes).
fn build_solver_costs(problem: &LpProblem, var_map: &[VarMap], total_cols: usize) -> Vec<f64> {
    let mut solver_costs = vec![0.0; total_cols];
    for i in 0..problem.num_vars {
        let cost = problem.costs[i];
        if cost == 0.0 {
            continue;
        }
        match var_map[i] {
            VarMap::Shifted { col, .. } => solver_costs[col] += cost,
            VarMap::Mirrored { col, .. } => solver_costs[col] -= cost,
            VarMap::Split { pos, neg } => {
                solver_costs[pos] += cost;
                solver_costs[neg] -= cost;
            }
        }
    }
    solver_costs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint(coeffs: &[(usize, f64)], sense: Sense, rhs: f64) -> LpConstraint {
        LpConstraint {
            coeffs: coeffs.to_vec(),
            sense,
            rhs,
        }
    }

    fn solve_default(p: &LpProblem) -> SimplexOutcome {
        solve(p, &SimplexConfig::default())
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
        // Expressed as minimization of -3x - 5y.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-3.0, -5.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::LessEqual, 4.0),
                constraint(&[(1, 2.0)], Sense::LessEqual, 12.0),
                constraint(&[(0, 3.0), (1, 2.0)], Sense::LessEqual, 18.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((objective + 36.0).abs() < 1e-6);
                assert!((values[0] - 2.0).abs() < 1e-6);
                assert!((values[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y == 10, x >= 3  => x=10? No: y free to be 0.
        // Optimal: maximize x share since 2 < 3 => x=10, y=0, obj 20.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![2.0, 3.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::Equal, 10.0),
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 3.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((objective - 20.0).abs() < 1e-6);
                assert!((values[0] - 10.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 5.0),
                constraint(&[(0, 1.0)], Sense::LessEqual, 2.0),
            ],
        };
        assert!(matches!(
            solve_default(&p),
            SimplexOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn unbounded_detected() {
        let p = LpProblem {
            num_vars: 1,
            costs: vec![-1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![constraint(&[(0, 1.0)], Sense::GreaterEqual, 1.0)],
        };
        assert!(matches!(
            solve_default(&p),
            SimplexOutcome::Unbounded { .. }
        ));
    }

    #[test]
    fn finite_upper_bounds_respected() {
        // min -x with x in [0, 7] => x = 7.
        let p = LpProblem {
            num_vars: 1,
            costs: vec![-1.0],
            lower: vec![0.0],
            upper: vec![7.0],
            constraints: vec![],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 7.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![constraint(&[(0, -1.0)], Sense::LessEqual, -3.0)],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 3.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn mirrored_variable_only_upper_bound() {
        // min x with x <= 4 and x >= -inf, constraint x >= -10 absent:
        // objective unbounded below? Add constraint x >= -2 to make bounded.
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![f64::NEG_INFINITY],
            upper: vec![4.0],
            constraints: vec![constraint(&[(0, 1.0)], Sense::GreaterEqual, -2.0)],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                values, objective, ..
            } => {
                assert!((values[0] + 2.0).abs() < 1e-6);
                assert!((objective + 2.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; correctness here is mostly "terminates
        // and returns a feasible optimum".
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-1.0, -1.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(0, 1.0), (1, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(0, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(1, 1.0)], Sense::LessEqual, 1.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { objective, .. } => assert!((objective + 1.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn warm_hint_reaches_the_same_optimum_with_fewer_pivots() {
        // The Eq.9-shaped structure: equalities force artificials, so a cold
        // solve pays a full phase 1 that the warm crash skips.
        let n = 6usize;
        let p = LpProblem {
            num_vars: 2 * n,
            costs: (0..2 * n).map(|i| 1.0 + ((i * 7) % 5) as f64).collect(),
            lower: vec![0.0; 2 * n],
            upper: vec![1.0; 2 * n],
            constraints: (0..n)
                .map(|j| constraint(&[(2 * j, 1.0), (2 * j + 1, 1.0)], Sense::Equal, 1.0))
                .collect(),
        };
        let config = SimplexConfig::default();
        let SimplexOutcome::Optimal {
            objective: cold_obj,
            values: cold_values,
            iterations: cold_iters,
        } = solve(&p, &config)
        else {
            panic!("cold solve must be optimal")
        };
        let mut ws = SolverWorkspace::new();
        let SimplexOutcome::Optimal {
            objective: warm_obj,
            values: warm_values,
            iterations: warm_iters,
        } = solve_with_hint(&p, &config, Some(&cold_values), Some(&mut ws))
        else {
            panic!("warm solve must be optimal")
        };
        assert!((warm_obj - cold_obj).abs() < 1e-9);
        for (c, w) in cold_values.iter().zip(&warm_values) {
            assert!((c - w).abs() < 1e-9);
        }
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} pivots should beat cold {cold_iters}"
        );
        let stats = ws.stats();
        assert_eq!(stats.warm_solves, 1);
        assert_eq!(stats.cold_solves, 0);
        assert_eq!(stats.warm_pivots, warm_iters);
    }

    #[test]
    fn infeasible_hint_support_falls_back_to_cold_phase_one() {
        // Hint pointing at an infeasible corner: crash pivots cannot satisfy
        // the >= row, so phase 1 must still run and the hint is rejected —
        // but the answer is unchanged.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![2.0, 3.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::Equal, 10.0),
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 3.0),
            ],
        };
        let mut ws = SolverWorkspace::new();
        let bogus_hint = [0.0, 0.0];
        match solve_with_hint(
            &p,
            &SimplexConfig::default(),
            Some(&bogus_hint),
            Some(&mut ws),
        ) {
            SimplexOutcome::Optimal { objective, .. } => {
                assert!((objective - 20.0).abs() < 1e-6)
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        assert_eq!(ws.stats().rejected_hints, 1);
        assert_eq!(ws.stats().cold_solves, 1);
    }

    #[test]
    fn workspace_rows_are_reused_across_solves() {
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-3.0, -5.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::LessEqual, 4.0),
                constraint(&[(1, 2.0)], Sense::LessEqual, 12.0),
                constraint(&[(0, 3.0), (1, 2.0)], Sense::LessEqual, 18.0),
            ],
        };
        let mut ws = SolverWorkspace::new();
        let first = solve_with_hint(&p, &SimplexConfig::default(), None, Some(&mut ws));
        assert_eq!(ws.pooled_rows(), 3, "three tableau rows must be recycled");
        let second = solve_with_hint(&p, &SimplexConfig::default(), None, Some(&mut ws));
        assert_eq!(first, second, "workspace reuse must not change results");
        assert_eq!(ws.stats().cold_solves, 2);
    }

    /// Shared fixture for dual-restart tests: a bounded 3-variable LP whose
    /// optimum moves when bounds tighten (the branch & bound child shape).
    fn dual_fixture() -> LpProblem {
        LpProblem {
            num_vars: 3,
            costs: vec![-8.0, -11.0, -6.0],
            lower: vec![0.0, 0.0, 0.0],
            upper: vec![1.0, 1.0, 1.0],
            constraints: vec![
                constraint(&[(0, 5.0), (1, 7.0), (2, 4.0)], Sense::LessEqual, 9.0),
                constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Sense::GreaterEqual, 1.0),
            ],
        }
    }

    #[test]
    fn dual_restart_matches_cold_after_bound_tightening() {
        let parent = dual_fixture();
        let config = SimplexConfig::default();
        let mut ws = SolverWorkspace::new();
        let (outcome, snapshot) = solve_with_basis_capture(&parent, &config, None, Some(&mut ws));
        assert!(matches!(outcome, SimplexOutcome::Optimal { .. }));
        let snapshot = snapshot.expect("optimal solve captures a basis");

        // Branch like B&B would: fix variable 1 down (upper 0) and up
        // (lower 1), and check both children against cold solves.
        for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
            let mut child = parent.clone();
            child.lower[1] = lo;
            child.upper[1] = hi;
            let cold = solve(&child, &config);
            let dual = solve_dual_from_snapshot(&child, &config, &snapshot, Some(&mut ws));
            let DualOutcome::Finished(warm, recaptured) = dual else {
                panic!("expected a finished dual restart");
            };
            match (&cold, &warm) {
                (
                    SimplexOutcome::Optimal {
                        objective: co,
                        values: cv,
                        ..
                    },
                    SimplexOutcome::Optimal {
                        objective: wo,
                        values: wv,
                        ..
                    },
                ) => {
                    assert!((co - wo).abs() < 1e-9, "cold {co} vs dual {wo}");
                    for (c, w) in cv.iter().zip(wv) {
                        assert!((c - w).abs() < 1e-9, "cold {cv:?} vs dual {wv:?}");
                    }
                }
                other => panic!("expected two optima, got {other:?}"),
            }
            assert!(recaptured.is_some(), "optimal restart re-captures a basis");
        }
        let stats = ws.stats();
        assert_eq!(stats.dual_restarts, 2);
        assert_eq!(stats.basis_reuse_hits, 2);
        assert!(stats.bound_flips >= 2, "bound changes must move rhs rows");
        // Dual restarts are recorded as warm solves (the capture solve was
        // the only cold one).
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_solves, 2);
    }

    #[test]
    fn dual_restart_certifies_infeasible_children() {
        let parent = dual_fixture();
        let config = SimplexConfig::default();
        let (_, snapshot) = solve_with_basis_capture(&parent, &config, None, None);
        let snapshot = snapshot.unwrap();
        // Fix all three variables to 1: total weight 16 > 9, infeasible.
        let mut child = parent.clone();
        for i in 0..3 {
            child.lower[i] = 1.0;
        }
        assert!(matches!(
            solve(&child, &config),
            SimplexOutcome::Infeasible { .. }
        ));
        let mut ws = SolverWorkspace::new();
        match solve_dual_from_snapshot(&child, &config, &snapshot, Some(&mut ws)) {
            DualOutcome::Finished(SimplexOutcome::Infeasible { .. }, recaptured) => {
                assert!(recaptured.is_none(), "no basis capture without an optimum");
            }
            other => panic!("expected dual-certified infeasibility, got {other:?}"),
        }
        // Proving infeasibility without a cold solve still counts as reuse.
        assert_eq!(ws.stats().basis_reuse_hits, 1);
    }

    #[test]
    fn dual_restart_rejects_bound_class_changes() {
        // Capture with an infinite upper bound, then make it finite: the
        // standard form gains a bound row, which a restart cannot express.
        let parent = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![constraint(&[(0, 1.0)], Sense::GreaterEqual, 2.0)],
        };
        let config = SimplexConfig::default();
        let (_, snapshot) = solve_with_basis_capture(&parent, &config, None, None);
        let snapshot = snapshot.unwrap();
        let mut child = parent.clone();
        child.upper[0] = 5.0;
        assert!(!snapshot.compatible_with(&child));
        let mut ws = SolverWorkspace::new();
        assert!(matches!(
            solve_dual_from_snapshot(&child, &config, &snapshot, Some(&mut ws)),
            DualOutcome::Incompatible
        ));
        // The attempt is counted, the miss is visible.
        assert_eq!(ws.stats().dual_restarts, 1);
        assert_eq!(ws.stats().basis_reuse_hits, 0);
    }

    #[test]
    fn dual_restart_pivot_cap_is_typed_not_silent() {
        let parent = dual_fixture();
        let config = SimplexConfig::default();
        let (_, snapshot) = solve_with_basis_capture(&parent, &config, None, None);
        let snapshot = snapshot.unwrap();
        let mut child = parent.clone();
        child.lower[0] = 1.0; // forces at least one repair pivot
        let starved = SimplexConfig {
            max_iterations: 1,
            ..config
        };
        // With a one-pivot budget the restart cannot finish repair + polish;
        // the outcome must be the typed PivotLimit, never a wrong answer.
        match solve_dual_from_snapshot(&child, &starved, &snapshot, None) {
            DualOutcome::PivotLimit { iterations } => assert!(iterations <= 1),
            DualOutcome::Finished(SimplexOutcome::Optimal { objective, .. }, _) => {
                // Zero/one pivots may genuinely suffice; the answer must
                // then match the cold optimum.
                let SimplexOutcome::Optimal { objective: co, .. } = solve(&child, &config) else {
                    panic!("cold child must be optimal");
                };
                assert!((objective - co).abs() < 1e-9);
            }
            other => panic!("expected PivotLimit or a correct optimum, got {other:?}"),
        }
    }

    #[test]
    fn zero_constraint_problem() {
        // No constraints at all, bounded purely by variable bounds.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![1.0, -1.0],
            lower: vec![0.0, 0.0],
            upper: vec![5.0, 5.0],
            constraints: vec![],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((values[0] - 0.0).abs() < 1e-6);
                assert!((values[1] - 5.0).abs() < 1e-6);
                assert!((objective + 5.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
