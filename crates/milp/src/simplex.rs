//! Dense two-phase primal simplex for linear programs.
//!
//! The solver operates on an [`LpProblem`] in "model form": arbitrary finite
//! or infinite variable bounds and `<=` / `>=` / `==` constraints. It
//! converts the problem to standard form internally:
//!
//! * variables with a finite lower bound are shifted so the solver variable
//!   is non-negative;
//! * variables bounded only from above are mirrored;
//! * free variables are split into a difference of two non-negative
//!   variables;
//! * finite upper bounds become explicit constraint rows;
//! * `>=` and `==` rows receive artificial variables driven out in phase 1.
//!
//! Entering-variable selection uses Dantzig's rule with an automatic switch
//! to Bland's rule after a stall, which guarantees termination on degenerate
//! problems.
//!
//! # Warm starts
//!
//! [`solve_with_hint`] accepts a prior primal point (e.g. the previous
//! scheduling slot's solution). The solver uses it to build a *crash basis*:
//! guided pivots bring the hint's support columns into the basis under the
//! standard ratio test (so primal feasibility of the extended problem is
//! preserved), preferring to evict artificial variables on ties. When the
//! crash drives every artificial to zero, phase 1 is skipped entirely and
//! phase 2 starts at (or next to) the hinted vertex; otherwise the solver
//! falls back to a normal phase 1 from the crashed basis. The result is
//! always the same optimum a cold solve finds — only the pivot path differs.

use crate::model::Sense;
use crate::workspace::SolverWorkspace;
use serde::{Deserialize, Serialize};

/// A constraint in "model form" for the LP solver.
#[derive(Debug, Clone, PartialEq)]
pub struct LpConstraint {
    /// Sparse coefficients as `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side (constant already folded in).
    pub rhs: f64,
}

/// A linear program in model form (always a minimization).
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (minimized).
    pub costs: Vec<f64>,
    /// Lower bounds (may be `-inf`).
    pub lower: Vec<f64>,
    /// Upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<LpConstraint>,
}

/// Simplex configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexConfig {
    /// Hard cap on pivots across both phases. `0` means "auto" (scaled with
    /// problem size).
    pub max_iterations: usize,
    /// Numerical tolerance for reduced costs, ratio tests, and feasibility.
    pub tolerance: f64,
    /// Number of non-improving pivots after which the solver switches from
    /// Dantzig's rule to Bland's rule to escape degeneracy cycles.
    pub stall_threshold: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        Self {
            max_iterations: 0,
            tolerance: 1e-9,
            stall_threshold: 64,
        }
    }
}

/// Result of a simplex solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// Optimal solution found.
    Optimal {
        /// Objective value (of the minimization).
        objective: f64,
        /// Values of the original decision variables.
        values: Vec<f64>,
        /// Pivots performed.
        iterations: usize,
    },
    /// The constraints admit no feasible point.
    Infeasible {
        /// Pivots performed.
        iterations: usize,
    },
    /// The objective is unbounded below.
    Unbounded {
        /// Pivots performed.
        iterations: usize,
    },
    /// The pivot budget was exhausted.
    IterationLimit {
        /// Pivots performed.
        iterations: usize,
    },
}

/// How an original variable maps onto solver (non-negative) variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + y[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - y[col]` (upper bound finite, lower infinite)
    Mirrored { col: usize, upper: f64 },
    /// `x = y[pos] - y[neg]` (free variable)
    Split { pos: usize, neg: usize },
}

struct Tableau {
    /// `rows x (cols + 1)` matrix; the last column is the rhs.
    a: Vec<Vec<f64>>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural + slack/surplus columns (artificials follow).
    non_artificial_cols: usize,
    /// Total number of columns (excluding rhs).
    cols: usize,
}

impl Tableau {
    fn rows(&self) -> usize {
        self.a.len()
    }

    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.cols]
    }

    /// Perform a pivot on (row, col): normalize the pivot row and eliminate
    /// the column from all other rows and the objective row.
    fn pivot(&mut self, row: usize, col: usize, obj_row: &mut [f64], obj_val: &mut f64) {
        let pivot_value = self.a[row][col];
        debug_assert!(pivot_value.abs() > 0.0);
        let inv = 1.0 / pivot_value;
        for value in self.a[row].iter_mut() {
            *value *= inv;
        }
        // Split borrows: copy the pivot row once (cols is small relative to
        // the full tableau and this keeps the inner loop simple and fast).
        let pivot_row = self.a[row].clone();
        for (r, target) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = target[col];
            if factor != 0.0 {
                for (t, p) in target.iter_mut().zip(pivot_row.iter()) {
                    *t -= factor * p;
                }
            }
        }
        let factor = obj_row[col];
        if factor != 0.0 {
            for (o, p) in obj_row.iter_mut().zip(pivot_row.iter()) {
                *o -= factor * p;
            }
            *obj_val -= factor * pivot_row[self.cols];
        }
        self.basis[row] = col;
    }
}

/// Solve a linear program with the two-phase primal simplex (cold start).
pub fn solve(problem: &LpProblem, config: &SimplexConfig) -> SimplexOutcome {
    solve_with_hint(problem, config, None, None)
}

/// Solve a linear program, optionally warm-started from a prior primal point
/// (`hint`, in original-variable space) and reusing allocations from a
/// [`SolverWorkspace`]. Cold/warm pivot counts are recorded on the workspace.
pub fn solve_with_hint(
    problem: &LpProblem,
    config: &SimplexConfig,
    hint: Option<&[f64]>,
    workspace: Option<&mut SolverWorkspace>,
) -> SimplexOutcome {
    Solver::new(problem, config, hint, workspace).run()
}

struct Solver<'a> {
    problem: &'a LpProblem,
    config: SimplexConfig,
    var_map: Vec<VarMap>,
    tableau: Tableau,
    /// Costs on solver columns (for phase 2), plus the constant offset from
    /// bound shifts.
    solver_costs: Vec<f64>,
    structural_cols: usize,
    num_artificials: usize,
    iterations: usize,
    max_iterations: usize,
    hint: Option<&'a [f64]>,
    workspace: Option<&'a mut SolverWorkspace>,
    /// Whether the crash basis eliminated every artificial (phase 1 skipped).
    warm_applied: bool,
    /// Whether a hint was offered but the crash failed to clear phase 1.
    hint_rejected: bool,
}

impl<'a> Solver<'a> {
    fn new(
        problem: &'a LpProblem,
        config: &SimplexConfig,
        hint: Option<&'a [f64]>,
        workspace: Option<&'a mut SolverWorkspace>,
    ) -> Self {
        // --- 1. Map original variables to non-negative solver variables. ---
        let mut var_map = Vec::with_capacity(problem.num_vars);
        let mut next_col = 0usize;
        // Extra rows from finite upper bounds on shifted variables.
        let mut bound_rows: Vec<(usize, f64)> = Vec::new();
        for i in 0..problem.num_vars {
            let lo = problem.lower[i];
            let hi = problem.upper[i];
            if lo.is_finite() {
                var_map.push(VarMap::Shifted {
                    col: next_col,
                    lower: lo,
                });
                if hi.is_finite() {
                    bound_rows.push((next_col, hi - lo));
                }
                next_col += 1;
            } else if hi.is_finite() {
                var_map.push(VarMap::Mirrored {
                    col: next_col,
                    upper: hi,
                });
                next_col += 1;
            } else {
                var_map.push(VarMap::Split {
                    pos: next_col,
                    neg: next_col + 1,
                });
                next_col += 2;
            }
        }
        let structural_cols = next_col;

        // --- 2. Transform constraints into solver-variable space. ---
        // Each row: dense coefficients over structural columns + rhs + sense.
        struct Row {
            coeffs: Vec<f64>,
            sense: Sense,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + bound_rows.len());
        for c in &problem.constraints {
            let mut coeffs = vec![0.0; structural_cols];
            let mut rhs = c.rhs;
            for &(var, coeff) in &c.coeffs {
                match var_map[var] {
                    VarMap::Shifted { col, lower } => {
                        coeffs[col] += coeff;
                        rhs -= coeff * lower;
                    }
                    VarMap::Mirrored { col, upper } => {
                        coeffs[col] -= coeff;
                        rhs -= coeff * upper;
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs[pos] += coeff;
                        coeffs[neg] -= coeff;
                    }
                }
            }
            rows.push(Row {
                coeffs,
                sense: c.sense,
                rhs,
            });
        }
        for &(col, ub) in &bound_rows {
            let mut coeffs = vec![0.0; structural_cols];
            coeffs[col] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::LessEqual,
                rhs: ub,
            });
        }

        // --- 3. Normalize rhs signs and count slack/artificial columns. ---
        for row in &mut rows {
            if row.rhs < 0.0 {
                for c in row.coeffs.iter_mut() {
                    *c = -*c;
                }
                row.rhs = -row.rhs;
                row.sense = match row.sense {
                    Sense::LessEqual => Sense::GreaterEqual,
                    Sense::GreaterEqual => Sense::LessEqual,
                    Sense::Equal => Sense::Equal,
                };
            }
        }
        let num_slack = rows
            .iter()
            .filter(|r| matches!(r.sense, Sense::LessEqual | Sense::GreaterEqual))
            .count();
        let num_artificial = rows
            .iter()
            .filter(|r| matches!(r.sense, Sense::GreaterEqual | Sense::Equal))
            .count();
        let non_artificial_cols = structural_cols + num_slack;
        let total_cols = non_artificial_cols + num_artificial;

        // --- 4. Build the tableau (rows pooled via the workspace). ---
        let mut workspace = workspace;
        let m = rows.len();
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|_| match workspace.as_deref_mut() {
                Some(ws) => ws.take_row(total_cols + 1),
                None => vec![0.0; total_cols + 1],
            })
            .collect();
        let mut basis = vec![0usize; m];
        let mut slack_cursor = structural_cols;
        let mut artificial_cursor = non_artificial_cols;
        for (r, row) in rows.iter().enumerate() {
            a[r][..structural_cols].copy_from_slice(&row.coeffs);
            a[r][total_cols] = row.rhs;
            match row.sense {
                Sense::LessEqual => {
                    a[r][slack_cursor] = 1.0;
                    basis[r] = slack_cursor;
                    slack_cursor += 1;
                }
                Sense::GreaterEqual => {
                    a[r][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    a[r][artificial_cursor] = 1.0;
                    basis[r] = artificial_cursor;
                    artificial_cursor += 1;
                }
                Sense::Equal => {
                    a[r][artificial_cursor] = 1.0;
                    basis[r] = artificial_cursor;
                    artificial_cursor += 1;
                }
            }
        }

        // --- 5. Phase-2 costs on solver columns. ---
        let mut solver_costs = vec![0.0; total_cols];
        for i in 0..problem.num_vars {
            let cost = problem.costs[i];
            if cost == 0.0 {
                continue;
            }
            match var_map[i] {
                VarMap::Shifted { col, .. } => solver_costs[col] += cost,
                VarMap::Mirrored { col, .. } => solver_costs[col] -= cost,
                VarMap::Split { pos, neg } => {
                    solver_costs[pos] += cost;
                    solver_costs[neg] -= cost;
                }
            }
        }

        let max_iterations = if config.max_iterations == 0 {
            2_000 + 40 * (m + total_cols)
        } else {
            config.max_iterations
        };

        Self {
            problem,
            config: *config,
            var_map,
            tableau: Tableau {
                a,
                basis,
                non_artificial_cols,
                cols: total_cols,
            },
            solver_costs,
            structural_cols,
            num_artificials: num_artificial,
            iterations: 0,
            max_iterations,
            hint,
            workspace,
            warm_applied: false,
            hint_rejected: false,
        }
    }

    fn run(mut self) -> SimplexOutcome {
        let outcome = self.run_phases();
        if let Some(ws) = self.workspace.take() {
            ws.record_solve(self.warm_applied, self.iterations);
            if self.hint_rejected {
                ws.record_rejected_hint();
            }
            ws.recycle_rows(self.tableau.a.drain(..));
        }
        outcome
    }

    fn run_phases(&mut self) -> SimplexOutcome {
        let tol = self.config.tolerance;

        // ---- Phase 0: crash a basis from the warm-start hint, if any. ----
        // Only worth doing when artificial variables exist: the payoff of
        // the crash is skipping phase 1. Without artificials the all-slack
        // basis is already feasible and the cold path is optimal work.
        let mut skip_phase1 = false;
        if self.num_artificials > 0 {
            if let Some(hint) = self.hint {
                if self.warm_crash(hint) {
                    self.warm_applied = true;
                    skip_phase1 = true;
                } else {
                    self.hint_rejected = true;
                }
            }
        }

        // ---- Phase 1: minimize the sum of artificial variables. ----
        if self.num_artificials > 0 && !skip_phase1 {
            let cols = self.tableau.cols;
            let mut phase1_costs = vec![0.0; cols];
            for c in self.tableau.non_artificial_cols..cols {
                phase1_costs[c] = 1.0;
            }
            let (mut obj_row, mut obj_val) = self.reduced_costs(&phase1_costs);
            match self.optimize(&mut obj_row, &mut obj_val, cols) {
                LoopResult::Optimal => {}
                LoopResult::Unbounded => {
                    // Phase 1 is bounded below by 0; treat as numerical noise.
                }
                LoopResult::IterationLimit => {
                    return SimplexOutcome::IterationLimit {
                        iterations: self.iterations,
                    };
                }
            }
            // Sum of artificials at optimum = -obj_val? obj_val tracks
            // `z = c_B B^-1 b` negated through pivots; recompute directly.
            let artificial_sum: f64 = (0..self.tableau.rows())
                .filter(|&r| self.tableau.basis[r] >= self.tableau.non_artificial_cols)
                .map(|r| self.tableau.rhs(r))
                .sum();
            if artificial_sum > 1e-6 {
                return SimplexOutcome::Infeasible {
                    iterations: self.iterations,
                };
            }
            self.evict_basic_artificials(tol);
        }

        // ---- Phase 2: minimize the real objective over non-artificial columns. ----
        let limit_cols = self.tableau.non_artificial_cols;
        let costs = self.solver_costs.clone();
        let (mut obj_row, mut obj_val) = self.reduced_costs(&costs);
        match self.optimize(&mut obj_row, &mut obj_val, limit_cols) {
            LoopResult::Optimal => {}
            LoopResult::Unbounded => {
                return SimplexOutcome::Unbounded {
                    iterations: self.iterations,
                };
            }
            LoopResult::IterationLimit => {
                return SimplexOutcome::IterationLimit {
                    iterations: self.iterations,
                };
            }
        }

        let values = self.extract_values();
        let objective = self
            .problem
            .costs
            .iter()
            .zip(values.iter())
            .map(|(c, v)| c * v)
            .sum();
        SimplexOutcome::Optimal {
            objective,
            values,
            iterations: self.iterations,
        }
    }

    /// Build a crash basis from a prior primal point: bring the hint's
    /// support columns into the basis with ratio-test pivots (feasibility of
    /// the extended problem is preserved throughout), preferring to evict
    /// artificial variables on ties. Returns `true` when every artificial
    /// ended at zero, i.e. phase 1 can be skipped.
    fn warm_crash(&mut self, hint: &[f64]) -> bool {
        let tol = self.config.tolerance;
        // Map the hint into non-negative solver-variable space.
        let mut y = vec![0.0; self.tableau.cols];
        for (i, map) in self.var_map.iter().enumerate() {
            let x = hint.get(i).copied().unwrap_or(0.0);
            match *map {
                VarMap::Shifted { col, lower } => y[col] = (x - lower).max(0.0),
                VarMap::Mirrored { col, upper } => y[col] = (upper - x).max(0.0),
                VarMap::Split { pos, neg } => {
                    y[pos] = x.max(0.0);
                    y[neg] = (-x).max(0.0);
                }
            }
        }
        let mut support: Vec<usize> = (0..self.structural_cols).filter(|&c| y[c] > tol).collect();
        // Largest hint values first: they are the most likely basic columns.
        support.sort_by(|&a, &b| {
            y[b].partial_cmp(&y[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut in_basis = vec![false; self.tableau.cols];
        for &b in &self.tableau.basis {
            in_basis[b] = true;
        }
        let mut dummy_obj = vec![0.0; self.tableau.cols + 1];
        let mut dummy_val = 0.0;
        for col in support {
            if in_basis[col] || self.iterations >= self.max_iterations {
                continue;
            }
            // Standard ratio test; ties prefer evicting an artificial, then
            // the smallest basis column index (Bland) for determinism.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut leaving_artificial = false;
            for r in 0..self.tableau.rows() {
                let a_rc = self.tableau.a[r][col];
                if a_rc <= tol {
                    continue;
                }
                let ratio = self.tableau.rhs(r) / a_rc;
                let is_artificial = self.tableau.basis[r] >= self.tableau.non_artificial_cols;
                let better = match leaving {
                    None => true,
                    Some(l) => {
                        if ratio < best_ratio - tol {
                            true
                        } else if ratio < best_ratio + tol {
                            (is_artificial && !leaving_artificial)
                                || (is_artificial == leaving_artificial
                                    && self.tableau.basis[r] < self.tableau.basis[l])
                        } else {
                            false
                        }
                    }
                };
                if better {
                    best_ratio = ratio;
                    leaving = Some(r);
                    leaving_artificial = is_artificial;
                }
            }
            if let Some(row) = leaving {
                in_basis[self.tableau.basis[row]] = false;
                self.tableau.pivot(row, col, &mut dummy_obj, &mut dummy_val);
                in_basis[col] = true;
                self.iterations += 1;
            }
        }
        // Only called when artificials exist (see `run_phases`).
        debug_assert!(self.num_artificials > 0);
        let artificial_sum: f64 = (0..self.tableau.rows())
            .filter(|&r| self.tableau.basis[r] >= self.tableau.non_artificial_cols)
            .map(|r| self.tableau.rhs(r))
            .sum();
        if artificial_sum <= 1e-6 {
            self.evict_basic_artificials(tol);
            true
        } else {
            false
        }
    }

    /// Compute the reduced-cost row `c_j - c_B B^-1 A_j` and objective value
    /// `c_B B^-1 b` for the current basis.
    fn reduced_costs(&self, costs: &[f64]) -> (Vec<f64>, f64) {
        let t = &self.tableau;
        let mut row = vec![0.0; t.cols + 1];
        row[..t.cols].copy_from_slice(costs);
        let mut obj_val = 0.0;
        for r in 0..t.rows() {
            let cb = costs[t.basis[r]];
            if cb != 0.0 {
                for c in 0..=t.cols {
                    row[c] -= cb * t.a[r][c];
                }
                obj_val += cb * t.rhs(r);
            }
        }
        (row, obj_val)
    }

    /// Primal simplex loop over columns `< limit_cols`.
    fn optimize(
        &mut self,
        obj_row: &mut [f64],
        obj_val: &mut f64,
        limit_cols: usize,
    ) -> LoopResult {
        let tol = self.config.tolerance;
        let mut stall = 0usize;
        let mut last_obj = *obj_val;
        loop {
            if self.iterations >= self.max_iterations {
                return LoopResult::IterationLimit;
            }
            // Entering column: Dantzig (most negative reduced cost), or
            // Bland's rule (first negative) once the objective stalls.
            let use_bland = stall >= self.config.stall_threshold;
            let mut entering: Option<usize> = None;
            let mut best = -tol;
            for c in 0..limit_cols {
                let rc = obj_row[c];
                if rc < -tol {
                    if use_bland {
                        entering = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        entering = Some(c);
                    }
                }
            }
            let Some(col) = entering else {
                return LoopResult::Optimal;
            };
            // Ratio test (Bland tie-break: smallest basis column index).
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.tableau.rows() {
                let a_rc = self.tableau.a[r][col];
                if a_rc > tol {
                    let ratio = self.tableau.rhs(r) / a_rc;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leaving
                                .map(|l| self.tableau.basis[r] < self.tableau.basis[l])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(row) = leaving else {
                return LoopResult::Unbounded;
            };
            self.tableau.pivot(row, col, obj_row, obj_val);
            self.iterations += 1;
            if (*obj_val - last_obj).abs() <= tol {
                stall += 1;
            } else {
                stall = 0;
                last_obj = *obj_val;
            }
        }
    }

    /// After phase 1, pivot any artificial variables that remain basic (at
    /// value zero) out of the basis, or neutralize redundant rows.
    fn evict_basic_artificials(&mut self, tol: f64) {
        let non_art = self.tableau.non_artificial_cols;
        let rows = self.tableau.rows();
        let mut dummy_obj = vec![0.0; self.tableau.cols + 1];
        let mut dummy_val = 0.0;
        for r in 0..rows {
            if self.tableau.basis[r] < non_art {
                continue;
            }
            // Find any non-artificial column with a usable pivot element.
            let col = (0..non_art).find(|&c| self.tableau.a[r][c].abs() > tol);
            if let Some(c) = col {
                self.tableau.pivot(r, c, &mut dummy_obj, &mut dummy_val);
                self.iterations += 1;
            }
            // If no pivot column exists the row is redundant (all zeros);
            // the artificial stays basic at zero and is harmless because
            // artificial columns are excluded from phase-2 entering steps.
        }
    }

    /// Read the original-variable values out of the final tableau.
    fn extract_values(&self) -> Vec<f64> {
        let t = &self.tableau;
        let mut solver_values = vec![0.0; t.cols];
        for r in 0..t.rows() {
            solver_values[t.basis[r]] = t.rhs(r).max(0.0);
        }
        self.var_map
            .iter()
            .map(|m| match *m {
                VarMap::Shifted { col, lower } => lower + solver_values[col],
                VarMap::Mirrored { col, upper } => upper - solver_values[col],
                VarMap::Split { pos, neg } => solver_values[pos] - solver_values[neg],
            })
            .collect()
    }
}

enum LoopResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint(coeffs: &[(usize, f64)], sense: Sense, rhs: f64) -> LpConstraint {
        LpConstraint {
            coeffs: coeffs.to_vec(),
            sense,
            rhs,
        }
    }

    fn solve_default(p: &LpProblem) -> SimplexOutcome {
        solve(p, &SimplexConfig::default())
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
        // Expressed as minimization of -3x - 5y.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-3.0, -5.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::LessEqual, 4.0),
                constraint(&[(1, 2.0)], Sense::LessEqual, 12.0),
                constraint(&[(0, 3.0), (1, 2.0)], Sense::LessEqual, 18.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((objective + 36.0).abs() < 1e-6);
                assert!((values[0] - 2.0).abs() < 1e-6);
                assert!((values[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y == 10, x >= 3  => x=10? No: y free to be 0.
        // Optimal: maximize x share since 2 < 3 => x=10, y=0, obj 20.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![2.0, 3.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::Equal, 10.0),
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 3.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((objective - 20.0).abs() < 1e-6);
                assert!((values[0] - 10.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 5.0),
                constraint(&[(0, 1.0)], Sense::LessEqual, 2.0),
            ],
        };
        assert!(matches!(
            solve_default(&p),
            SimplexOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn unbounded_detected() {
        let p = LpProblem {
            num_vars: 1,
            costs: vec![-1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![constraint(&[(0, 1.0)], Sense::GreaterEqual, 1.0)],
        };
        assert!(matches!(
            solve_default(&p),
            SimplexOutcome::Unbounded { .. }
        ));
    }

    #[test]
    fn finite_upper_bounds_respected() {
        // min -x with x in [0, 7] => x = 7.
        let p = LpProblem {
            num_vars: 1,
            costs: vec![-1.0],
            lower: vec![0.0],
            upper: vec![7.0],
            constraints: vec![],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 7.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![0.0],
            upper: vec![f64::INFINITY],
            constraints: vec![constraint(&[(0, -1.0)], Sense::LessEqual, -3.0)],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 3.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn mirrored_variable_only_upper_bound() {
        // min x with x <= 4 and x >= -inf, constraint x >= -10 absent:
        // objective unbounded below? Add constraint x >= -2 to make bounded.
        let p = LpProblem {
            num_vars: 1,
            costs: vec![1.0],
            lower: vec![f64::NEG_INFINITY],
            upper: vec![4.0],
            constraints: vec![constraint(&[(0, 1.0)], Sense::GreaterEqual, -2.0)],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                values, objective, ..
            } => {
                assert!((values[0] + 2.0).abs() < 1e-6);
                assert!((objective + 2.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; correctness here is mostly "terminates
        // and returns a feasible optimum".
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-1.0, -1.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(0, 1.0), (1, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(0, 1.0)], Sense::LessEqual, 1.0),
                constraint(&[(1, 1.0)], Sense::LessEqual, 1.0),
            ],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal { objective, .. } => assert!((objective + 1.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn warm_hint_reaches_the_same_optimum_with_fewer_pivots() {
        // The Eq.9-shaped structure: equalities force artificials, so a cold
        // solve pays a full phase 1 that the warm crash skips.
        let n = 6usize;
        let p = LpProblem {
            num_vars: 2 * n,
            costs: (0..2 * n).map(|i| 1.0 + ((i * 7) % 5) as f64).collect(),
            lower: vec![0.0; 2 * n],
            upper: vec![1.0; 2 * n],
            constraints: (0..n)
                .map(|j| constraint(&[(2 * j, 1.0), (2 * j + 1, 1.0)], Sense::Equal, 1.0))
                .collect(),
        };
        let config = SimplexConfig::default();
        let SimplexOutcome::Optimal {
            objective: cold_obj,
            values: cold_values,
            iterations: cold_iters,
        } = solve(&p, &config)
        else {
            panic!("cold solve must be optimal")
        };
        let mut ws = SolverWorkspace::new();
        let SimplexOutcome::Optimal {
            objective: warm_obj,
            values: warm_values,
            iterations: warm_iters,
        } = solve_with_hint(&p, &config, Some(&cold_values), Some(&mut ws))
        else {
            panic!("warm solve must be optimal")
        };
        assert!((warm_obj - cold_obj).abs() < 1e-9);
        for (c, w) in cold_values.iter().zip(&warm_values) {
            assert!((c - w).abs() < 1e-9);
        }
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} pivots should beat cold {cold_iters}"
        );
        let stats = ws.stats();
        assert_eq!(stats.warm_solves, 1);
        assert_eq!(stats.cold_solves, 0);
        assert_eq!(stats.warm_pivots, warm_iters);
    }

    #[test]
    fn infeasible_hint_support_falls_back_to_cold_phase_one() {
        // Hint pointing at an infeasible corner: crash pivots cannot satisfy
        // the >= row, so phase 1 must still run and the hint is rejected —
        // but the answer is unchanged.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![2.0, 3.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0), (1, 1.0)], Sense::Equal, 10.0),
                constraint(&[(0, 1.0)], Sense::GreaterEqual, 3.0),
            ],
        };
        let mut ws = SolverWorkspace::new();
        let bogus_hint = [0.0, 0.0];
        match solve_with_hint(
            &p,
            &SimplexConfig::default(),
            Some(&bogus_hint),
            Some(&mut ws),
        ) {
            SimplexOutcome::Optimal { objective, .. } => {
                assert!((objective - 20.0).abs() < 1e-6)
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        assert_eq!(ws.stats().rejected_hints, 1);
        assert_eq!(ws.stats().cold_solves, 1);
    }

    #[test]
    fn workspace_rows_are_reused_across_solves() {
        let p = LpProblem {
            num_vars: 2,
            costs: vec![-3.0, -5.0],
            lower: vec![0.0, 0.0],
            upper: vec![f64::INFINITY, f64::INFINITY],
            constraints: vec![
                constraint(&[(0, 1.0)], Sense::LessEqual, 4.0),
                constraint(&[(1, 2.0)], Sense::LessEqual, 12.0),
                constraint(&[(0, 3.0), (1, 2.0)], Sense::LessEqual, 18.0),
            ],
        };
        let mut ws = SolverWorkspace::new();
        let first = solve_with_hint(&p, &SimplexConfig::default(), None, Some(&mut ws));
        assert_eq!(ws.pooled_rows(), 3, "three tableau rows must be recycled");
        let second = solve_with_hint(&p, &SimplexConfig::default(), None, Some(&mut ws));
        assert_eq!(first, second, "workspace reuse must not change results");
        assert_eq!(ws.stats().cold_solves, 2);
    }

    #[test]
    fn zero_constraint_problem() {
        // No constraints at all, bounded purely by variable bounds.
        let p = LpProblem {
            num_vars: 2,
            costs: vec![1.0, -1.0],
            lower: vec![0.0, 0.0],
            upper: vec![5.0, 5.0],
            constraints: vec![],
        };
        match solve_default(&p) {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => {
                assert!((values[0] - 0.0).abs() < 1e-6);
                assert!((values[1] - 5.0).abs() < 1e-6);
                assert!((objective + 5.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
