//! The model builder: variables, constraints, objective, and the `solve`
//! entry points.

use crate::branch_bound::{self, BranchBoundConfig};
use crate::cache::{CacheLookup, ModelFingerprint};
use crate::error::MilpError;
use crate::expr::{LinExpr, Var};
use crate::simplex::{self, BasisSnapshot, DualOutcome, SimplexConfig, SimplexOutcome};
use crate::solution::{Solution, SolveStatus};
use crate::workspace::SolverWorkspace;
use serde::{Deserialize, Serialize};

/// Result of attempting a dual-restart LP solve at a branch & bound node.
// One short-lived value per node solve, consumed immediately — the size gap
// to the unit variant never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum DualLp {
    /// The restart ran to a definitive verdict; the solution (and optionally
    /// the re-captured basis) is as trustworthy as a cold solve's.
    Finished(Solution, Option<BasisSnapshot>),
    /// The restart was abandoned (pivot cap or incompatible snapshot); the
    /// caller must solve the node cold.
    Fallback,
}

/// The kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// A continuous variable.
    Continuous,
    /// A general integer variable.
    Integer,
    /// A 0/1 variable (bounds are forced into `[0, 1]`).
    Binary,
}

/// The sense (direction) of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// `expr <= rhs`
    LessEqual,
    /// `expr >= rhs`
    GreaterEqual,
    /// `expr == rhs`
    Equal,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Metadata for one decision variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarInfo {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Continuous / integer / binary.
    pub kind: VarKind,
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
}

/// A linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Left-hand-side expression (constant folded into the rhs at solve time).
    pub expr: LinExpr,
    /// Direction of the constraint.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// `true` if the given point satisfies the constraint within `tol`.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.sense {
            Sense::LessEqual => lhs <= self.rhs + tol,
            Sense::GreaterEqual => lhs >= self.rhs - tol,
            Sense::Equal => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A mixed-integer linear program under construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Model name (used in diagnostics).
    pub name: String,
    vars: Vec<VarInfo>,
    constraints: Vec<Constraint>,
    objective: Option<(Direction, LinExpr)>,
}

impl Model {
    /// Create an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: None,
        }
    }

    /// Add a decision variable and return its handle.
    ///
    /// For [`VarKind::Binary`] the bounds are clamped into `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> Var {
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        self.vars.push(VarInfo {
            name: name.into(),
            kind,
            lower,
            upper,
        });
        Var(self.vars.len() - 1)
    }

    /// Convenience: add a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Convenience: add a non-negative continuous variable.
    pub fn add_non_negative(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY)
    }

    /// Add a constraint `expr (<=|>=|==) rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        sense: Sense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            expr: expr.into(),
            sense,
            rhs,
        });
    }

    /// Set a minimization objective.
    pub fn minimize(&mut self, expr: impl Into<LinExpr>) {
        self.objective = Some((Direction::Minimize, expr.into()));
    }

    /// Set a maximization objective.
    pub fn maximize(&mut self, expr: impl Into<LinExpr>) {
        self.objective = Some((Direction::Maximize, expr.into()));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn var_info(&self, var: Var) -> &VarInfo {
        &self.vars[var.index()]
    }

    /// All variables.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective, if one has been set.
    pub fn objective(&self) -> Option<(&Direction, &LinExpr)> {
        self.objective.as_ref().map(|(d, e)| (d, e))
    }

    /// `true` if the model contains integer or binary variables.
    pub fn has_integer_vars(&self) -> bool {
        self.vars
            .iter()
            .any(|v| matches!(v.kind, VarKind::Integer | VarKind::Binary))
    }

    /// Indices of integer/binary variables.
    pub fn integer_var_indices(&self) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| i)
            .collect()
    }

    /// Validate the model: bounds, finite coefficients, variable indices.
    pub fn validate(&self) -> Result<(), MilpError> {
        for v in &self.vars {
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(MilpError::NonFiniteCoefficient {
                    context: format!("bounds of variable `{}`", v.name),
                });
            }
            if v.lower > v.upper {
                return Err(MilpError::InvalidBounds {
                    name: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        let check_expr = |expr: &LinExpr, ctx: &str| -> Result<(), MilpError> {
            if !expr.is_finite() {
                return Err(MilpError::NonFiniteCoefficient {
                    context: ctx.to_string(),
                });
            }
            if let Some(max) = expr.max_var_index() {
                if max >= self.vars.len() {
                    return Err(MilpError::UnknownVariable {
                        index: max,
                        model_vars: self.vars.len(),
                    });
                }
            }
            Ok(())
        };
        for c in &self.constraints {
            check_expr(&c.expr, &format!("constraint `{}`", c.name))?;
            if c.rhs.is_nan() {
                return Err(MilpError::NonFiniteCoefficient {
                    context: format!("rhs of constraint `{}`", c.name),
                });
            }
        }
        match &self.objective {
            Some((_, expr)) => check_expr(expr, "objective"),
            None => Err(MilpError::MissingObjective),
        }
    }

    /// Check whether a candidate point is feasible for all constraints and
    /// bounds (integrality is checked for integer/binary variables).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        for (i, v) in self.vars.iter().enumerate() {
            let x = values.get(i).copied().unwrap_or(0.0);
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Rank a warm-start candidate: smaller is better. Infeasible points
    /// rank behind every feasible one (the solver would reject them and
    /// fall back cold), feasible points by objective value oriented so that
    /// improving the objective improves the rank.
    fn hint_preference(&self, values: &[f64]) -> f64 {
        if !self.is_feasible(values, 1e-6) {
            return f64::INFINITY;
        }
        match &self.objective {
            Some((Direction::Minimize, expr)) => expr.evaluate(values),
            Some((Direction::Maximize, expr)) => -expr.evaluate(values),
            None => 0.0,
        }
    }

    /// Solve with default configuration.
    pub fn solve(&self) -> Result<Solution, MilpError> {
        self.solve_with(&SimplexConfig::default(), &BranchBoundConfig::default())
    }

    /// Solve with explicit simplex / branch-and-bound configuration.
    pub fn solve_with(
        &self,
        simplex_config: &SimplexConfig,
        bb_config: &BranchBoundConfig,
    ) -> Result<Solution, MilpError> {
        self.validate()?;
        if self.has_integer_vars() {
            branch_bound::solve(self, simplex_config, bb_config)
        } else {
            self.solve_lp_relaxation(simplex_config, None, None, None)
        }
    }

    /// Solve with a warm start: `hint` is a prior solution for a similar
    /// model (seeds the branch-and-bound incumbent and the simplex crash
    /// basis when feasible; ignored otherwise), and `workspace` carries
    /// reusable allocations plus cold/warm statistics across solves.
    ///
    /// The returned solution is the same optimum [`Model::solve_with`]
    /// finds — warm starting changes only the amount of work spent.
    ///
    /// When the workspace carries a [`crate::SolutionCache`], the model is
    /// fingerprinted and the cache consulted first: an exact fingerprint
    /// match returns the stored solution without solving (the cached entry
    /// was produced by a bit-identical model and configuration), while a
    /// structural match only contributes its values as the warm-start hint
    /// — never trusted as optimal. Solutions solved to optimality are
    /// published back into the cache.
    ///
    /// ```
    /// use waterwise_milp::{
    ///     BranchBoundConfig, Model, Sense, SimplexConfig, SolverWorkspace, VarKind,
    /// };
    ///
    /// // minimize 2x + y  s.t.  x + y = 1, binary x, y — the shape of one
    /// // WaterWise assignment row (equality constraints are where phase-1
    /// // skipping pays).
    /// let mut model = Model::new("warm-example");
    /// let x = model.add_var("x", VarKind::Binary, 0.0, 1.0);
    /// let y = model.add_var("y", VarKind::Binary, 0.0, 1.0);
    /// model.add_constraint("assign", x + y, Sense::Equal, 1.0);
    /// model.minimize(x * 2.0 + y * 1.0);
    ///
    /// let mut workspace = SolverWorkspace::new();
    /// let simplex = SimplexConfig::default();
    /// let bb = BranchBoundConfig::default();
    /// // First solve is cold; the second reuses the first solution as a
    /// // warm-start hint (same optimum, less work).
    /// let cold = model.solve_warm(&simplex, &bb, None, &mut workspace).unwrap();
    /// let warm = model
    ///     .solve_warm(&simplex, &bb, Some(&cold.values), &mut workspace)
    ///     .unwrap();
    /// assert_eq!(cold.objective, warm.objective);
    /// assert_eq!(workspace.stats().cold_solves, 1);
    /// assert_eq!(workspace.stats().warm_solves, 1);
    /// ```
    pub fn solve_warm(
        &self,
        simplex_config: &SimplexConfig,
        bb_config: &BranchBoundConfig,
        hint: Option<&[f64]>,
        workspace: &mut SolverWorkspace,
    ) -> Result<Solution, MilpError> {
        self.validate()?;
        let fingerprint = workspace
            .cache()
            .is_some()
            .then(|| ModelFingerprint::of(self, simplex_config, bb_config));
        let mut cached_hint: Option<Vec<f64>> = None;
        if let Some(fingerprint) = fingerprint {
            match workspace.cache_lookup(fingerprint) {
                CacheLookup::Exact(solution) => return Ok(solution),
                CacheLookup::Hint(values) if values.len() == self.num_vars() => {
                    cached_hint = Some(values);
                }
                CacheLookup::Hint(_) | CacheLookup::Miss => {}
            }
        }
        // Two candidate hints can coexist: the caller's (for example a
        // carried-forward prior assignment, tailored to this objective) and
        // the cache's (the optimum of a structurally identical model that
        // may have been solved under *different* objective data). Keep the
        // one that scores better on this model's own objective — the solver
        // validates the survivor before use, so the choice affects work,
        // never results.
        let hint = match (&cached_hint, hint) {
            (Some(cached), Some(caller)) => {
                if self.hint_preference(cached) <= self.hint_preference(caller) {
                    Some(cached.as_slice())
                } else {
                    Some(caller)
                }
            }
            (Some(cached), None) => Some(cached.as_slice()),
            (None, caller) => caller,
        };
        let solution = if self.has_integer_vars() {
            branch_bound::solve_warm(self, simplex_config, bb_config, hint, Some(workspace))?
        } else {
            self.solve_lp_relaxation(simplex_config, None, hint, Some(workspace))?
        };
        if let Some(fingerprint) = fingerprint {
            // Only certified optima are cached: a budget-limited incumbent
            // is hint-dependent, and replaying it on an exact hit could
            // diverge from what a cache-free solve returns.
            if solution.status == SolveStatus::Optimal {
                workspace.cache_insert(fingerprint, &solution);
            }
        }
        Ok(solution)
    }

    /// Solve the LP relaxation (integrality dropped), optionally with
    /// per-variable bound overrides, a warm-start hint, and a reusable
    /// workspace — used by branch & bound.
    pub(crate) fn solve_lp_relaxation(
        &self,
        config: &SimplexConfig,
        bound_overrides: Option<&[(f64, f64)]>,
        hint: Option<&[f64]>,
        workspace: Option<&mut SolverWorkspace>,
    ) -> Result<Solution, MilpError> {
        self.solve_lp_relaxation_captured(config, bound_overrides, hint, workspace, false)
            .map(|(solution, _)| solution)
    }

    /// Like [`Model::solve_lp_relaxation`], but when `capture` is set the
    /// final simplex basis of an optimal solve is returned as a
    /// [`BasisSnapshot`] for dual restarts at child branch & bound nodes.
    pub(crate) fn solve_lp_relaxation_captured(
        &self,
        config: &SimplexConfig,
        bound_overrides: Option<&[(f64, f64)]>,
        hint: Option<&[f64]>,
        workspace: Option<&mut SolverWorkspace>,
        capture: bool,
    ) -> Result<(Solution, Option<BasisSnapshot>), MilpError> {
        let problem = match self.build_lp(bound_overrides)? {
            Ok(problem) => problem,
            Err(trivial) => return Ok((trivial, None)),
        };
        let (outcome, snapshot) = if capture {
            simplex::solve_with_basis_capture(&problem, config, hint, workspace)
        } else {
            (
                simplex::solve_with_hint(&problem, config, hint, workspace),
                None,
            )
        };
        Ok((self.lp_solution(outcome), snapshot))
    }

    /// Attempt a dual-restart LP relaxation solve from a parent node's basis
    /// snapshot. Returns [`DualLp::Fallback`] when the snapshot cannot be
    /// used (the caller then solves cold); a finished restart's solution is
    /// equivalent to a cold solve's.
    pub(crate) fn solve_lp_relaxation_dual(
        &self,
        config: &SimplexConfig,
        bound_overrides: Option<&[(f64, f64)]>,
        snapshot: &BasisSnapshot,
        workspace: Option<&mut SolverWorkspace>,
    ) -> Result<DualLp, MilpError> {
        let problem = match self.build_lp(bound_overrides)? {
            Ok(problem) => problem,
            Err(trivial) => return Ok(DualLp::Finished(trivial, None)),
        };
        Ok(
            match simplex::solve_dual_from_snapshot(&problem, config, snapshot, workspace) {
                DualOutcome::Finished(outcome, captured) => {
                    DualLp::Finished(self.lp_solution(outcome), captured)
                }
                DualOutcome::PivotLimit { .. } | DualOutcome::Incompatible => DualLp::Fallback,
            },
        )
    }

    /// Build the standard-form LP relaxation (integrality dropped,
    /// maximization mapped to minimization). The inner `Err` carries the
    /// trivially-infeasible solution produced when branching empties a
    /// variable's bound box.
    fn build_lp(
        &self,
        bound_overrides: Option<&[(f64, f64)]>,
    ) -> Result<Result<simplex::LpProblem, Solution>, MilpError> {
        let (direction, objective) = self.objective.as_ref().ok_or(MilpError::MissingObjective)?;
        let sign = match direction {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        };
        let mut costs = vec![0.0; self.vars.len()];
        for (i, c) in objective.iter_terms() {
            costs[i] = sign * c;
        }
        let mut lower: Vec<f64> = self.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = self.vars.iter().map(|v| v.upper).collect();
        if let Some(overrides) = bound_overrides {
            for (i, (lo, hi)) in overrides.iter().enumerate() {
                lower[i] = lower[i].max(*lo);
                upper[i] = upper[i].min(*hi);
                if lower[i] > upper[i] {
                    // Branching produced an empty box: trivially infeasible.
                    return Ok(Err(Solution {
                        status: SolveStatus::Infeasible,
                        objective: f64::INFINITY,
                        values: vec![0.0; self.vars.len()],
                        simplex_iterations: 0,
                        nodes_explored: 0,
                    }));
                }
            }
        }
        Ok(Ok(simplex::LpProblem {
            num_vars: self.vars.len(),
            costs,
            lower,
            upper,
            constraints: self
                .constraints
                .iter()
                .map(|c| simplex::LpConstraint {
                    coeffs: c.expr.iter_terms().collect(),
                    sense: c.sense,
                    rhs: c.rhs - c.expr.constant_term(),
                })
                .collect(),
        }))
    }

    /// Map a simplex outcome back into model space (objective re-evaluated
    /// in the model's own direction).
    fn lp_solution(&self, outcome: SimplexOutcome) -> Solution {
        let (direction, objective) = self
            .objective
            .as_ref()
            // lint:allow(DET003: lp_solution is private and only reachable through solve, which errors on a missing objective before building the LP)
            .expect("build_lp already required an objective");
        match outcome {
            SimplexOutcome::Optimal {
                values, iterations, ..
            } => Solution {
                status: SolveStatus::Optimal,
                objective: objective.evaluate(&values),
                values,
                simplex_iterations: iterations,
                nodes_explored: 1,
            },
            SimplexOutcome::Infeasible { iterations } => Solution {
                status: SolveStatus::Infeasible,
                objective: f64::INFINITY,
                values: vec![0.0; self.vars.len()],
                simplex_iterations: iterations,
                nodes_explored: 1,
            },
            SimplexOutcome::Unbounded { iterations } => Solution {
                status: SolveStatus::Unbounded,
                objective: match direction {
                    Direction::Minimize => f64::NEG_INFINITY,
                    Direction::Maximize => f64::INFINITY,
                },
                values: vec![0.0; self.vars.len()],
                simplex_iterations: iterations,
                nodes_explored: 1,
            },
            SimplexOutcome::IterationLimit { iterations } => Solution {
                status: SolveStatus::IterationLimit,
                objective: f64::NAN,
                values: vec![0.0; self.vars.len()],
                simplex_iterations: iterations,
                nodes_explored: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_lp_maximization() {
        // maximize 3x + 2y s.t. x + y <= 4, x <= 2
        let mut m = Model::new("lp");
        let x = m.add_non_negative("x");
        let y = m.add_non_negative("y");
        m.add_constraint("c1", x + y, Sense::LessEqual, 4.0);
        m.add_constraint("c2", x * 1.0, Sense::LessEqual, 2.0);
        m.maximize(x * 3.0 + y * 2.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective - 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_lp_minimization_with_equality() {
        // minimize x + 2y s.t. x + y == 3, y >= 1
        let mut m = Model::new("lp");
        let x = m.add_non_negative("x");
        let y = m.add_non_negative("y");
        m.add_constraint("sum", x + y, Sense::Equal, 3.0);
        m.add_constraint("ymin", y * 1.0, Sense::GreaterEqual, 1.0);
        m.minimize(x + y * 2.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!((sol.value(x) - 2.0).abs() < 1e-6);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_lp_detected() {
        let mut m = Model::new("bad");
        let x = m.add_non_negative("x");
        m.add_constraint("hi", x * 1.0, Sense::GreaterEqual, 5.0);
        m.add_constraint("lo", x * 1.0, Sense::LessEqual, 1.0);
        m.minimize(x * 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_lp_detected() {
        let mut m = Model::new("unbounded");
        let x = m.add_non_negative("x");
        m.add_constraint("c", x * 1.0, Sense::GreaterEqual, 1.0);
        m.maximize(x * 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn binary_knapsack() {
        // maximize 10a + 6b + 4c s.t. a + b + c <= 2 (binary)
        let mut m = Model::new("knapsack");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("cap", a + b + c, Sense::LessEqual, 2.0);
        m.maximize(a * 10.0 + b * 6.0 + c * 4.0);
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        assert!((sol.objective - 16.0).abs() < 1e-6);
        assert!(sol.is_one(a));
        assert!(sol.is_one(b));
        assert!(!sol.is_one(c));
    }

    #[test]
    fn integer_rounding_matters() {
        // maximize x + y s.t. 2x + y <= 4.5, x + 2y <= 4.5, integers.
        // LP optimum is x = y = 1.5 (objective 3), integer optimum is 2
        // (e.g. x=2,y=0 violates? 2*2+0=4 <= 4.5 ok, 2+0 <= 4.5 ok -> obj 2;
        //  x=1,y=1 -> obj 2). So MILP objective must be 2, not 3.
        let mut m = Model::new("int");
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY);
        m.add_constraint("c1", x * 2.0 + y, Sense::LessEqual, 4.5);
        m.add_constraint("c2", x + y * 2.0, Sense::LessEqual, 4.5);
        m.maximize(x + y);
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        // The MILP optimum must differ from the fractional LP optimum of 3.
        assert!((sol.objective - 3.0).abs() > 0.5);
        assert!(
            (sol.objective - 2.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn validation_catches_bad_bounds() {
        let mut m = Model::new("bad");
        m.add_var("x", VarKind::Continuous, 2.0, 1.0);
        m.minimize(LinExpr::constant(0.0));
        assert!(matches!(m.solve(), Err(MilpError::InvalidBounds { .. })));
    }

    #[test]
    fn validation_catches_missing_objective() {
        let mut m = Model::new("noobj");
        m.add_non_negative("x");
        assert!(matches!(m.validate(), Err(MilpError::MissingObjective)));
    }

    #[test]
    fn validation_catches_nan() {
        let mut m = Model::new("nan");
        let x = m.add_non_negative("x");
        m.add_constraint("c", x * f64::NAN, Sense::LessEqual, 1.0);
        m.minimize(x * 1.0);
        assert!(matches!(
            m.solve(),
            Err(MilpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn negative_lower_bounds_supported() {
        // minimize x s.t. x >= -5 (lower bound), x <= 3
        let mut m = Model::new("neg");
        let x = m.add_var("x", VarKind::Continuous, -5.0, 3.0);
        m.minimize(x * 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.value(x) + 5.0).abs() < 1e-6);
        assert!((sol.objective + 5.0).abs() < 1e-6);
    }

    #[test]
    fn free_variables_supported() {
        // minimize y s.t. y >= x - 4, y >= -x, x free, y free.
        // Optimum at x = 2, y = -2.
        let mut m = Model::new("free");
        let x = m.add_var("x", VarKind::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("c1", LinExpr::from(y) - x, Sense::GreaterEqual, -4.0);
        m.add_constraint("c2", y + x, Sense::GreaterEqual, 0.0);
        m.minimize(y * 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective + 2.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::new("fixed");
        let x = m.add_var("x", VarKind::Continuous, 2.5, 2.5);
        let y = m.add_non_negative("y");
        m.add_constraint("c", x + y, Sense::LessEqual, 5.0);
        m.maximize(y * 1.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 2.5).abs() < 1e-6);
        assert!((sol.value(y) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn feasibility_check_honors_integrality() {
        let mut m = Model::new("feas");
        let x = m.add_binary("x");
        m.add_constraint("c", x * 1.0, Sense::LessEqual, 1.0);
        m.minimize(x * 1.0);
        assert!(m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5], 1e-9));
        assert!(!m.is_feasible(&[2.0], 1e-9));
    }

    #[test]
    fn assignment_problem_with_capacity() {
        // 3 jobs, 2 regions; costs prefer region 0 but capacity forces a split.
        let mut m = Model::new("assign");
        let costs = [[1.0, 2.0], [1.0, 3.0], [1.0, 4.0]];
        let mut vars = Vec::new();
        for (j, row) in costs.iter().enumerate() {
            for (r, _) in row.iter().enumerate() {
                vars.push(m.add_binary(format!("x_{j}_{r}")));
            }
        }
        let var = |j: usize, r: usize| vars[j * 2 + r];
        for j in 0..3 {
            m.add_constraint(
                format!("assign_{j}"),
                LinExpr::from(var(j, 0)) + var(j, 1),
                Sense::Equal,
                1.0,
            );
        }
        // Region 0 can take at most 1 job.
        m.add_constraint(
            "cap_0",
            LinExpr::from(var(0, 0)) + var(1, 0) + var(2, 0),
            Sense::LessEqual,
            1.0,
        );
        let mut obj = LinExpr::zero();
        for j in 0..3 {
            for r in 0..2 {
                obj.add_term(var(j, r), costs[j][r]);
            }
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        // Best: the job with the largest region-1 penalty (job 2) goes to
        // region 0, the rest to region 1: 1 + 2 + 3 = 6.
        assert!(
            (sol.objective - 6.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        // Exactly one job in region 0.
        let in_r0: f64 = (0..3).map(|j| sol.value(var(j, 0))).sum();
        assert!((in_r0 - 1.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }
}
