//! Crash-safe on-disk persistence for the [`SolutionCache`].
//!
//! The warm state a campaign (or a long-lived placement host) accumulates in
//! its [`SolutionCache`] dies with the process unless it is persisted; this
//! module gives the cache a durable form so a restarted host resumes warm
//! instead of cold-starting every rolling-horizon solve.
//!
//! # File format (`waterwise-cache/1`)
//!
//! A snapshot is a single flat binary file in the same hand-rolled
//! little-endian style as the service wire codec — the workspace's compat
//! serde layer is a no-op, so nothing here round-trips through it:
//!
//! ```text
//! "waterwise-cache/1\n"                      ASCII header (version gate)
//! config_hash:  u64 LE                       solver-configuration hash
//! capacity:     u64 LE                       total entry capacity
//! next_stamp:   u64 LE                       recency-stamp counter
//! entry_count:  u64 LE
//! entry_count × {
//!     key:        u64 LE                     structural fingerprint key
//!     exact:      u64 LE                     exact fingerprint hash
//!     status:     u8                         SolveStatus discriminant (0–4)
//!     objective:  u64 LE                     f64 bits
//!     stamp:      u64 LE                     insertion recency stamp
//!     value_count: u64 LE
//!     value_count × u64 LE                   f64 bits per variable value
//! }
//! checksum:     u64 LE                       FNV-1a over everything after
//!                                            the header, excluding itself
//! ```
//!
//! Entries are written in the cache's canonical export order (shard index,
//! then ascending key, then bucket order), which [`SolutionCache::load`]
//! reproduces exactly — so save → load → save emits byte-identical files,
//! and a reloaded cache evicts in the same order the original would have.
//!
//! # Crash safety and failure typing
//!
//! [`SolutionCache::save`] never exposes a partially written file: it writes
//! to a process-unique temp sibling, `fsync`s it, and atomically renames it
//! over the destination. A crash at any point leaves either the old snapshot
//! or the new one, never a hybrid.
//!
//! [`SolutionCache::load`] refuses to hand back garbage. Every failure is a
//! typed [`CachePersistError`] naming the offending path: a foreign or
//! future-versioned file, a truncated file, a flipped byte (checksum), or a
//! snapshot produced under a different solver configuration
//! ([`solver_config_hash`]) whose stored "exact" solutions would not be
//! exact here. The checksum is verified *before* the configuration check,
//! so corruption is always reported as corruption even if the flipped byte
//! happens to land in the config-hash field.

use crate::branch_bound::BranchBoundConfig;
use crate::cache::{CacheExport, ExportedEntry, Fnv, SolutionCache};
use crate::simplex::SimplexConfig;
use crate::solution::SolveStatus;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Header line identifying a cache snapshot and its format version.
pub const CACHE_HEADER: &str = "waterwise-cache/1\n";

/// Why a cache snapshot could not be saved or loaded. Every variant names
/// the offending path so operators can find (and delete or restore) the
/// file; loads never return a partially decoded cache.
#[derive(Debug, Clone, PartialEq)]
pub enum CachePersistError {
    /// The underlying filesystem operation failed.
    Io {
        /// File the operation was addressing.
        path: PathBuf,
        /// Stringified OS error.
        message: String,
    },
    /// The file does not start with a `waterwise-cache/…` header: it is not
    /// a cache snapshot at all.
    BadHeader {
        /// File that was probed.
        path: PathBuf,
        /// The bytes found where the header was expected (lossy, truncated).
        found: String,
    },
    /// The file is a cache snapshot, but of a format version this build
    /// does not read.
    UnsupportedVersion {
        /// File that was probed.
        path: PathBuf,
        /// The full header line that was found.
        found: String,
    },
    /// The file ends before the declared content does.
    Truncated {
        /// File that was being decoded.
        path: PathBuf,
        /// Offset at which the decoder ran out of bytes.
        offset: usize,
    },
    /// The stored FNV-1a checksum does not match the content: at least one
    /// byte changed since the snapshot was written.
    ChecksumMismatch {
        /// File that failed verification.
        path: PathBuf,
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the file's content.
        actual: u64,
    },
    /// The snapshot was produced under a different solver configuration;
    /// its "exact" solutions would not be exact under this one.
    ConfigMismatch {
        /// File that was rejected.
        path: PathBuf,
        /// Configuration hash this process expects ([`solver_config_hash`]).
        expected: u64,
        /// Configuration hash stored in the file.
        found: u64,
    },
    /// The content is internally inconsistent (e.g. an unknown solve-status
    /// discriminant) despite a matching checksum.
    Invalid {
        /// File that was rejected.
        path: PathBuf,
        /// What was inconsistent.
        message: String,
    },
}

impl fmt::Display for CachePersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CachePersistError::Io { path, message } => {
                write!(
                    f,
                    "cache snapshot I/O error at {}: {message}",
                    path.display()
                )
            }
            CachePersistError::BadHeader { path, found } => write!(
                f,
                "{} is not a waterwise cache snapshot (found {found:?})",
                path.display()
            ),
            CachePersistError::UnsupportedVersion { path, found } => write!(
                f,
                "{} has unsupported cache snapshot version {found:?} (this build reads {:?})",
                path.display(),
                CACHE_HEADER.trim_end()
            ),
            CachePersistError::Truncated { path, offset } => write!(
                f,
                "cache snapshot {} is truncated (ended at byte {offset})",
                path.display()
            ),
            CachePersistError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "cache snapshot {} failed checksum verification \
                 (stored {expected:#018x}, computed {actual:#018x})",
                path.display()
            ),
            CachePersistError::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "cache snapshot {} was produced under a different solver configuration \
                 (expected hash {expected:#018x}, found {found:#018x})",
                path.display()
            ),
            CachePersistError::Invalid { path, message } => {
                write!(f, "cache snapshot {} is invalid: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for CachePersistError {}

/// Hash the solver configuration fields that [`crate::ModelFingerprint`]
/// folds into every exact hash: a snapshot saved under one configuration
/// must not satisfy exact lookups under another, so the save/load gate
/// covers exactly the same fields, in the same order, with the same hash.
pub fn solver_config_hash(simplex: &SimplexConfig, bb: &BranchBoundConfig) -> u64 {
    let mut hash = Fnv::new();
    hash.write_usize(simplex.max_iterations);
    hash.write_f64(simplex.tolerance);
    hash.write_usize(simplex.stall_threshold);
    hash.write_usize(bb.max_nodes);
    hash.write_f64(bb.integrality_tolerance);
    hash.write_f64(bb.absolute_gap);
    hash.write_u8(bb.use_dual_restart as u8);
    hash.finish()
}

/// Encode the cache into snapshot bytes (header + content + checksum).
/// Exposed so tests can corrupt snapshots surgically; [`SolutionCache::save`]
/// is the durable path.
pub fn encode_cache(cache: &SolutionCache, config_hash: u64) -> Vec<u8> {
    encode_export(&cache.export(), config_hash)
}

fn encode_export(export: &CacheExport, config_hash: u64) -> Vec<u8> {
    let mut bytes = Vec::from(CACHE_HEADER.as_bytes());
    let content_start = bytes.len();
    push_u64(&mut bytes, config_hash);
    push_u64(&mut bytes, export.capacity as u64);
    push_u64(&mut bytes, export.next_stamp);
    push_u64(&mut bytes, export.entries.len() as u64);
    for entry in &export.entries {
        push_u64(&mut bytes, entry.key);
        push_u64(&mut bytes, entry.exact);
        bytes.push(status_code(entry.status));
        push_u64(&mut bytes, entry.objective.to_bits());
        push_u64(&mut bytes, entry.stamp);
        push_u64(&mut bytes, entry.values.len() as u64);
        for value in &entry.values {
            push_u64(&mut bytes, value.to_bits());
        }
    }
    let checksum = fnv_bytes(&bytes[content_start..]);
    push_u64(&mut bytes, checksum);
    bytes
}

/// Decode snapshot bytes into a cache, enforcing the header, checksum, and
/// solver-configuration gates. `path` is only used to label errors.
/// Exposed so tests can decode surgically corrupted snapshots;
/// [`SolutionCache::load`] is the file-reading path.
pub fn decode_cache(
    bytes: &[u8],
    expected_config_hash: u64,
    path: &Path,
) -> Result<SolutionCache, CachePersistError> {
    let header = CACHE_HEADER.as_bytes();
    if bytes.len() < header.len() || &bytes[..header.len()] != header {
        return Err(classify_header(bytes, path));
    }
    let content_start = header.len();
    // The fixed fields plus the trailing checksum are the minimum content.
    if bytes.len() < content_start + 4 * 8 + 8 {
        return Err(CachePersistError::Truncated {
            path: path.to_path_buf(),
            offset: bytes.len(),
        });
    }
    let checksum_at = bytes.len() - 8;
    let stored_checksum = read_u64_unchecked(bytes, checksum_at);
    let actual_checksum = fnv_bytes(&bytes[content_start..checksum_at]);
    if stored_checksum != actual_checksum {
        return Err(CachePersistError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: stored_checksum,
            actual: actual_checksum,
        });
    }

    let mut cursor = Cursor {
        bytes: &bytes[..checksum_at],
        offset: content_start,
        path,
    };
    let config_hash = cursor.u64()?;
    if config_hash != expected_config_hash {
        return Err(CachePersistError::ConfigMismatch {
            path: path.to_path_buf(),
            expected: expected_config_hash,
            found: config_hash,
        });
    }
    let capacity = cursor.u64()? as usize;
    let next_stamp = cursor.u64()?;
    let entry_count = cursor.u64()?;
    let mut entries = Vec::new();
    for _ in 0..entry_count {
        let key = cursor.u64()?;
        let exact = cursor.u64()?;
        let status = status_from_code(cursor.u8()?, cursor.offset - 1, path)?;
        let objective = f64::from_bits(cursor.u64()?);
        let stamp = cursor.u64()?;
        let value_count = cursor.u64()?;
        let mut values = Vec::with_capacity(cursor.bounded_len(value_count));
        for _ in 0..value_count {
            values.push(f64::from_bits(cursor.u64()?));
        }
        entries.push(ExportedEntry {
            key,
            exact,
            status,
            objective,
            values,
            stamp,
        });
    }
    if cursor.offset != checksum_at {
        return Err(CachePersistError::Invalid {
            path: path.to_path_buf(),
            message: format!(
                "{} trailing bytes after the last declared entry",
                checksum_at - cursor.offset
            ),
        });
    }
    Ok(SolutionCache::import(CacheExport {
        capacity,
        next_stamp,
        entries,
    }))
}

impl SolutionCache {
    /// Persist the cache to `path` crash-safely: the snapshot is written to
    /// a process-unique temp sibling, flushed to stable storage, and
    /// atomically renamed into place — a crash mid-save leaves the previous
    /// snapshot (or no file) intact, never a torn one.
    ///
    /// `config_hash` must be [`solver_config_hash`] of the configuration the
    /// cached solutions were produced under; [`SolutionCache::load`] refuses
    /// snapshots whose hash differs from the loader's.
    pub fn save(&self, path: &Path, config_hash: u64) -> Result<(), CachePersistError> {
        let bytes = encode_cache(self, config_hash);
        let temp = temp_sibling(path);
        let write_result = (|| {
            let mut file = fs::File::create(&temp)?;
            file.write_all(&bytes)?;
            file.sync_all()
        })();
        if let Err(error) = write_result {
            // Best-effort cleanup; the original error is the one that counts.
            let _ = fs::remove_file(&temp);
            return Err(io_error(&temp, &error));
        }
        if let Err(error) = fs::rename(&temp, path) {
            let _ = fs::remove_file(&temp);
            return Err(io_error(path, &error));
        }
        // Make the rename itself durable where the platform allows syncing
        // the parent directory; failure here cannot tear the snapshot, so it
        // is not an error.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Load a snapshot previously written by [`SolutionCache::save`],
    /// verifying the format header, the content checksum, and that the
    /// snapshot was produced under the solver configuration hashing to
    /// `expected_config_hash`. Never returns a partially decoded cache.
    pub fn load(
        path: &Path,
        expected_config_hash: u64,
    ) -> Result<SolutionCache, CachePersistError> {
        let bytes = fs::read(path).map_err(|error| io_error(path, &error))?;
        decode_cache(&bytes, expected_config_hash, path)
    }
}

/// A drop guard that saves a shared cache on scope exit, so a host's warm
/// state reaches disk even on early-return shutdown paths.
///
/// The [`Drop`] save is best-effort (errors cannot surface from `drop`);
/// call [`CacheAutosave::finish`] on the orderly path to observe the result,
/// which also disarms the guard.
#[derive(Debug)]
pub struct CacheAutosave {
    cache: crate::cache::SolutionCacheHandle,
    path: PathBuf,
    config_hash: u64,
    armed: bool,
}

impl CacheAutosave {
    /// Arm an autosave of `cache` to `path` under `config_hash`.
    pub fn new(
        cache: crate::cache::SolutionCacheHandle,
        path: PathBuf,
        config_hash: u64,
    ) -> CacheAutosave {
        CacheAutosave {
            cache,
            path,
            config_hash,
            armed: true,
        }
    }

    /// Save now without disarming (periodic checkpoint).
    pub fn save_now(&self) -> Result<(), CachePersistError> {
        self.cache.save(&self.path, self.config_hash)
    }

    /// Save and disarm: the orderly-shutdown path, where the caller wants
    /// the error (if any) instead of a silent best-effort drop.
    pub fn finish(mut self) -> Result<(), CachePersistError> {
        self.armed = false;
        self.save_now()
    }
}

impl Drop for CacheAutosave {
    fn drop(&mut self) {
        if self.armed {
            // Best-effort: drop cannot report, and a failed autosave must
            // not panic the unwinding thread (DET003).
            let _ = self.save_now();
        }
    }
}

/// Distinguish "not our file" from "our file, future version".
fn classify_header(bytes: &[u8], path: &Path) -> CachePersistError {
    let prefix = b"waterwise-cache/";
    if bytes.starts_with(prefix) {
        let line_end = bytes
            .iter()
            .position(|b| *b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(bytes.len());
        return CachePersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: String::from_utf8_lossy(&bytes[..line_end]).into_owned(),
        };
    }
    let sample = &bytes[..bytes.len().min(CACHE_HEADER.len())];
    CachePersistError::BadHeader {
        path: path.to_path_buf(),
        found: String::from_utf8_lossy(sample).into_owned(),
    }
}

fn status_code(status: SolveStatus) -> u8 {
    match status {
        SolveStatus::Optimal => 0,
        SolveStatus::Feasible => 1,
        SolveStatus::Infeasible => 2,
        SolveStatus::Unbounded => 3,
        SolveStatus::IterationLimit => 4,
    }
}

fn status_from_code(
    code: u8,
    offset: usize,
    path: &Path,
) -> Result<SolveStatus, CachePersistError> {
    match code {
        0 => Ok(SolveStatus::Optimal),
        1 => Ok(SolveStatus::Feasible),
        2 => Ok(SolveStatus::Infeasible),
        3 => Ok(SolveStatus::Unbounded),
        4 => Ok(SolveStatus::IterationLimit),
        other => Err(CachePersistError::Invalid {
            path: path.to_path_buf(),
            message: format!("unknown solve-status code {other} at byte {offset}"),
        }),
    }
}

fn push_u64(bytes: &mut Vec<u8>, value: u64) {
    bytes.extend_from_slice(&value.to_le_bytes());
}

/// Read 8 LE bytes at `offset`; callers have already bounds-checked. A
/// short slice yields zero rather than a panic (DET003), but never occurs
/// on the checked paths.
fn read_u64_unchecked(bytes: &[u8], offset: usize) -> u64 {
    let mut le = [0u8; 8];
    for (i, slot) in le.iter_mut().enumerate() {
        *slot = bytes.get(offset + i).copied().unwrap_or(0);
    }
    u64::from_le_bytes(le)
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut hash = Fnv::new();
    for byte in bytes {
        hash.write_u8(*byte);
    }
    hash.finish()
}

fn io_error(path: &Path, error: &std::io::Error) -> CachePersistError {
    CachePersistError::Io {
        path: path.to_path_buf(),
        message: error.to_string(),
    }
}

/// A process-unique temp sibling of `path`, on the same filesystem so the
/// final `rename` is atomic.
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    PathBuf::from(name)
}

/// Bounded, byte-checked reads over the decoded region.
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
    path: &'a Path,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, CachePersistError> {
        match self.bytes.get(self.offset) {
            Some(byte) => {
                self.offset += 1;
                Ok(*byte)
            }
            None => Err(self.truncated()),
        }
    }

    fn u64(&mut self) -> Result<u64, CachePersistError> {
        if self.offset + 8 > self.bytes.len() {
            return Err(self.truncated());
        }
        let value = read_u64_unchecked(self.bytes, self.offset);
        self.offset += 8;
        Ok(value)
    }

    /// Clamp a declared element count to what the remaining bytes could
    /// possibly hold, so a corrupt count cannot drive a huge allocation
    /// before the truncation error surfaces.
    fn bounded_len(&self, declared: u64) -> usize {
        let remaining = (self.bytes.len() - self.offset) / 8;
        (declared as usize).min(remaining)
    }

    fn truncated(&self) -> CachePersistError {
        CachePersistError::Truncated {
            path: self.path.to_path_buf(),
            offset: self.offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ModelFingerprint;
    use crate::solution::Solution;

    fn sample_cache() -> SolutionCache {
        let cache = SolutionCache::with_capacity(64);
        for k in 0..5u64 {
            let solution = Solution {
                status: SolveStatus::Optimal,
                objective: k as f64 * 1.5,
                values: vec![k as f64, -0.0, f64::from_bits(0x7ff8_0000_0000_0001)],
                simplex_iterations: 3,
                nodes_explored: 1,
            };
            cache.insert(
                ModelFingerprint {
                    key: k,
                    exact: k * 11,
                },
                &solution,
            );
        }
        cache
    }

    #[test]
    fn encode_decode_is_byte_stable() {
        let cache = sample_cache();
        let bytes = encode_cache(&cache, 42);
        let decoded = decode_cache(&bytes, 42, Path::new("mem")).expect("decode");
        assert_eq!(
            encode_cache(&decoded, 42),
            bytes,
            "re-encode must be byte-equal"
        );
        assert_eq!(decoded.len(), cache.len());
        assert_eq!(decoded.capacity(), cache.capacity());
    }

    #[test]
    fn checksum_is_verified_before_config() {
        let cache = sample_cache();
        let mut bytes = encode_cache(&cache, 42);
        // Flip a byte inside the stored config hash: still a checksum error,
        // because corruption must never be reported as a config mismatch.
        let config_at = CACHE_HEADER.len();
        bytes[config_at] ^= 0xff;
        match decode_cache(&bytes, 42, Path::new("mem")) {
            Err(CachePersistError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn config_mismatch_is_typed() {
        let bytes = encode_cache(&sample_cache(), 42);
        match decode_cache(&bytes, 43, Path::new("mem")) {
            Err(CachePersistError::ConfigMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 43);
                assert_eq!(found, 42);
            }
            other => panic!("expected config mismatch, got {other:?}"),
        }
    }

    #[test]
    fn solver_config_hash_tracks_every_fingerprinted_field() {
        let simplex = SimplexConfig::default();
        let bb = BranchBoundConfig::default();
        let base = solver_config_hash(&simplex, &bb);
        assert_eq!(base, solver_config_hash(&simplex, &bb), "deterministic");

        let mut s = simplex;
        s.max_iterations += 1;
        assert_ne!(base, solver_config_hash(&s, &bb));
        let mut s = simplex;
        s.tolerance *= 2.0;
        assert_ne!(base, solver_config_hash(&s, &bb));
        let mut s = simplex;
        s.stall_threshold += 1;
        assert_ne!(base, solver_config_hash(&s, &bb));
        let mut b = bb;
        b.max_nodes += 1;
        assert_ne!(base, solver_config_hash(&simplex, &b));
        let mut b = bb;
        b.integrality_tolerance *= 2.0;
        assert_ne!(base, solver_config_hash(&simplex, &b));
        let mut b = bb;
        b.absolute_gap += 1.0;
        assert_ne!(base, solver_config_hash(&simplex, &b));
        let mut b = bb;
        b.use_dual_restart = !b.use_dual_restart;
        assert_ne!(base, solver_config_hash(&simplex, &b));
    }
}
