//! Error types for model construction and solving.

use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The model references a variable that does not belong to it.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables in the model.
        model_vars: usize,
    },
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// A coefficient, bound, or right-hand side is NaN.
    NonFiniteCoefficient {
        /// Where the NaN was found.
        context: String,
    },
    /// No objective was set before calling `solve`.
    MissingObjective,
    /// The problem was proven infeasible.
    Infeasible,
    /// The problem is unbounded in the optimization direction.
    Unbounded,
    /// The iteration or node budget was exhausted before proving optimality.
    IterationLimit {
        /// Iterations or nodes expended.
        spent: usize,
    },
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::UnknownVariable { index, model_vars } => write!(
                f,
                "variable index {index} does not belong to this model ({model_vars} variables)"
            ),
            MilpError::InvalidBounds { name, lower, upper } => {
                write!(f, "variable `{name}` has invalid bounds [{lower}, {upper}]")
            }
            MilpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient encountered in {context}")
            }
            MilpError::MissingObjective => write!(f, "no objective set"),
            MilpError::Infeasible => write!(f, "problem is infeasible"),
            MilpError::Unbounded => write!(f, "problem is unbounded"),
            MilpError::IterationLimit { spent } => {
                write!(f, "iteration/node limit reached after {spent} steps")
            }
        }
    }
}

impl std::error::Error for MilpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MilpError::InvalidBounds {
            name: "x".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(e.to_string().contains('x'));
        assert!(MilpError::Infeasible.to_string().contains("infeasible"));
        assert!(MilpError::Unbounded.to_string().contains("unbounded"));
        assert!(MilpError::MissingObjective
            .to_string()
            .contains("objective"));
        assert!(MilpError::IterationLimit { spent: 3 }
            .to_string()
            .contains('3'));
        assert!(MilpError::UnknownVariable {
            index: 7,
            model_vars: 2
        }
        .to_string()
        .contains('7'));
        assert!(MilpError::NonFiniteCoefficient {
            context: "objective".into()
        }
        .to_string()
        .contains("objective"));
    }
}
