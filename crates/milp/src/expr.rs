//! Variables and linear expressions.
//!
//! A [`Var`] is a lightweight handle (index) into a [`crate::Model`]. A
//! [`LinExpr`] is a sparse linear combination of variables plus a constant
//! term, built with ordinary `+`, `-`, and `*` operators so that model
//! construction reads like the mathematical formulation in the paper.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A handle to a decision variable in a [`crate::Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's index within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse linear expression: `Σ coeff_i · var_i + constant`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinExpr {
    /// Coefficients keyed by variable index (kept sorted for determinism).
    terms: BTreeMap<usize, f64>,
    /// Constant offset.
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(value: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// A single-term expression `coeff * var`.
    pub fn term(var: Var, coeff: f64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0.0 {
            terms.insert(var.0, coeff);
        }
        Self {
            terms,
            constant: 0.0,
        }
    }

    /// Add `coeff * var` to this expression in place.
    pub fn add_term(&mut self, var: Var, coeff: f64) {
        let entry = self.terms.entry(var.0).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var.0);
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// Iterate `(variable index, coefficient)` pairs in index order.
    pub fn iter_terms(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (i, c))
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if there are no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().copied()
    }

    /// `true` if every coefficient and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }

    /// Evaluate the expression at a point given by a dense value vector.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(&i, &c)| c * values.get(i).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// Sum a sequence of expressions.
    pub fn sum(exprs: impl IntoIterator<Item = LinExpr>) -> LinExpr {
        let mut acc = LinExpr::zero();
        for e in exprs {
            acc += e;
        }
        acc
    }
}

impl From<Var> for LinExpr {
    fn from(var: Var) -> Self {
        LinExpr::term(var, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(value: f64) -> Self {
        LinExpr::constant(value)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (i, c) in rhs.terms {
            let entry = self.terms.entry(i).or_insert(0.0);
            *entry += c;
            if *entry == 0.0 {
                self.terms.remove(&i);
            }
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        if rhs == 0.0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

// --- Var operator sugar -------------------------------------------------

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn build_and_evaluate() {
        let e = v(0) * 2.0 + v(1) * 3.0 + 1.0;
        assert_eq!(e.coefficient(v(0)), 2.0);
        assert_eq!(e.coefficient(v(1)), 3.0);
        assert_eq!(e.constant_term(), 1.0);
        assert_eq!(e.evaluate(&[1.0, 2.0]), 2.0 + 6.0 + 1.0);
    }

    #[test]
    fn cancellation_removes_terms() {
        let e = v(0) * 2.0 + v(0) * -2.0;
        assert!(e.is_empty());
        assert_eq!(e.coefficient(v(0)), 0.0);
    }

    #[test]
    fn subtraction_and_negation() {
        let e = (v(0) + v(1)) - v(1);
        assert_eq!(e.coefficient(v(0)), 1.0);
        assert_eq!(e.coefficient(v(1)), 0.0);
        let n = -(v(0) * 3.0 + 2.0);
        assert_eq!(n.coefficient(v(0)), -3.0);
        assert_eq!(n.constant_term(), -2.0);
    }

    #[test]
    fn scaling() {
        let e = (v(0) * 2.0 + 4.0) * 0.5;
        assert_eq!(e.coefficient(v(0)), 1.0);
        assert_eq!(e.constant_term(), 2.0);
        let z = (v(0) * 2.0) * 0.0;
        assert!(z.is_empty());
    }

    #[test]
    fn sum_of_expressions() {
        let total = LinExpr::sum((0..4).map(|i| v(i) * 1.0));
        assert_eq!(total.len(), 4);
        assert_eq!(total.evaluate(&[1.0, 1.0, 1.0, 1.0]), 4.0);
    }

    #[test]
    fn max_var_index_and_finiteness() {
        let e = v(3) * 1.0 + v(7) * 2.0;
        assert_eq!(e.max_var_index(), Some(7));
        assert!(e.is_finite());
        let bad = v(0) * f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn evaluate_with_short_value_vector_treats_missing_as_zero() {
        let e = v(5) * 2.0 + 1.0;
        assert_eq!(e.evaluate(&[0.0]), 1.0);
    }
}
