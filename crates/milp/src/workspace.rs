//! Reusable solver state for rolling-horizon (repeated) solves.
//!
//! A [`SolverWorkspace`] serves two purposes:
//!
//! * **Allocation reuse** — the dense simplex tableau is the dominant
//!   allocation of a solve; the workspace pools the row vectors so a
//!   scheduler re-solving every slot does not pay a fresh `m × n` allocation
//!   per round.
//! * **Warm-start accounting** — every simplex run that goes through a
//!   workspace records whether it was warm-started (crash basis built from a
//!   prior solution, phase 1 skipped) or cold (two-phase from the all-slack
//!   basis), and how many pivots it spent. The cold-vs-warm split is what the
//!   Fig. 14 overhead experiment and the scheduler's `SolveStats` report.

use crate::cache::{CacheLookup, CacheStats, ModelFingerprint, SolutionCacheHandle};
use crate::simplex::BasisSnapshot;
use crate::solution::Solution;
use serde::{Deserialize, Serialize};

/// Cold-vs-warm solve counters accumulated by a [`SolverWorkspace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStats {
    /// Simplex runs performed without a usable warm-start hint.
    pub cold_solves: usize,
    /// Simplex runs that built a crash basis from a prior solution and
    /// skipped phase 1 entirely, plus dual restarts from a basis snapshot.
    pub warm_solves: usize,
    /// Pivots spent in cold runs (both phases). Runs whose hint was
    /// rejected count here too, *including* their wasted crash pivots —
    /// this bucket measures what non-warm solves actually cost, not what an
    /// ideal hint-free solver would have cost.
    pub cold_pivots: usize,
    /// Pivots spent in warm runs (crash pivots + phase 2, or dual-restart
    /// pivots for basis-snapshot restarts).
    pub warm_pivots: usize,
    /// Hints that were offered but rejected (crash basis could not eliminate
    /// the artificial variables, so the run fell back to a cold phase 1).
    pub rejected_hints: usize,
    /// Dual-simplex restarts *attempted* from a parent-node basis snapshot
    /// (branch & bound child nodes; see
    /// [`crate::simplex::solve_dual_from_snapshot`]).
    pub dual_restarts: usize,
    /// Dual restarts that ran to a definitive verdict without falling back
    /// to a cold solve. `dual_restarts - basis_reuse_hits` is the number of
    /// cold fallbacks (pivot cap hit or snapshot incompatible).
    pub basis_reuse_hits: usize,
    /// Standard-form rows whose rhs actually moved across all dual restarts
    /// — the sparse work a restart replays instead of a full re-solve.
    pub bound_flips: usize,
}

impl WarmStats {
    /// Counters accumulated since `earlier` (both taken from the same
    /// workspace). Saturating: if the workspace was reset or replaced
    /// between the two snapshots, the delta clamps to zero instead of
    /// underflowing the campaign-level counters.
    pub fn delta_since(&self, earlier: &WarmStats) -> WarmStats {
        WarmStats {
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            cold_pivots: self.cold_pivots.saturating_sub(earlier.cold_pivots),
            warm_pivots: self.warm_pivots.saturating_sub(earlier.warm_pivots),
            rejected_hints: self.rejected_hints.saturating_sub(earlier.rejected_hints),
            dual_restarts: self.dual_restarts.saturating_sub(earlier.dual_restarts),
            basis_reuse_hits: self
                .basis_reuse_hits
                .saturating_sub(earlier.basis_reuse_hits),
            bound_flips: self.bound_flips.saturating_sub(earlier.bound_flips),
        }
    }

    /// Mean pivots per cold solve (0 when no cold solve happened).
    pub fn mean_cold_pivots(&self) -> f64 {
        if self.cold_solves == 0 {
            0.0
        } else {
            self.cold_pivots as f64 / self.cold_solves as f64
        }
    }

    /// Mean pivots per warm solve (0 when no warm solve happened).
    pub fn mean_warm_pivots(&self) -> f64 {
        if self.warm_solves == 0 {
            0.0
        } else {
            self.warm_pivots as f64 / self.warm_solves as f64
        }
    }
}

/// Reusable allocations plus warm-start statistics shared across solves.
///
/// Create one per scheduler (or per thread) and pass it to
/// [`crate::Model::solve_warm`]; the workspace is deliberately not `Sync` —
/// concurrent campaigns each carry their own.
///
/// ```
/// use waterwise_milp::SolverWorkspace;
///
/// let workspace = SolverWorkspace::new();
/// assert_eq!(workspace.stats().cold_solves, 0);
/// assert!(workspace.cache().is_none());
/// ```
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Pool of tableau rows returned by finished solves.
    row_pool: Vec<Vec<f64>>,
    stats: WarmStats,
    /// Optional shared solution cache consulted by [`crate::Model::solve_warm`]
    /// before any cold/warm solving.
    cache: Option<SolutionCacheHandle>,
    /// This workspace's own view of its cache traffic (the shared cache also
    /// keeps aggregate counters across every workspace attached to it).
    cache_stats: CacheStats,
}

impl SolverWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated cold/warm statistics.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Attach a (possibly shared) solution cache. Subsequent
    /// [`crate::Model::solve_warm`] calls consult it before solving and
    /// publish optimal solutions back into it.
    pub fn attach_cache(&mut self, cache: SolutionCacheHandle) {
        self.cache = Some(cache);
    }

    /// Detach the solution cache, returning the handle if one was attached.
    pub fn detach_cache(&mut self) -> Option<SolutionCacheHandle> {
        self.cache.take()
    }

    /// The attached solution cache, if any.
    pub fn cache(&self) -> Option<&SolutionCacheHandle> {
        self.cache.as_ref()
    }

    /// This workspace's cache hit/miss/eviction counters (all zero when no
    /// cache is attached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Probe the attached cache for `fingerprint`, recording the outcome in
    /// this workspace's local counters. Returns `Miss` when no cache is
    /// attached.
    pub(crate) fn cache_lookup(&mut self, fingerprint: ModelFingerprint) -> CacheLookup {
        let Some(cache) = &self.cache else {
            return CacheLookup::Miss;
        };
        let lookup = cache.lookup(fingerprint);
        self.cache_stats.record_lookup(&lookup);
        lookup
    }

    /// Publish a solution into the attached cache (no-op without one).
    pub(crate) fn cache_insert(&mut self, fingerprint: ModelFingerprint, solution: &Solution) {
        if let Some(cache) = &self.cache {
            let evicted = cache.insert(fingerprint, solution);
            self.cache_stats.record_insert(evicted);
        }
    }

    /// Take a row buffer of exactly `width` zeros from the pool (or allocate
    /// a fresh one).
    pub(crate) fn take_row(&mut self, width: usize) -> Vec<f64> {
        match self.row_pool.pop() {
            Some(mut row) => {
                row.clear();
                row.resize(width, 0.0);
                row
            }
            None => vec![0.0; width],
        }
    }

    /// Return row buffers to the pool for the next solve.
    pub(crate) fn recycle_rows(&mut self, rows: impl IntoIterator<Item = Vec<f64>>) {
        // Cap the pool so a one-off giant solve doesn't pin memory forever.
        const MAX_POOLED_ROWS: usize = 4096;
        for row in rows {
            if self.row_pool.len() >= MAX_POOLED_ROWS {
                break;
            }
            self.row_pool.push(row);
        }
    }

    /// Return a finished [`BasisSnapshot`]'s tableau rows to the pool.
    ///
    /// Branch & bound captures a snapshot per explored node and shares it
    /// with both children; once the last child has consumed it, recycling
    /// keeps the node's `m x n` tableau allocation alive for the next solve
    /// instead of dropping it.
    ///
    /// ```
    /// use waterwise_milp::{
    ///     solve_with_basis_capture, LpConstraint, LpProblem, Sense, SimplexConfig,
    ///     SolverWorkspace,
    /// };
    ///
    /// let problem = LpProblem {
    ///     num_vars: 1,
    ///     costs: vec![1.0],
    ///     lower: vec![0.0],
    ///     upper: vec![f64::INFINITY],
    ///     constraints: vec![LpConstraint {
    ///         coeffs: vec![(0, 1.0)],
    ///         sense: Sense::GreaterEqual,
    ///         rhs: 2.0,
    ///     }],
    /// };
    /// let mut ws = SolverWorkspace::new();
    /// let (_, snapshot) =
    ///     solve_with_basis_capture(&problem, &SimplexConfig::default(), None, Some(&mut ws));
    /// // The optimal basis was captured, so its rows were *not* recycled...
    /// let snapshot = snapshot.expect("optimal solve captures a basis");
    /// assert_eq!(ws.pooled_rows(), 0);
    /// // ...until the snapshot is explicitly returned to the pool.
    /// let rows = snapshot.rows();
    /// ws.recycle_snapshot(snapshot);
    /// assert_eq!(ws.pooled_rows(), rows);
    /// ```
    pub fn recycle_snapshot(&mut self, snapshot: BasisSnapshot) {
        self.recycle_rows(snapshot.into_rows());
    }

    /// Number of pooled row buffers (exposed for tests).
    pub fn pooled_rows(&self) -> usize {
        self.row_pool.len()
    }

    pub(crate) fn record_dual_restart(&mut self, reused: bool, bound_flips: usize) {
        self.stats.dual_restarts += 1;
        if reused {
            self.stats.basis_reuse_hits += 1;
        }
        self.stats.bound_flips += bound_flips;
    }

    pub(crate) fn record_solve(&mut self, warm: bool, pivots: usize) {
        if warm {
            self.stats.warm_solves += 1;
            self.stats.warm_pivots += pivots;
        } else {
            self.stats.cold_solves += 1;
            self.stats.cold_pivots += pivots;
        }
    }

    pub(crate) fn record_rejected_hint(&mut self) {
        self.stats.rejected_hints += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_recycled_and_zeroed() {
        let mut ws = SolverWorkspace::new();
        let mut row = ws.take_row(4);
        row[2] = 7.0;
        ws.recycle_rows([row]);
        assert_eq!(ws.pooled_rows(), 1);
        let row = ws.take_row(6);
        assert_eq!(row, vec![0.0; 6]);
        assert_eq!(ws.pooled_rows(), 0);
    }

    #[test]
    fn stats_deltas_subtract_fieldwise() {
        let mut ws = SolverWorkspace::new();
        ws.record_solve(false, 10);
        let before = ws.stats();
        ws.record_solve(true, 3);
        ws.record_rejected_hint();
        let delta = ws.stats().delta_since(&before);
        assert_eq!(delta.warm_solves, 1);
        assert_eq!(delta.warm_pivots, 3);
        assert_eq!(delta.cold_solves, 0);
        assert_eq!(delta.rejected_hints, 1);
        assert!(ws.stats().mean_cold_pivots() > 9.9);
        assert!(ws.stats().mean_warm_pivots() < 3.1);
    }

    #[test]
    fn dual_restart_counters_accumulate_and_saturate() {
        let mut ws = SolverWorkspace::new();
        ws.record_dual_restart(true, 3);
        let before = ws.stats();
        ws.record_dual_restart(false, 2);
        ws.record_dual_restart(true, 0);
        let delta = ws.stats().delta_since(&before);
        assert_eq!(delta.dual_restarts, 2);
        assert_eq!(delta.basis_reuse_hits, 1);
        assert_eq!(delta.bound_flips, 2);
        // Saturating: a reset workspace never underflows campaign counters.
        let fresh = WarmStats::default().delta_since(&ws.stats());
        assert_eq!(fresh.dual_restarts, 0);
        assert_eq!(fresh.basis_reuse_hits, 0);
        assert_eq!(fresh.bound_flips, 0);
    }
}
