//! Branch & bound on top of the LP relaxation.
//!
//! Nodes are explored best-first (by their parent's LP bound), branching on
//! the most fractional integer variable. For the assignment-style MILPs built
//! by the WaterWise scheduler, the LP relaxation is almost always integral and
//! the search terminates at the root; the implementation nevertheless handles
//! general bounded MILPs and is property-tested against brute-force
//! enumeration.

use crate::error::MilpError;
use crate::model::{DualLp, Model};
use crate::simplex::{BasisSnapshot, SimplexConfig};
use crate::solution::{Solution, SolveStatus};
use crate::workspace::SolverWorkspace;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Branch & bound configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBoundConfig {
    /// Maximum number of nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance: a value within this distance of an integer is
    /// considered integral.
    pub integrality_tolerance: f64,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub absolute_gap: f64,
    /// Reuse each explored node's final simplex basis to solve its children
    /// with a dual-simplex restart instead of a cold two-phase solve.
    /// Branching only tightens variable bounds, which keeps the parent basis
    /// dual-feasible, so a child typically re-optimizes in a few pivots.
    /// The result is the same solution either way (see the tied-optima
    /// caveat on [`solve_warm`]); disable to force cold per-node solves.
    pub use_dual_restart: bool,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        Self {
            max_nodes: 10_000,
            integrality_tolerance: 1e-6,
            absolute_gap: 1e-9,
            use_dual_restart: true,
        }
    }
}

/// A pending node: bound overrides for integer branching plus the parent LP
/// bound used for best-first ordering. The parent's final basis rides along
/// (shared by both children) so the node LP can dual-restart.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    parent_bound: f64,
    depth: usize,
    snapshot: Option<Rc<BasisSnapshot>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.parent_bound == other.parent_bound && self.depth == other.depth
    }
}
impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the node with the *smallest*
        // parent bound (best for minimization) on top, with deeper nodes
        // preferred on ties to find incumbents quickly.
        other
            .parent_bound
            .partial_cmp(&self.parent_bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Solve a MILP by branch & bound. The model's objective direction is handled
/// by the LP-relaxation solver on [`Model`]; internally everything is a
/// minimization of the *relaxation objective in the original direction
/// sign*, so we work with "smaller is better" on an internal key.
pub fn solve(
    model: &Model,
    simplex_config: &SimplexConfig,
    config: &BranchBoundConfig,
) -> Result<Solution, MilpError> {
    solve_warm(model, simplex_config, config, None, None)
}

/// `true` when every hint value lies inside the node's bound box.
fn hint_within_bounds(hint: &[f64], bounds: &[(f64, f64)], tol: f64) -> bool {
    hint.iter()
        .zip(bounds)
        .all(|(&v, &(lo, hi))| v >= lo - tol && v <= hi + tol)
}

/// Drop a node's share of the parent basis; the last holder recycles the
/// tableau rows into the workspace pool.
fn release_snapshot(snapshot: Option<Rc<BasisSnapshot>>, workspace: Option<&mut SolverWorkspace>) {
    if let Some(rc) = snapshot {
        if let (Ok(snapshot), Some(ws)) = (Rc::try_unwrap(rc), workspace) {
            ws.recycle_snapshot(snapshot);
        }
    }
}

/// Branch & bound with an optional warm start.
///
/// `hint` is a candidate point carried over from a previous, similar solve
/// (e.g. the prior scheduling slot's assignment). When it is feasible for
/// *this* model it seeds the incumbent — so the very first bound comparison
/// can prune the tree — and is forwarded to every node's LP solve whose bound
/// box contains it, letting the simplex crash a basis and skip phase 1.
///
/// The returned *objective* is always identical to a cold solve, and so are
/// the variable values whenever the optimum is unique. The one caveat: if
/// two vertices tie the optimum exactly, the warm path may return the
/// hinted one while a cold solve returns the other (phase 2 terminates at
/// the first optimal basis it reaches). Objectives still agree to the last
/// bit; only the choice among equally-optimal solutions can differ.
pub fn solve_warm(
    model: &Model,
    simplex_config: &SimplexConfig,
    config: &BranchBoundConfig,
    hint: Option<&[f64]>,
    mut workspace: Option<&mut SolverWorkspace>,
) -> Result<Solution, MilpError> {
    let integer_vars = model.integer_var_indices();
    let maximize = matches!(
        model.objective(),
        Some((crate::model::Direction::Maximize, _))
    );
    // Internal key: objective mapped so that smaller is better.
    let key = |objective: f64| if maximize { -objective } else { objective };

    let root_bounds: Vec<(f64, f64)> = model.vars().iter().map(|v| (v.lower, v.upper)).collect();

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bounds: root_bounds,
        parent_bound: f64::NEG_INFINITY,
        depth: 0,
        snapshot: None,
    });

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_key = f64::INFINITY;
    let mut nodes_explored = 0usize;
    let mut total_iterations = 0usize;
    let mut saw_unbounded_root = false;

    // Only hints that are feasible for this model (constraints, bounds, and
    // integrality) are usable; anything else is silently dropped.
    let hint = hint.filter(|h| h.len() == model.num_vars() && model.is_feasible(h, 1e-6));
    // A hint-seeded incumbent acts as a *bound only*: nodes that merely tie
    // it are still explored, and the first LP-derived integral solution that
    // ties or beats it replaces it. This keeps warm solves byte-identical to
    // cold ones even when alternate optima exist (the hint might be a
    // different optimal vertex than the one the cold search would return).
    let mut incumbent_from_hint = false;
    if let (Some(h), Some((_, objective_expr))) = (hint, model.objective()) {
        let mut values = h.to_vec();
        for &vi in &integer_vars {
            values[vi] = values[vi].round();
        }
        let objective = objective_expr.evaluate(&values);
        incumbent_key = key(objective);
        incumbent_from_hint = true;
        incumbent = Some(Solution {
            status: SolveStatus::Optimal,
            objective,
            values,
            simplex_iterations: 0,
            nodes_explored: 0,
        });
    }
    // Hint-derived incumbents only prune nodes strictly worse than the hint;
    // search-derived incumbents also prune ties (the cold behavior).
    let prune_threshold = |incumbent_key: f64, from_hint: bool| {
        if from_hint {
            incumbent_key + config.absolute_gap
        } else {
            incumbent_key - config.absolute_gap
        }
    };

    while let Some(mut node) = heap.pop() {
        if nodes_explored >= config.max_nodes {
            break;
        }
        // Prune against the incumbent using the parent bound.
        if node.parent_bound > prune_threshold(incumbent_key, incumbent_from_hint) {
            release_snapshot(node.snapshot.take(), workspace.as_deref_mut());
            continue;
        }
        nodes_explored += 1;
        // Dual-first: restart from the parent's final basis when one rode
        // along. A typed fallback (pivot cap, incompatible bound shape)
        // drops to the cold path below; its wasted pivots are visible via
        // `dual_restarts - basis_reuse_hits`, not in the pivot totals.
        let mut dual_result: Option<(Solution, Option<BasisSnapshot>)> = None;
        if config.use_dual_restart {
            if let Some(snapshot) = node.snapshot.as_deref() {
                match model.solve_lp_relaxation_dual(
                    simplex_config,
                    Some(&node.bounds),
                    snapshot,
                    workspace.as_deref_mut(),
                )? {
                    DualLp::Finished(solution, captured) => {
                        dual_result = Some((solution, captured));
                    }
                    DualLp::Fallback => {}
                }
            }
        }
        release_snapshot(node.snapshot.take(), workspace.as_deref_mut());
        let (relaxation, captured) = match dual_result {
            Some(pair) => pair,
            None => {
                let node_hint = hint.filter(|h| hint_within_bounds(h, &node.bounds, 1e-9));
                model.solve_lp_relaxation_captured(
                    simplex_config,
                    Some(&node.bounds),
                    node_hint,
                    workspace.as_deref_mut(),
                    config.use_dual_restart,
                )?
            }
        };
        total_iterations += relaxation.simplex_iterations;
        match relaxation.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Unbounded => {
                if node.depth == 0 {
                    saw_unbounded_root = true;
                    // An unbounded relaxation at the root means the MILP is
                    // unbounded or infeasible; report unbounded unless an
                    // incumbent materializes (it cannot, so break).
                    break;
                }
                continue;
            }
            SolveStatus::IterationLimit => continue,
            SolveStatus::Optimal | SolveStatus::Feasible => {}
        }
        let node_key = key(relaxation.objective);
        if node_key > prune_threshold(incumbent_key, incumbent_from_hint) {
            // Bound dominated by incumbent.
            if let (Some(snapshot), Some(ws)) = (captured, workspace.as_deref_mut()) {
                ws.recycle_snapshot(snapshot);
            }
            continue;
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac_score = -1.0;
        for &vi in &integer_vars {
            let value = relaxation.values[vi];
            let frac = value - value.floor();
            let dist = frac.min(1.0 - frac);
            if dist > config.integrality_tolerance && dist > best_frac_score {
                best_frac_score = dist;
                branch_var = Some((vi, value));
            }
        }
        match branch_var {
            None => {
                // Integral: no children, so the captured basis is not needed.
                if let (Some(snapshot), Some(ws)) = (captured, workspace.as_deref_mut()) {
                    ws.recycle_snapshot(snapshot);
                }
                // Candidate incumbent. A search-derived solution
                // that ties a hint-derived incumbent takes precedence so the
                // returned vertex matches what a cold solve would pick.
                if node_key < incumbent_key
                    || (incumbent_from_hint && node_key <= incumbent_key + config.absolute_gap)
                {
                    incumbent_from_hint = false;
                    incumbent_key = node_key;
                    let mut values = relaxation.values.clone();
                    // Snap integer variables to exact integers.
                    for &vi in &integer_vars {
                        values[vi] = values[vi].round();
                    }
                    incumbent = Some(Solution {
                        status: SolveStatus::Optimal,
                        objective: relaxation.objective,
                        values,
                        simplex_iterations: total_iterations,
                        nodes_explored,
                    });
                }
            }
            Some((vi, value)) => {
                let floor = value.floor();
                let mut down = node.bounds.clone();
                down[vi].1 = down[vi].1.min(floor);
                let mut up = node.bounds.clone();
                up[vi].0 = up[vi].0.max(floor + 1.0);
                // Both children share the parent's final basis; whichever is
                // explored last (or pruned) releases it back to the pool.
                let shared = captured.map(Rc::new);
                heap.push(Node {
                    bounds: down,
                    parent_bound: node_key,
                    depth: node.depth + 1,
                    snapshot: shared.clone(),
                });
                heap.push(Node {
                    bounds: up,
                    parent_bound: node_key,
                    depth: node.depth + 1,
                    snapshot: shared,
                });
            }
        }
    }

    // Nodes abandoned by an early break still hold basis snapshots; recycle
    // their rows before reporting (the emptiness check feeds the status).
    let work_remaining = !heap.is_empty();
    for mut node in heap.drain() {
        release_snapshot(node.snapshot.take(), workspace.as_deref_mut());
    }

    if saw_unbounded_root {
        // A hint-seeded incumbent cannot rescue an unbounded relaxation: a
        // feasible point plus an unbounded LP relaxation means the MILP
        // itself is unbounded, exactly as the cold path reports.
        return Ok(Solution {
            status: SolveStatus::Unbounded,
            objective: f64::NAN,
            values: vec![0.0; model.num_vars()],
            simplex_iterations: total_iterations,
            nodes_explored,
        });
    }
    match incumbent {
        Some(mut sol) => {
            sol.simplex_iterations = total_iterations;
            sol.nodes_explored = nodes_explored;
            // If we ran out of nodes with work remaining, we cannot certify
            // optimality.
            if nodes_explored >= config.max_nodes && work_remaining {
                sol.status = SolveStatus::Feasible;
            }
            Ok(sol)
        }
        None => {
            let status = if nodes_explored >= config.max_nodes {
                SolveStatus::IterationLimit
            } else {
                SolveStatus::Infeasible
            };
            Ok(Solution {
                status,
                objective: f64::NAN,
                values: vec![0.0; model.num_vars()],
                simplex_iterations: total_iterations,
                nodes_explored,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Sense, VarKind};

    #[test]
    fn pure_integer_program() {
        // max 8x + 11y + 6z + 4w s.t. 5x + 7y + 4z + 3w <= 14, binary.
        // Known optimum: x=0,y=1,z=1,w=1 => 21.
        let mut m = Model::new("kp");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        let w = m.add_binary("w");
        m.add_constraint(
            "cap",
            LinExpr::from(x) * 5.0
                + LinExpr::from(y) * 7.0
                + LinExpr::from(z) * 4.0
                + LinExpr::from(w) * 3.0,
            Sense::LessEqual,
            14.0,
        );
        m.maximize(
            LinExpr::from(x) * 8.0
                + LinExpr::from(y) * 11.0
                + LinExpr::from(z) * 6.0
                + LinExpr::from(w) * 4.0,
        );
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        assert!(
            (sol.objective - 21.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn mixed_integer_program() {
        // min  x + 10 y  s.t.  x + y >= 2.5, x <= 1.2 ; y integer, x continuous.
        // y must cover at least 1.3 => y >= 2 (integer), so optimum y=2, x=0.5? No:
        // x can be up to 1.2, so with y=2, x >= 0.5 required, min obj at x=0.5: 20.5.
        // With y=1: x >= 1.5 > 1.2 infeasible. So optimum 20.5.
        let mut m = Model::new("mip");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.2);
        let y = m.add_var("y", VarKind::Integer, 0.0, 100.0);
        m.add_constraint("cover", x + y, Sense::GreaterEqual, 2.5);
        m.minimize(x + LinExpr::from(y) * 10.0);
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        assert!(
            (sol.objective - 20.5).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.value(y) - 2.0).abs() < 1e-6);
        assert!((sol.value(x) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new("inf");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", x + y, Sense::GreaterEqual, 3.0);
        m.minimize(x + y);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_milp() {
        let mut m = Model::new("unb");
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY);
        m.add_constraint("c", x * 1.0, Sense::GreaterEqual, 0.0);
        m.maximize(x * 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn equality_constrained_assignment_is_integral() {
        // 4 jobs x 3 regions with capacity; checks the WaterWise-shaped MILP.
        let mut m = Model::new("assign");
        let n_jobs = 4;
        let n_regions = 3;
        let cost = |j: usize, r: usize| ((j * 7 + r * 13) % 5) as f64 + 1.0;
        let mut vars = vec![];
        for j in 0..n_jobs {
            for r in 0..n_regions {
                vars.push(m.add_binary(format!("x_{j}_{r}")));
            }
        }
        let v = |j: usize, r: usize| vars[j * n_regions + r];
        for j in 0..n_jobs {
            let expr = LinExpr::sum((0..n_regions).map(|r| LinExpr::from(v(j, r))));
            m.add_constraint(format!("assign_{j}"), expr, Sense::Equal, 1.0);
        }
        for r in 0..n_regions {
            let expr = LinExpr::sum((0..n_jobs).map(|j| LinExpr::from(v(j, r))));
            m.add_constraint(format!("cap_{r}"), expr, Sense::LessEqual, 2.0);
        }
        let mut obj = LinExpr::zero();
        for j in 0..n_jobs {
            for r in 0..n_regions {
                obj.add_term(v(j, r), cost(j, r));
            }
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        assert!(sol.status.has_solution());
        assert!(m.is_feasible(&sol.values, 1e-6));
        // Every job assigned exactly once.
        for j in 0..n_jobs {
            let total: f64 = (0..n_regions).map(|r| sol.value(v(j, r))).sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
    }

    fn knapsack_model() -> Model {
        let mut m = Model::new("kp");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        let w = m.add_binary("w");
        m.add_constraint(
            "cap",
            LinExpr::from(x) * 5.0
                + LinExpr::from(y) * 7.0
                + LinExpr::from(z) * 4.0
                + LinExpr::from(w) * 3.0,
            Sense::LessEqual,
            14.0,
        );
        m.maximize(
            LinExpr::from(x) * 8.0
                + LinExpr::from(y) * 11.0
                + LinExpr::from(z) * 6.0
                + LinExpr::from(w) * 4.0,
        );
        m
    }

    #[test]
    fn warm_start_with_optimal_hint_matches_cold_with_less_work() {
        let m = knapsack_model();
        let cold = m.solve().unwrap();
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&cold.values),
                &mut ws,
            )
            .unwrap();
        assert!(warm.status.has_solution());
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert_eq!(warm.values, cold.values);
        assert!(
            warm.simplex_iterations <= cold.simplex_iterations,
            "warm {} vs cold {}",
            warm.simplex_iterations,
            cold.simplex_iterations
        );
        assert!(warm.nodes_explored <= cold.nodes_explored);
    }

    #[test]
    fn warm_start_halves_pivots_on_assignment_models() {
        // The WaterWise shape: per-job equality rows force a phase 1 that
        // the crash basis skips entirely.
        let mut m = Model::new("assign");
        let n_jobs = 8;
        let n_regions = 4;
        let cost = |j: usize, r: usize| ((j * 7 + r * 13) % 9) as f64 + 1.0;
        let mut vars = vec![];
        for j in 0..n_jobs {
            for r in 0..n_regions {
                vars.push(m.add_binary(format!("x_{j}_{r}")));
            }
        }
        let v = |j: usize, r: usize| vars[j * n_regions + r];
        for j in 0..n_jobs {
            let expr = LinExpr::sum((0..n_regions).map(|r| LinExpr::from(v(j, r))));
            m.add_constraint(format!("assign_{j}"), expr, Sense::Equal, 1.0);
        }
        for r in 0..n_regions {
            let expr = LinExpr::sum((0..n_jobs).map(|j| LinExpr::from(v(j, r))));
            m.add_constraint(format!("cap_{r}"), expr, Sense::LessEqual, 3.0);
        }
        let mut obj = LinExpr::zero();
        for j in 0..n_jobs {
            for r in 0..n_regions {
                obj.add_term(v(j, r), cost(j, r));
            }
        }
        m.minimize(obj);

        let cold = m.solve().unwrap();
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&cold.values),
                &mut ws,
            )
            .unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert_eq!(warm.values, cold.values);
        assert!(
            warm.simplex_iterations * 2 <= cold.simplex_iterations,
            "expected >=2x pivot cut, warm {} vs cold {}",
            warm.simplex_iterations,
            cold.simplex_iterations
        );
        assert!(ws.stats().warm_solves >= 1);
    }

    #[test]
    fn warm_start_with_suboptimal_hint_still_finds_the_optimum() {
        let m = knapsack_model();
        // Feasible but poor: take only w (value 4, weight 3).
        let hint = [0.0, 0.0, 0.0, 1.0];
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&hint),
                &mut ws,
            )
            .unwrap();
        assert!((warm.objective - 21.0).abs() < 1e-6, "{}", warm.objective);
    }

    #[test]
    fn infeasible_hint_is_ignored() {
        let m = knapsack_model();
        // Violates the capacity constraint (total weight 19 > 14).
        let hint = [1.0, 1.0, 1.0, 1.0];
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&hint),
                &mut ws,
            )
            .unwrap();
        assert!((warm.objective - 21.0).abs() < 1e-6, "{}", warm.objective);
        assert!(m.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn unique_optimum_ignores_a_suboptimal_alternate_vertex_hint() {
        // With a *unique* optimum, hinting the other (suboptimal) vertex
        // must not change the returned solution: the hint only seeds a
        // bound, and the search-derived optimum replaces it.
        let mut m = Model::new("unique");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("one", LinExpr::from(x) + y, Sense::Equal, 1.0);
        m.minimize(LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0);
        let cold = m.solve().unwrap();
        assert_eq!(cold.values, vec![1.0, 0.0]);
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&[0.0, 1.0]),
                &mut ws,
            )
            .unwrap();
        assert_eq!(warm.values, cold.values);
        assert!((warm.objective - cold.objective).abs() < 1e-12);
    }

    #[test]
    fn exactly_tied_optima_return_an_optimal_vertex_either_way() {
        // Documented caveat: when two vertices tie the optimum *exactly*,
        // the warm path may return the hinted one while the cold path
        // returns the other — both are optimal and the objectives agree to
        // the last bit. (The WaterWise scheduler's coefficients come from
        // continuous telemetry, where exact ties do not occur; the campaign
        // equivalence tests pin byte-identical schedules on real workloads.)
        let mut m = Model::new("tie");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("one", LinExpr::from(x) + y, Sense::Equal, 1.0);
        m.minimize(LinExpr::from(x) * 2.0 + LinExpr::from(y) * 2.0);
        let cold = m.solve().unwrap();
        let other_vertex: Vec<f64> = cold.values.iter().map(|v| 1.0 - v).collect();
        assert!(m.is_feasible(&other_vertex, 1e-9), "both vertices feasible");
        let mut ws = crate::workspace::SolverWorkspace::new();
        let warm = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&other_vertex),
                &mut ws,
            )
            .unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-12);
        assert!(m.is_feasible(&warm.values, 1e-9));
    }

    #[test]
    fn unbounded_milp_stays_unbounded_despite_a_feasible_hint() {
        let mut m = Model::new("unb");
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY);
        m.add_constraint("c", x * 1.0, Sense::GreaterEqual, 0.0);
        m.maximize(x * 1.0);
        let hint = [3.0];
        let mut ws = crate::workspace::SolverWorkspace::new();
        let sol = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                Some(&hint),
                &mut ws,
            )
            .unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn dual_restarts_match_cold_node_solves_exactly() {
        // The knapsack relaxation is fractional at the root, so the search
        // genuinely branches and children are solved via dual restart.
        let m = knapsack_model();
        let simplex = SimplexConfig::default();
        let cold_config = BranchBoundConfig {
            use_dual_restart: false,
            ..BranchBoundConfig::default()
        };
        let dual_config = BranchBoundConfig::default();
        let mut cold_ws = crate::workspace::SolverWorkspace::new();
        let mut dual_ws = crate::workspace::SolverWorkspace::new();
        let cold = m
            .solve_warm(&simplex, &cold_config, None, &mut cold_ws)
            .unwrap();
        let dual = m
            .solve_warm(&simplex, &dual_config, None, &mut dual_ws)
            .unwrap();
        assert_eq!(cold.status, dual.status);
        assert_eq!(cold.values, dual.values, "schedule-identical solutions");
        assert!((cold.objective - dual.objective).abs() < 1e-12);
        assert_eq!(cold.nodes_explored, dual.nodes_explored);
        // The cold run never attempts a restart; the dual run must have.
        assert_eq!(cold_ws.stats().dual_restarts, 0);
        let stats = dual_ws.stats();
        assert!(stats.dual_restarts > 0, "expected dual restarts: {stats:?}");
        assert_eq!(stats.basis_reuse_hits, stats.dual_restarts);
        assert!(stats.bound_flips > 0);
        // Restarted children must not cost more pivots than cold children.
        assert!(
            dual.simplex_iterations <= cold.simplex_iterations,
            "dual {} vs cold {} pivots",
            dual.simplex_iterations,
            cold.simplex_iterations
        );
    }

    #[test]
    fn dual_restart_snapshots_are_recycled_into_the_row_pool() {
        let m = knapsack_model();
        let mut ws = crate::workspace::SolverWorkspace::new();
        let sol = m
            .solve_warm(
                &SimplexConfig::default(),
                &BranchBoundConfig::default(),
                None,
                &mut ws,
            )
            .unwrap();
        assert!(sol.status.has_solution());
        // Every captured snapshot must end up back in the pool: after the
        // search no rows may be stranded in dropped snapshots.
        assert!(
            ws.pooled_rows() > 0,
            "tableau rows should be recycled via snapshots"
        );
    }

    #[test]
    fn node_budget_is_respected() {
        let mut m = Model::new("budget");
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let expr = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        m.add_constraint("c", expr.clone(), Sense::LessEqual, 3.2);
        m.maximize(expr);
        let config = BranchBoundConfig {
            max_nodes: 1,
            ..BranchBoundConfig::default()
        };
        let sol = m.solve_with(&SimplexConfig::default(), &config).unwrap();
        // With a single node we may or may not find the incumbent, but we
        // must not crash and must report a sensible status.
        assert!(matches!(
            sol.status,
            SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::IterationLimit
        ));
    }
}
