//! # waterwise-milp
//!
//! A pure-Rust Mixed Integer Linear Programming (MILP) solver used by the
//! WaterWise scheduler, replacing the PuLP + GLPK stack of the original
//! artifact.
//!
//! The solver is deliberately small and dependency-free:
//!
//! * [`model`] — a builder-style API for variables, linear expressions,
//!   constraints, and the objective, similar in spirit to PuLP.
//! * [`simplex`] — a dense, two-phase primal simplex for the LP relaxation,
//!   with Bland's-rule anti-cycling, infeasibility/unboundedness detection,
//!   and dual-simplex warm restarts from captured basis snapshots
//!   ([`solve_dual_from_snapshot`]).
//! * [`branch_bound`] — best-first branch & bound on fractional integer
//!   variables, with incumbent pruning, a configurable gap/iteration
//!   budget, and per-node dual restarts from the parent's final basis.
//! * [`solution`] — solve status and per-variable value extraction.
//! * [`workspace`] — reusable allocations and cold/warm solve accounting for
//!   rolling-horizon (repeated) solves; see [`Model::solve_warm`].
//! * [`cache`] — a sharded, thread-safe model-fingerprint → solution cache
//!   shared across repeated (and concurrent) campaigns; exact fingerprint
//!   matches skip the solve, structural matches warm-start it.
//! * [`persist`] — a versioned, checksummed on-disk snapshot codec for the
//!   cache with crash-safe (temp file + fsync + atomic rename) writes, so
//!   warm state survives process restarts.
//!
//! The scheduling MILPs WaterWise builds (binary assignment variables with
//! per-job equality constraints and per-region capacity constraints) have LP
//! relaxations that are almost always integral, so branch & bound typically
//! terminates at the root node; the solver nevertheless handles the general
//! case and is extensively property-tested against brute-force enumeration.
//!
//! ```
//! use waterwise_milp::{Model, Sense, VarKind};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y >= 0
//! let mut model = Model::new("example");
//! let x = model.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
//! let y = model.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
//! model.add_constraint("cap", x + y, Sense::LessEqual, 4.0);
//! model.add_constraint("xcap", x * 1.0, Sense::LessEqual, 2.0);
//! model.maximize(x * 3.0 + y * 2.0);
//! let solution = model.solve().unwrap();
//! assert!((solution.objective - 10.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod branch_bound;
pub mod cache;
pub mod error;
pub mod expr;
pub mod model;
pub mod persist;
pub mod simplex;
pub mod solution;
pub mod workspace;

pub use branch_bound::BranchBoundConfig;
pub use cache::{CacheLookup, CacheStats, ModelFingerprint, SolutionCache, SolutionCacheHandle};
pub use error::MilpError;
pub use expr::{LinExpr, Var};
pub use model::{Constraint, Model, Sense, VarKind};
pub use persist::{solver_config_hash, CacheAutosave, CachePersistError};
pub use simplex::{
    solve_dual_from_snapshot, solve_with_basis_capture, BasisSnapshot, DualOutcome, LpConstraint,
    LpProblem, SimplexConfig, SimplexOutcome,
};
pub use solution::{Solution, SolveStatus};
pub use workspace::{SolverWorkspace, WarmStats};
