//! Solve status and solution extraction.

use crate::expr::{LinExpr, Var};
use serde::{Deserialize, Serialize};

/// Outcome category of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal (within tolerance) solution was found.
    Optimal,
    /// A feasible solution was found but optimality was not proven before the
    /// node/iteration budget ran out.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The budget ran out before any feasible solution was found.
    IterationLimit,
}

impl SolveStatus {
    /// `true` if a usable assignment of variable values is available.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// A solution to an LP or MILP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Status of the solve.
    pub status: SolveStatus,
    /// Objective value in the *original* optimization direction (i.e. if the
    /// model was a maximization, this is the maximum).
    pub objective: f64,
    /// Value of every variable, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Simplex iterations performed (summed over branch-and-bound nodes).
    pub simplex_iterations: usize,
    /// Branch-and-bound nodes explored (1 for pure LPs).
    pub nodes_explored: usize,
}

impl Solution {
    /// Value of a specific variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Evaluate a linear expression at this solution.
    pub fn evaluate(&self, expr: &LinExpr) -> f64 {
        expr.evaluate(&self.values)
    }

    /// Value of a variable rounded to the nearest integer (useful for binary
    /// assignment variables that may carry 1e-9-scale numerical noise).
    pub fn rounded(&self, var: Var) -> i64 {
        self.value(var).round() as i64
    }

    /// `true` if the variable is (numerically) equal to one.
    pub fn is_one(&self, var: Var) -> bool {
        (self.value(var) - 1.0).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    #[test]
    fn status_classification() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::IterationLimit.has_solution());
    }

    #[test]
    fn value_lookup_and_rounding() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 1.0,
            values: vec![0.9999999, 0.0000001, 2.5],
            simplex_iterations: 3,
            nodes_explored: 1,
        };
        assert!(sol.is_one(Var(0)));
        assert!(!sol.is_one(Var(1)));
        assert_eq!(sol.rounded(Var(2)), 3);
        // Out-of-range variables read as zero.
        assert_eq!(sol.value(Var(10)), 0.0);
    }

    #[test]
    fn evaluate_expression_at_solution() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            values: vec![2.0, 3.0],
            simplex_iterations: 0,
            nodes_explored: 1,
        };
        let expr = LinExpr::term(Var(0), 1.0) + LinExpr::term(Var(1), 2.0) + LinExpr::constant(1.0);
        assert_eq!(sol.evaluate(&expr), 2.0 + 6.0 + 1.0);
    }
}
