//! Cross-solve (and cross-campaign) solution caching.
//!
//! The WaterWise scheduler re-solves a near-identical assignment MILP every
//! scheduling slot, and campaign sweeps (`run_matrix`) re-solve the *same*
//! slot models across neighboring configuration cells — adjacent delay
//! tolerances or objective weights leave the model *structure* (variables,
//! constraint sparsity, senses, latency-ratio coefficients) untouched and
//! only move the objective coefficients and right-hand sides. A
//! [`SolutionCache`] exploits that:
//!
//! * Every model is reduced to a [`ModelFingerprint`] with two components:
//!   a **structural key** (variable names/kinds/bounds, constraint names,
//!   senses, sparsity pattern, and *quantized* constraint coefficients) and
//!   an **exact hash** covering every coefficient bit, right-hand side, the
//!   objective, and the solver configuration.
//! * The cache maps structural keys to a small bucket of recently solved
//!   variants (one per exact hash), so a sweep's neighboring cells — which
//!   share the key but differ in objective/rhs data — can coexist instead
//!   of overwriting each other.
//! * A lookup whose exact hash matches the stored one is an **exact hit**:
//!   the model (and solver configuration) is bit-for-bit the one that
//!   produced the stored optimum, so the stored solution *is* the solution
//!   and the solve is skipped entirely.
//! * A lookup that matches only the structural key is a **hint hit**: the
//!   stored values are offered to the solver as a warm-start hint. Hints are
//!   advisory by construction — [`crate::branch_bound::solve_warm`] validates
//!   them against the current model and only ever uses them to seed a bound
//!   and crash a basis — so a stale or mismatched entry can cost pivots but
//!   never change the returned optimum. (As with any warm start, an *exact*
//!   objective tie between two optimal vertices may resolve toward the
//!   hinted one; models with continuous real-world coefficients do not tie
//!   exactly.)
//!
//! The cache is `Sync` and sharded: reads take a per-shard `RwLock` read
//! guard, so concurrent campaign workers probing different (or identical)
//! keys do not serialize against each other. Share one handle across a
//! `run_matrix` sweep by attaching clones of a [`SolutionCacheHandle`] to
//! each worker's [`crate::SolverWorkspace`].

use crate::branch_bound::BranchBoundConfig;
use crate::model::{Direction, Model, Sense, VarKind};
use crate::simplex::SimplexConfig;
use crate::solution::{Solution, SolveStatus};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cache shard: fingerprint key → exact-variant bucket. A `BTreeMap` by
/// the DET001 discipline — the capacity-eviction scan iterates the shard,
/// and hash order must never pick the victim (stamps break ties exactly,
/// but the scan order itself stays deterministic this way).
type Shard = BTreeMap<u64, Vec<CacheEntry>>;

/// Read-lock a shard, recovering from poisoning. A poisoned shard only
/// means another thread panicked while holding the lock; entries are
/// inserted whole under the write guard, so the map is still structurally
/// sound and serving slightly-stale cache state beats propagating a panic
/// into every sibling campaign (DET003).
fn read_shard(lock: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock a shard, recovering from poisoning (see [`read_shard`]).
fn write_shard(lock: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A shareable, thread-safe handle to a [`SolutionCache`].
pub type SolutionCacheHandle = Arc<SolutionCache>;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// Default total entry capacity across all shards.
///
/// Sized from the observed shape of a persisted campaign sweep (the
/// `fig15`/`fig19` 3×3 tolerance-by-weight matrix at a quarter day): each
/// cell re-solves the same few dozen structural keys, and the nine cells
/// write up to nine exact variants per key, so a full sweep occupies on the
/// order of several hundred entries. The previous 1024-entry default left a
/// warmed snapshot evicting its own tail once two sweeps shared a handle;
/// 4096 keeps a saved-and-reloaded sweep fully resident (a snapshot of that
/// size is a few hundred KiB on disk) while still bounding a long-lived
/// host.
const DEFAULT_CAPACITY: usize = 4096;

/// Maximum exact-hash variants retained per structural key. Sized to cover a
/// typical sweep axis (a 3×3 weight/tolerance matrix writes nine variants
/// per key) with headroom — which is also what makes a persisted snapshot
/// useful: every axis cell of the saved sweep reloads as an exact hit
/// instead of only the most recent one. The oldest variant is evicted
/// beyond this.
pub const VARIANTS_PER_KEY: usize = 16;

/// 64-bit FNV-1a, the workspace's dependency-free hash. Shared with the
/// persistence codec ([`crate::persist`]), whose content checksum must be
/// exactly this hash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    pub(crate) fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    pub(crate) fn write_i64(&mut self, value: i64) {
        self.write_u64(value as u64);
    }

    pub(crate) fn write_f64(&mut self, value: f64) {
        // `to_bits` distinguishes -0.0 from 0.0 and every NaN payload; exact
        // hashes must be exactly as strict as `f64` equality-of-bits.
        self.write_u64(value.to_bits());
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for byte in s.as_bytes() {
            self.write_u8(*byte);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Quantize a coefficient onto a coarse grid (2⁻¹² ≈ 2.4e-4 resolution) for
/// the structural key, so telemetry-scale drift between near-identical
/// models does not fragment the key space. Non-finite values map to
/// sentinels.
fn quantize(value: f64) -> i64 {
    if value.is_nan() {
        return i64::MIN + 1;
    }
    if value == f64::INFINITY {
        return i64::MAX;
    }
    if value == f64::NEG_INFINITY {
        return i64::MIN;
    }
    let scaled = (value * 4096.0).round();
    if scaled >= (i64::MAX - 2) as f64 {
        i64::MAX - 1
    } else if scaled <= (i64::MIN + 2) as f64 {
        i64::MIN + 2
    } else {
        scaled as i64
    }
}

/// The canonical fingerprint of a model + solver configuration.
///
/// `key` addresses the cache (structure + quantized constraint
/// coefficients; objective values and right-hand sides excluded so sweeps
/// over weights/tolerances collide on purpose). `exact` covers every bit of
/// the model and the solver configuration; only an `exact` match allows the
/// stored solution to be trusted as *the* solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelFingerprint {
    /// Structural cache key (see type-level docs).
    pub key: u64,
    /// Exact content hash of the full model and solver configuration.
    pub exact: u64,
}

impl ModelFingerprint {
    /// Fingerprint `model` as solved under the given configurations.
    pub fn of(
        model: &Model,
        simplex_config: &SimplexConfig,
        bb_config: &BranchBoundConfig,
    ) -> ModelFingerprint {
        let mut key = Fnv::new();
        let mut exact = Fnv::new();

        key.write_str(&model.name);
        exact.write_str(&model.name);

        key.write_usize(model.num_vars());
        exact.write_usize(model.num_vars());
        for var in model.vars() {
            key.write_str(&var.name);
            exact.write_str(&var.name);
            let kind = match var.kind {
                VarKind::Continuous => 0u8,
                VarKind::Integer => 1,
                VarKind::Binary => 2,
            };
            key.write_u8(kind);
            exact.write_u8(kind);
            key.write_i64(quantize(var.lower));
            key.write_i64(quantize(var.upper));
            exact.write_f64(var.lower);
            exact.write_f64(var.upper);
        }

        key.write_usize(model.num_constraints());
        exact.write_usize(model.num_constraints());
        for constraint in model.constraints() {
            key.write_str(&constraint.name);
            exact.write_str(&constraint.name);
            let sense = match constraint.sense {
                Sense::LessEqual => 0u8,
                Sense::GreaterEqual => 1,
                Sense::Equal => 2,
            };
            key.write_u8(sense);
            exact.write_u8(sense);
            key.write_usize(constraint.expr.len());
            exact.write_usize(constraint.expr.len());
            for (index, coeff) in constraint.expr.iter_terms() {
                key.write_usize(index);
                key.write_i64(quantize(coeff));
                exact.write_usize(index);
                exact.write_f64(coeff);
            }
            // The rhs (and the folded constant term) belong to the varying
            // "data" half of the model: exact hash only.
            exact.write_f64(constraint.rhs);
            exact.write_f64(constraint.expr.constant_term());
        }

        if let Some((direction, objective)) = model.objective() {
            let dir = match direction {
                Direction::Minimize => 0u8,
                Direction::Maximize => 1,
            };
            key.write_u8(dir);
            exact.write_u8(dir);
            key.write_usize(objective.len());
            exact.write_usize(objective.len());
            for (index, coeff) in objective.iter_terms() {
                // Objective *sparsity* is structure; the coefficient values
                // are what weight sweeps change, so they stay exact-only.
                key.write_usize(index);
                exact.write_usize(index);
                exact.write_f64(coeff);
            }
            exact.write_f64(objective.constant_term());
        }

        // A stored solution is only bit-reproducible under the same solver
        // configuration, so the configs are part of the exact hash.
        exact.write_usize(simplex_config.max_iterations);
        exact.write_f64(simplex_config.tolerance);
        exact.write_usize(simplex_config.stall_threshold);
        exact.write_usize(bb_config.max_nodes);
        exact.write_f64(bb_config.integrality_tolerance);
        exact.write_f64(bb_config.absolute_gap);
        exact.write_u8(bb_config.use_dual_restart as u8);

        ModelFingerprint {
            key: key.finish(),
            exact: exact.finish(),
        }
    }
}

/// Counters describing how a cache (or one workspace's view of it) was used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups whose exact hash matched: the stored solution was returned
    /// and the solve skipped entirely.
    pub exact_hits: usize,
    /// Lookups that matched the structural key only: the stored values were
    /// offered to the solver as a warm-start hint.
    pub hint_hits: usize,
    /// Lookups that found no entry for the structural key.
    pub misses: usize,
    /// Solutions written into the cache.
    pub insertions: usize,
    /// Entries displaced to make room for an insertion.
    pub evictions: usize,
}

impl CacheStats {
    /// Total lookups performed.
    pub fn lookups(&self) -> usize {
        self.exact_hits + self.hint_hits + self.misses
    }

    /// Fraction of lookups that hit (exact or hint); 0 when no lookup
    /// happened.
    pub fn hit_fraction(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.exact_hits + self.hint_hits) as f64 / lookups as f64
        }
    }

    /// Counters accumulated since `earlier`. Saturating, so a reset or
    /// replaced counter source can never underflow the reported deltas.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits.saturating_sub(earlier.exact_hits),
            hint_hits: self.hint_hits.saturating_sub(earlier.hint_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    pub(crate) fn record_lookup(&mut self, lookup: &CacheLookup) {
        match lookup {
            CacheLookup::Exact(_) => self.exact_hits += 1,
            CacheLookup::Hint(_) => self.hint_hits += 1,
            CacheLookup::Miss => self.misses += 1,
        }
    }

    pub(crate) fn record_insert(&mut self, evicted: bool) {
        self.insertions += 1;
        if evicted {
            self.evictions += 1;
        }
    }
}

/// The outcome of one cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// Exact fingerprint match: this *is* the solution of the probed model.
    Exact(Solution),
    /// Structural match only: prior incumbent values, usable as a warm-start
    /// hint but not as a solution.
    Hint(Vec<f64>),
    /// No entry under the structural key.
    Miss,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    exact: u64,
    status: SolveStatus,
    objective: f64,
    values: Vec<f64>,
    stamp: u64,
}

/// A deterministic, sharded model-fingerprint → incumbent-solution cache.
///
/// Each structural key holds up to [`VARIANTS_PER_KEY`] recently solved
/// exact variants; a lookup returns the variant whose exact hash matches
/// (exact hit) or the most recently stored variant's values as a hint.
///
/// Determinism guarantee: with the cache attached, schedules (solver
/// results) are byte-identical to cache-free solving. Exact hits return the
/// stored solution of a bit-identical model + configuration, and hint hits
/// only warm-start the solver, which is hint-invariant for solves that run
/// to optimality (see [`crate::Model::solve_warm`]). Only the amount of
/// solver work — and therefore the statistics — depends on the cache.
///
/// ```
/// use waterwise_milp::{
///     BranchBoundConfig, Model, Sense, SimplexConfig, SolutionCache, SolverWorkspace, VarKind,
/// };
///
/// let mut model = Model::new("cache-example");
/// let x = model.add_var("x", VarKind::Binary, 0.0, 1.0);
/// model.add_constraint("cap", x * 1.0, Sense::LessEqual, 1.0);
/// model.maximize(x * 3.0);
///
/// let cache = SolutionCache::shared();
/// let mut workspace = SolverWorkspace::new();
/// workspace.attach_cache(cache.clone());
/// let simplex = SimplexConfig::default();
/// let bb = BranchBoundConfig::default();
///
/// // First solve misses and publishes; re-solving the bit-identical model
/// // replays the stored optimum without any simplex work.
/// model.solve_warm(&simplex, &bb, None, &mut workspace).unwrap();
/// let replayed = model.solve_warm(&simplex, &bb, None, &mut workspace).unwrap();
/// assert_eq!(replayed.simplex_iterations, 0);
/// assert_eq!(cache.stats().exact_hits, 1);
/// ```
#[derive(Debug)]
pub struct SolutionCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    stamp: AtomicU64,
    exact_hits: AtomicUsize,
    hint_hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
}

impl Default for SolutionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SolutionCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count; at least one entry per shard). The oldest entry
    /// of a full shard is evicted on insertion.
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            shard_capacity,
            stamp: AtomicU64::new(0),
            exact_hits: AtomicUsize::new(0),
            hint_hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Wrap the cache into a shareable handle.
    pub fn into_handle(self) -> SolutionCacheHandle {
        Arc::new(self)
    }

    /// A fresh handle with the default capacity (the common constructor for
    /// sharing one cache across a campaign matrix).
    pub fn shared() -> SolutionCacheHandle {
        SolutionCache::new().into_handle()
    }

    fn shard(&self, key: u64) -> &RwLock<Shard> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Probe the cache. Read-locks a single shard.
    pub fn lookup(&self, fingerprint: ModelFingerprint) -> CacheLookup {
        let shard = read_shard(self.shard(fingerprint.key));
        let result = match shard.get(&fingerprint.key) {
            Some(bucket) => {
                if let Some(entry) = bucket.iter().find(|e| e.exact == fingerprint.exact) {
                    CacheLookup::Exact(Solution {
                        status: entry.status,
                        objective: entry.objective,
                        values: entry.values.clone(),
                        simplex_iterations: 0,
                        nodes_explored: 0,
                    })
                } else if let Some(latest) = bucket.iter().max_by_key(|e| e.stamp) {
                    CacheLookup::Hint(latest.values.clone())
                } else {
                    CacheLookup::Miss
                }
            }
            None => CacheLookup::Miss,
        };
        match &result {
            CacheLookup::Exact(_) => self.exact_hits.fetch_add(1, Ordering::Relaxed),
            CacheLookup::Hint(_) => self.hint_hits.fetch_add(1, Ordering::Relaxed),
            CacheLookup::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Store (or refresh) the incumbent solution for `fingerprint`. Returns
    /// `true` if an unrelated entry was evicted to make room (per-key
    /// variant overflow or shard capacity).
    pub fn insert(&self, fingerprint: ModelFingerprint, solution: &Solution) -> bool {
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        let entry = CacheEntry {
            exact: fingerprint.exact,
            status: solution.status,
            objective: solution.objective,
            values: solution.values.clone(),
            stamp,
        };
        let mut shard = write_shard(self.shard(fingerprint.key));
        let mut evicted = false;
        let bucket = shard.entry(fingerprint.key).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.exact == fingerprint.exact) {
            // Bit-identical model re-solved: refresh in place, no eviction.
            *existing = entry;
        } else {
            bucket.push(entry);
            if bucket.len() > VARIANTS_PER_KEY {
                if let Some(oldest) = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                {
                    bucket.remove(oldest);
                    evicted = true;
                }
            }
            if !evicted {
                let total: usize = shard.values().map(Vec::len).sum();
                if total > self.shard_capacity {
                    // Evict the globally oldest entry of this shard.
                    if let Some((key, index)) = shard
                        .iter()
                        .flat_map(|(k, b)| b.iter().enumerate().map(move |(i, e)| (*k, i, e.stamp)))
                        .min_by_key(|&(_, _, s)| s)
                        .map(|(k, i, _)| (k, i))
                    {
                        // The key was just found by the scan above; a miss
                        // here only skips one eviction (DET003: no panic).
                        if let Some(bucket) = shard.get_mut(&key) {
                            bucket.remove(index);
                            if bucket.is_empty() {
                                shard.remove(&key);
                            }
                            evicted = true;
                        }
                    }
                }
            }
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// Number of cached entries (exact variants) across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| read_shard(s).values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Drop every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            write_shard(shard).clear();
        }
    }

    /// Aggregate usage counters across every workspace sharing this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            hint_hits: self.hint_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Flatten the cache into a deterministic entry stream for the
    /// persistence codec: shards in index order, keys in ascending
    /// (`BTreeMap`) order within each shard, variants in bucket order.
    /// [`SolutionCache::import`] rebuilds exactly this layout, so
    /// export → import → export is byte-stable.
    pub(crate) fn export(&self) -> CacheExport {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let shard = read_shard(shard);
            for (key, bucket) in shard.iter() {
                for entry in bucket {
                    entries.push(ExportedEntry {
                        key: *key,
                        exact: entry.exact,
                        status: entry.status,
                        objective: entry.objective,
                        values: entry.values.clone(),
                        stamp: entry.stamp,
                    });
                }
            }
        }
        CacheExport {
            capacity: self.capacity(),
            next_stamp: self.stamp.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Rebuild a cache from an exported snapshot. Entries are placed
    /// directly into their buckets (shard routing is a pure function of the
    /// key, and bucket order follows the stream), bypassing [`Self::insert`]
    /// so stored stamps survive verbatim and no insertion/eviction counters
    /// move. Usage counters start at zero: they describe *this process's*
    /// cache traffic, not the lifetime of the snapshot.
    pub(crate) fn import(export: CacheExport) -> SolutionCache {
        let cache = SolutionCache::with_capacity(export.capacity);
        for entry in export.entries {
            let mut shard = write_shard(cache.shard(entry.key));
            shard.entry(entry.key).or_default().push(CacheEntry {
                exact: entry.exact,
                status: entry.status,
                objective: entry.objective,
                values: entry.values,
                stamp: entry.stamp,
            });
        }
        cache.stamp.store(export.next_stamp, Ordering::Relaxed);
        cache
    }
}

/// A flattened, order-stable snapshot of a cache's contents, the in-memory
/// side of the [`crate::persist`] codec.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CacheExport {
    /// Total capacity the cache was created with (already rounded to a
    /// multiple of the shard count by `with_capacity`, so reimporting with
    /// the same value reproduces the same shard capacity).
    pub(crate) capacity: usize,
    /// The stamp counter's next value; restoring it keeps recency-based
    /// eviction ordering consistent across a save/load cycle.
    pub(crate) next_stamp: u64,
    /// Every cached variant, in export order (see [`SolutionCache::export`]).
    pub(crate) entries: Vec<ExportedEntry>,
}

/// One cached exact variant, flattened for serialization.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ExportedEntry {
    /// Structural cache key the variant is bucketed under.
    pub(crate) key: u64,
    /// Exact content hash of the model + solver configuration.
    pub(crate) exact: u64,
    /// Solve status of the stored solution.
    pub(crate) status: SolveStatus,
    /// Stored objective value.
    pub(crate) objective: f64,
    /// Stored variable values.
    pub(crate) values: Vec<f64>,
    /// Insertion stamp (recency order for eviction).
    pub(crate) stamp: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    fn assignment_model(objective_scale: f64, rhs: f64) -> Model {
        let mut m = Model::new("cache-test");
        let x = m.add_binary("x0");
        let y = m.add_binary("x1");
        m.add_constraint("pick", LinExpr::from(x) + y, Sense::Equal, 1.0);
        m.add_constraint("cap", LinExpr::from(x) * 2.0 + y, Sense::LessEqual, rhs);
        m.minimize(LinExpr::from(x) * objective_scale + LinExpr::from(y) * (2.0 * objective_scale));
        m
    }

    fn fingerprint(m: &Model) -> ModelFingerprint {
        ModelFingerprint::of(m, &SimplexConfig::default(), &BranchBoundConfig::default())
    }

    #[test]
    fn identical_models_share_the_full_fingerprint() {
        let a = fingerprint(&assignment_model(1.0, 3.0));
        let b = fingerprint(&assignment_model(1.0, 3.0));
        assert_eq!(a, b);
    }

    #[test]
    fn objective_and_rhs_changes_keep_the_key_but_move_the_exact_hash() {
        let base = fingerprint(&assignment_model(1.0, 3.0));
        let other_weights = fingerprint(&assignment_model(7.0, 3.0));
        let other_rhs = fingerprint(&assignment_model(1.0, 2.5));
        assert_eq!(
            base.key, other_weights.key,
            "objective values are not structural"
        );
        assert_ne!(base.exact, other_weights.exact);
        assert_eq!(base.key, other_rhs.key, "rhs values are not structural");
        assert_ne!(base.exact, other_rhs.exact);
    }

    #[test]
    fn structural_changes_move_the_key() {
        let base = fingerprint(&assignment_model(1.0, 3.0));
        let mut renamed = assignment_model(1.0, 3.0);
        renamed.name = "other".to_string();
        assert_ne!(base.key, fingerprint(&renamed).key);

        let mut extra_var = assignment_model(1.0, 3.0);
        extra_var.add_binary("x2");
        assert_ne!(base.key, fingerprint(&extra_var).key);

        let mut different_coeff = Model::new("cache-test");
        let x = different_coeff.add_binary("x0");
        let y = different_coeff.add_binary("x1");
        different_coeff.add_constraint("pick", LinExpr::from(x) + y, Sense::Equal, 1.0);
        // Constraint coefficient 2.0 -> 3.0: beyond quantization, structural.
        different_coeff.add_constraint("cap", LinExpr::from(x) * 3.0 + y, Sense::LessEqual, 3.0);
        different_coeff.minimize(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        assert_ne!(base.key, fingerprint(&different_coeff).key);
    }

    #[test]
    fn quantization_absorbs_sub_grid_drift() {
        let mut drifted = Model::new("cache-test");
        let x = drifted.add_binary("x0");
        let y = drifted.add_binary("x1");
        drifted.add_constraint("pick", LinExpr::from(x) + y, Sense::Equal, 1.0);
        drifted.add_constraint(
            "cap",
            LinExpr::from(x) * (2.0 + 1e-8) + y,
            Sense::LessEqual,
            3.0,
        );
        drifted.minimize(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let base = fingerprint(&assignment_model(1.0, 3.0));
        let drifted = fingerprint(&drifted);
        assert_eq!(base.key, drifted.key);
        assert_ne!(base.exact, drifted.exact);
    }

    #[test]
    fn lookup_distinguishes_exact_hint_and_miss() {
        let cache = SolutionCache::new();
        let model = assignment_model(1.0, 3.0);
        let fp = fingerprint(&model);
        assert_eq!(cache.lookup(fp), CacheLookup::Miss);

        let solution = model.solve().unwrap();
        cache.insert(fp, &solution);
        match cache.lookup(fp) {
            CacheLookup::Exact(stored) => {
                assert_eq!(stored.values, solution.values);
                assert_eq!(stored.status, solution.status);
                assert_eq!(stored.simplex_iterations, 0, "exact hits do no work");
            }
            other => panic!("expected exact hit, got {other:?}"),
        }

        // Same structure, different objective: hint, not exact.
        let neighbor = fingerprint(&assignment_model(5.0, 3.0));
        assert_eq!(neighbor.key, fp.key);
        match cache.lookup(neighbor) {
            CacheLookup::Hint(values) => assert_eq!(values, solution.values),
            other => panic!("expected hint hit, got {other:?}"),
        }

        let stats = cache.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.hint_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert!((stats.hit_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_under_capacity_is_bounded_and_counted() {
        let cache = SolutionCache::with_capacity(SHARDS); // one entry per shard
        assert_eq!(cache.capacity(), SHARDS);
        let solution = Solution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            values: vec![1.0],
            simplex_iterations: 0,
            nodes_explored: 0,
        };
        // Many distinct keys; some will land on full shards and evict.
        for k in 0..(4 * SHARDS as u64) {
            let fp = ModelFingerprint { key: k, exact: k };
            cache.insert(fp, &solution);
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds capacity",
            cache.len()
        );
        let stats = cache.stats();
        assert_eq!(stats.insertions, 4 * SHARDS);
        assert_eq!(
            stats.evictions,
            3 * SHARDS,
            "each shard evicts its overflow"
        );
        // Re-inserting a bit-identical fingerprint refreshes in place: no
        // eviction. (Key 4*SHARDS-1 was the last insert, so it is resident.)
        let before = cache.stats().evictions;
        let last = 4 * SHARDS as u64 - 1;
        let existing = ModelFingerprint {
            key: last,
            exact: last,
        };
        assert!(!cache.insert(existing, &solution));
        assert_eq!(cache.stats().evictions, before);
        // A *new* exact variant of that key, with the shard at capacity,
        // does evict.
        let variant = ModelFingerprint {
            key: last,
            exact: 99,
        };
        assert!(cache.insert(variant, &solution));
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn per_key_variant_overflow_evicts_the_oldest_variant() {
        let cache = SolutionCache::new(); // ample total capacity
        let key = 5u64;
        let mk = |exact: u64, value: f64| {
            let solution = Solution {
                status: SolveStatus::Optimal,
                objective: value,
                values: vec![value],
                simplex_iterations: 0,
                nodes_explored: 0,
            };
            (ModelFingerprint { key, exact }, solution)
        };
        for exact in 0..(VARIANTS_PER_KEY as u64 + 3) {
            let (fp, solution) = mk(exact, exact as f64);
            cache.insert(fp, &solution);
        }
        assert_eq!(cache.len(), VARIANTS_PER_KEY, "bucket must stay bounded");
        assert_eq!(cache.stats().evictions, 3, "each overflow evicts one");
        // The oldest variants are gone (hint only); recent ones hit exactly.
        assert!(matches!(
            cache.lookup(ModelFingerprint { key, exact: 0 }),
            CacheLookup::Hint(_)
        ));
        let newest = VARIANTS_PER_KEY as u64 + 2;
        match cache.lookup(ModelFingerprint { key, exact: newest }) {
            CacheLookup::Exact(solution) => assert_eq!(solution.values, vec![newest as f64]),
            other => panic!("expected exact hit, got {other:?}"),
        }
        // The hint is the most recently inserted variant's values.
        match cache.lookup(ModelFingerprint {
            key,
            exact: u64::MAX,
        }) {
            CacheLookup::Hint(values) => assert_eq!(values, vec![newest as f64]),
            other => panic!("expected hint, got {other:?}"),
        }
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = SolutionCache::new();
        let fp = ModelFingerprint { key: 1, exact: 1 };
        let solution = Solution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            values: vec![],
            simplex_iterations: 0,
            nodes_explored: 0,
        };
        cache.insert(fp, &solution);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn stats_deltas_saturate() {
        let later = CacheStats {
            exact_hits: 1,
            ..CacheStats::default()
        };
        let earlier = CacheStats {
            exact_hits: 5,
            hint_hits: 2,
            ..CacheStats::default()
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.exact_hits, 0, "reset counters must not underflow");
        assert_eq!(delta.hint_hits, 0);
        assert_eq!(CacheStats::default().hit_fraction(), 0.0);
    }
}
