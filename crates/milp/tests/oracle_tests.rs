//! Oracle tests for branch & bound: exhaustively enumerate every binary
//! assignment of models with at most 12 integer variables and assert that
//! branch & bound — cold, warm-started from the optimum, and warm-started
//! from a deliberately bad feasible point — finds the same optimal objective
//! as the brute force.
//!
//! The model generator is deterministic (an inline LCG), so failures
//! reproduce; the ground truth is computed generically through
//! `Model::is_feasible` and objective evaluation, not re-derived per shape.

use waterwise_milp::{
    BranchBoundConfig, LinExpr, Model, Sense, SimplexConfig, SolveStatus, SolverWorkspace, Var,
};

/// Minimal deterministic generator (64-bit LCG, MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform float in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A random binary model with `n <= 12` variables and a mix of knapsack,
/// cover, and (sometimes) partition constraints — a superset of the shapes
/// the WaterWise scheduler emits.
fn random_binary_model(n: usize, rng: &mut Lcg) -> (Model, Vec<Var>) {
    let mut m = Model::new(format!("oracle-{n}"));
    let vars: Vec<Var> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();

    // Knapsack: sum w_i x_i <= C with C somewhere between min(w) and sum(w).
    let weights: Vec<f64> = (0..n).map(|_| rng.uniform(0.2, 4.0)).collect();
    let total: f64 = weights.iter().sum();
    let capacity = rng.uniform(0.2, 1.0) * total;
    let mut knap = LinExpr::zero();
    for (i, &v) in vars.iter().enumerate() {
        knap.add_term(v, weights[i]);
    }
    m.add_constraint("knap", knap, Sense::LessEqual, capacity);

    // Cover: at least `k` selections (possibly infeasible together with the
    // knapsack — the oracle must then agree on infeasibility).
    if rng.below(2) == 0 {
        let k = 1.0 + rng.below(3) as f64;
        let cover = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        m.add_constraint("cover", cover, Sense::GreaterEqual, k);
    }

    // Partition: exactly one of the first few variables.
    if n >= 4 && rng.below(2) == 0 {
        let head = LinExpr::sum(vars.iter().take(3).map(|&v| LinExpr::from(v)));
        m.add_constraint("partition", head, Sense::Equal, 1.0);
    }

    let mut obj = LinExpr::zero();
    for &v in &vars {
        obj.add_term(v, rng.uniform(-5.0, 5.0));
    }
    if rng.below(2) == 0 {
        m.minimize(obj);
    } else {
        m.maximize(obj);
    }
    (m, vars)
}

/// Exhaustive ground truth: best objective over all feasible 0/1 points, the
/// arg-optimum, and one arbitrary (first) feasible point.
fn brute_force(m: &Model, n: usize) -> Option<(f64, Vec<f64>, Vec<f64>)> {
    let (direction, objective) = m.objective().expect("oracle models have objectives");
    let maximize = matches!(direction, waterwise_milp::model::Direction::Maximize);
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut first_feasible: Option<Vec<f64>> = None;
    for mask in 0u32..(1 << n) {
        let values: Vec<f64> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        if !m.is_feasible(&values, 1e-9) {
            continue;
        }
        if first_feasible.is_none() {
            first_feasible = Some(values.clone());
        }
        let value = objective.evaluate(&values);
        let better = match &best {
            None => true,
            Some((b, _)) => {
                if maximize {
                    value > *b
                } else {
                    value < *b
                }
            }
        };
        if better {
            best = Some((value, values));
        }
    }
    best.map(|(value, argmax)| (value, argmax, first_feasible.unwrap()))
}

#[test]
fn branch_bound_matches_exhaustive_enumeration_cold_and_warm() {
    let mut rng = Lcg(0x5eed_2024);
    let simplex = SimplexConfig::default();
    let bb = BranchBoundConfig::default();
    let mut solved = 0usize;
    let mut infeasible = 0usize;
    for n in 2..=12usize {
        for _instance in 0..4 {
            let (m, _vars) = random_binary_model(n, &mut rng);
            let truth = brute_force(&m, n);
            let cold = m.solve().unwrap();
            match truth {
                None => {
                    assert_eq!(
                        cold.status,
                        SolveStatus::Infeasible,
                        "n={n}: brute force found no feasible point but solver says {:?}",
                        cold.status
                    );
                    // A warm hint cannot conjure feasibility.
                    let mut ws = SolverWorkspace::new();
                    let warm = m
                        .solve_warm(&simplex, &bb, Some(&vec![0.0; n]), &mut ws)
                        .unwrap();
                    assert_eq!(warm.status, SolveStatus::Infeasible, "n={n}");
                    infeasible += 1;
                }
                Some((best, argmax, first_feasible)) => {
                    assert!(
                        cold.status.has_solution(),
                        "n={n}: expected a solution, got {:?}",
                        cold.status
                    );
                    assert!(
                        (cold.objective - best).abs() < 1e-6,
                        "n={n}: cold {} vs brute force {best}",
                        cold.objective
                    );
                    assert!(m.is_feasible(&cold.values, 1e-6), "n={n}");
                    // Warm from the true optimum and from an arbitrary
                    // feasible point must land on the same objective.
                    for hint in [&argmax, &first_feasible] {
                        let mut ws = SolverWorkspace::new();
                        let warm = m.solve_warm(&simplex, &bb, Some(hint), &mut ws).unwrap();
                        assert!(warm.status.has_solution(), "n={n}");
                        assert!(
                            (warm.objective - best).abs() < 1e-6,
                            "n={n}: warm {} vs brute force {best} (hint {hint:?})",
                            warm.objective
                        );
                        assert!(m.is_feasible(&warm.values, 1e-6), "n={n}");
                    }
                    solved += 1;
                }
            }
        }
    }
    // The generator must have exercised both regimes.
    assert!(solved >= 20, "only {solved} solvable instances generated");
    assert!(infeasible >= 2, "only {infeasible} infeasible instances");
}

#[test]
fn oracle_holds_at_the_twelve_variable_ceiling_with_equalities() {
    // A 12-variable assignment model (4 jobs x 3 regions) solved against
    // full enumeration — the exact WaterWise shape at the oracle size limit.
    let mut m = Model::new("oracle-assign");
    let n_jobs = 4;
    let n_regions = 3;
    let mut rng = Lcg(7);
    let mut vars = vec![];
    for j in 0..n_jobs {
        for r in 0..n_regions {
            vars.push(m.add_binary(format!("x_{j}_{r}")));
        }
    }
    let v = |j: usize, r: usize| vars[j * n_regions + r];
    for j in 0..n_jobs {
        let expr = LinExpr::sum((0..n_regions).map(|r| LinExpr::from(v(j, r))));
        m.add_constraint(format!("assign_{j}"), expr, Sense::Equal, 1.0);
    }
    for r in 0..n_regions {
        let expr = LinExpr::sum((0..n_jobs).map(|j| LinExpr::from(v(j, r))));
        m.add_constraint(format!("cap_{r}"), expr, Sense::LessEqual, 2.0);
    }
    let mut obj = LinExpr::zero();
    for j in 0..n_jobs {
        for r in 0..n_regions {
            obj.add_term(v(j, r), rng.uniform(0.5, 9.5));
        }
    }
    m.minimize(obj);

    let (best, argmax, _) = brute_force(&m, n_jobs * n_regions).expect("model is feasible");
    let cold = m.solve().unwrap();
    assert!((cold.objective - best).abs() < 1e-6);
    let mut ws = SolverWorkspace::new();
    let warm = m
        .solve_warm(
            &SimplexConfig::default(),
            &BranchBoundConfig::default(),
            Some(&argmax),
            &mut ws,
        )
        .unwrap();
    assert!((warm.objective - best).abs() < 1e-6);
    assert_eq!(warm.values, cold.values);
    assert!(
        ws.stats().warm_solves >= 1,
        "equality model must take the warm path"
    );
}
