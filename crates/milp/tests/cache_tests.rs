//! Property tests for the solution cache: caching may change the amount of
//! solver work, never the result.

use proptest::prelude::*;
use waterwise_milp::{
    BranchBoundConfig, LinExpr, Model, SimplexConfig, SolutionCache, SolverWorkspace,
};

/// The WaterWise shape: assignment equality rows plus capacity rows. The
/// `cost` closure varies across "campaign cells", the structure does not.
fn assignment_model(n_jobs: usize, n_regions: usize, capacity: f64, seed: u64) -> Model {
    let mut m = Model::new("cache-prop");
    let mut vars = vec![];
    for j in 0..n_jobs {
        for r in 0..n_regions {
            vars.push(m.add_binary(format!("x_{j}_{r}")));
        }
    }
    let v = |j: usize, r: usize| vars[j * n_regions + r];
    for j in 0..n_jobs {
        let expr = LinExpr::sum((0..n_regions).map(|r| LinExpr::from(v(j, r))));
        m.add_constraint(
            format!("assign_{j}"),
            expr,
            waterwise_milp::Sense::Equal,
            1.0,
        );
    }
    for r in 0..n_regions {
        let expr = LinExpr::sum((0..n_jobs).map(|j| LinExpr::from(v(j, r))));
        m.add_constraint(
            format!("cap_{r}"),
            expr,
            waterwise_milp::Sense::LessEqual,
            capacity,
        );
    }
    let mut obj = LinExpr::zero();
    for j in 0..n_jobs {
        for r in 0..n_regions {
            // Distinct powers of two make every assignment's total cost
            // unique (binary representations), so the optimum is unique and
            // byte-level value equality is well-defined even under hints.
            let cost = 0.1 + (seed as f64 + 1.0) * (1u64 << (j * n_regions + r)) as f64 * 1e-6;
            obj.add_term(v(j, r), cost);
        }
    }
    m.minimize(obj);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Solving a sweep of structurally identical models (varying objective
    /// "weights" per cell, like a `run_matrix` sweep) produces byte-identical
    /// solutions with the cache off, with a fresh cache, and on a second
    /// pass over a warmed cache (exact hits).
    #[test]
    fn cache_on_and_off_solutions_are_byte_identical(
        n_jobs in 1usize..6,
        n_regions in 1usize..4,
        seeds in prop::collection::vec(0u64..50, 1..5),
    ) {
        let capacity = n_jobs.div_ceil(n_regions) as f64;
        let simplex = SimplexConfig::default();
        let bb = BranchBoundConfig::default();

        let mut plain_ws = SolverWorkspace::new();
        let mut cached_ws = SolverWorkspace::new();
        cached_ws.attach_cache(SolutionCache::shared());

        let mut first_pass = Vec::new();
        for &seed in &seeds {
            let model = assignment_model(n_jobs, n_regions, capacity, seed);
            let plain = model.solve_warm(&simplex, &bb, None, &mut plain_ws).unwrap();
            let cached = model.solve_warm(&simplex, &bb, None, &mut cached_ws).unwrap();
            prop_assert_eq!(plain.status, cached.status);
            prop_assert_eq!(
                &plain.values, &cached.values,
                "cache changed the solution for seed {}", seed
            );
            first_pass.push(cached);
        }
        // After the first cell, every later cell structurally matches.
        if seeds.len() > 1 {
            let stats = cached_ws.cache_stats();
            prop_assert!(
                stats.hint_hits + stats.exact_hits >= seeds.len() - 1,
                "expected cross-cell hits, got {:?}", stats
            );
        }

        // Re-solving a cached cell is an exact fingerprint match: the stored
        // solution comes back without any solving. (Each structural key
        // retains a bucket of recent exact variants, so every cell of the
        // sweep — not just the last — stays resident.)
        let before = cached_ws.cache_stats();
        let last_seed = *seeds.last().unwrap();
        let model = assignment_model(n_jobs, n_regions, capacity, last_seed);
        let again = model.solve_warm(&simplex, &bb, None, &mut cached_ws).unwrap();
        prop_assert_eq!(&again.values, &first_pass.last().unwrap().values);
        prop_assert_eq!(again.simplex_iterations, 0, "exact hit must skip the solve");
        let delta = cached_ws.cache_stats().delta_since(&before);
        prop_assert_eq!(delta.exact_hits, 1);
        prop_assert_eq!(delta.misses, 0);
    }

    /// A caller-supplied hint and a cache hint coexist: results still match
    /// the cache-free solve exactly.
    #[test]
    fn cache_and_caller_hints_compose(
        n_jobs in 2usize..5,
        seed_a in 0u64..50,
        seed_b in 50u64..100,
    ) {
        let n_regions = 3;
        let capacity = n_jobs as f64;
        let simplex = SimplexConfig::default();
        let bb = BranchBoundConfig::default();

        let warmup = assignment_model(n_jobs, n_regions, capacity, seed_a);
        let target = assignment_model(n_jobs, n_regions, capacity, seed_b);

        let mut plain_ws = SolverWorkspace::new();
        let reference = target.solve_warm(&simplex, &bb, None, &mut plain_ws).unwrap();

        let mut cached_ws = SolverWorkspace::new();
        cached_ws.attach_cache(SolutionCache::shared());
        let warm_solution = warmup.solve_warm(&simplex, &bb, None, &mut cached_ws).unwrap();
        // Offer the warmup optimum as the caller hint too; the cache hint
        // (same values, via the structural key) takes precedence.
        let cached = target
            .solve_warm(&simplex, &bb, Some(&warm_solution.values), &mut cached_ws)
            .unwrap();
        prop_assert_eq!(&cached.values, &reference.values);
        prop_assert!((cached.objective - reference.objective).abs() < 1e-9);
    }
}
