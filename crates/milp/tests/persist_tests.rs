//! Persistence battery for the solution-cache snapshot codec: property-based
//! save↔load roundtrips (byte-equal re-encode, every bucket/variant/stamp
//! preserved) and the file-level corruption negatives (truncation, flipped
//! bytes, foreign/future headers, solver-config mismatches) — each of which
//! must surface as its own typed [`CachePersistError`], never a panic and
//! never a silently garbled cache.

use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use waterwise_milp::persist::{decode_cache, encode_cache, CACHE_HEADER};
use waterwise_milp::{
    solver_config_hash, BranchBoundConfig, CacheAutosave, CacheLookup, CachePersistError,
    ModelFingerprint, SimplexConfig, Solution, SolutionCache, SolveStatus,
};

/// A scratch directory unique to this test binary's process.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ww-persist-{label}-{}", std::process::id()));
    let _ = fs::create_dir_all(&dir);
    dir
}

fn status_of(code: u64) -> SolveStatus {
    match code % 5 {
        0 => SolveStatus::Optimal,
        1 => SolveStatus::Feasible,
        2 => SolveStatus::Infeasible,
        3 => SolveStatus::Unbounded,
        _ => SolveStatus::IterationLimit,
    }
}

/// Build a cache from generated (key, exact, status, values) tuples. Keys
/// are folded onto a small space so buckets accumulate multiple variants.
fn build_cache(entries: &[(u64, u64, u64, Vec<f64>)]) -> SolutionCache {
    let cache = SolutionCache::with_capacity(256);
    for (key, exact, status_code, values) in entries {
        let solution = Solution {
            status: status_of(*status_code),
            objective: values.iter().sum(),
            values: values.clone(),
            simplex_iterations: 2,
            nodes_explored: 1,
        };
        let fingerprint = ModelFingerprint {
            key: key % 23,
            exact: *exact,
        };
        cache.insert(fingerprint, &solution);
    }
    cache
}

fn default_config_hash() -> u64 {
    solver_config_hash(&SimplexConfig::default(), &BranchBoundConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_reencode_is_byte_equal(
        entries in prop::collection::vec(
            (0u64..1000, 0u64..1_000_000, 0u64..5, prop::collection::vec(-10.0f64..10.0, 1..6)),
            0..40,
        ),
    ) {
        let cache = build_cache(&entries);
        let config = default_config_hash();
        let bytes = encode_cache(&cache, config);
        let loaded = decode_cache(&bytes, config, Path::new("mem")).expect("roundtrip decode");
        // Byte-equal re-encode means every bucket, variant, value, stamp,
        // and the stamp counter itself survived verbatim.
        prop_assert_eq!(encode_cache(&loaded, config), bytes);
        prop_assert_eq!(loaded.len(), cache.len());
        prop_assert_eq!(loaded.capacity(), cache.capacity());
    }

    #[test]
    fn loaded_cache_answers_exactly_like_the_original(
        entries in prop::collection::vec(
            (0u64..100, 0u64..1000, 0u64..5, prop::collection::vec(-5.0f64..5.0, 1..4)),
            1..25,
        ),
        probes in prop::collection::vec((0u64..100, 0u64..1000), 1..20),
    ) {
        let cache = build_cache(&entries);
        let config = default_config_hash();
        let bytes = encode_cache(&cache, config);
        let loaded = decode_cache(&bytes, config, Path::new("mem")).expect("roundtrip decode");
        for (key, exact) in probes {
            let fingerprint = ModelFingerprint { key: key % 23, exact };
            prop_assert_eq!(cache.lookup(fingerprint), loaded.lookup(fingerprint));
        }
    }

    #[test]
    fn any_flipped_payload_byte_is_a_checksum_error(
        entries in prop::collection::vec(
            (0u64..50, 0u64..100, 0u64..5, prop::collection::vec(-1.0f64..1.0, 1..3)),
            1..10,
        ),
        position in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let config = default_config_hash();
        let mut bytes = encode_cache(&build_cache(&entries), config);
        // Flip one byte anywhere in the content region (after the header,
        // before the stored checksum).
        let lo = CACHE_HEADER.len();
        let hi = bytes.len() - 8;
        let target = lo + ((position * (hi - lo) as f64) as usize).min(hi - lo - 1);
        bytes[target] ^= flip as u8;
        match decode_cache(&bytes, config, Path::new("mem")) {
            Err(CachePersistError::ChecksumMismatch { expected, actual, .. }) => {
                prop_assert_ne!(expected, actual);
            }
            other => prop_assert!(false, "expected checksum mismatch, got {:?}", other),
        }
    }
}

#[test]
fn save_then_load_from_disk_roundtrips() {
    let dir = scratch("roundtrip");
    let path = dir.join("cache.snapshot");
    let cache = build_cache(&[
        (1, 10, 0, vec![1.0, 0.0]),
        (1, 11, 1, vec![0.5]),
        (7, 70, 0, vec![-0.0, f64::MAX]),
    ]);
    let config = default_config_hash();
    cache.save(&path, config).expect("save");
    let loaded = SolutionCache::load(&path, config).expect("load");
    assert_eq!(encode_cache(&loaded, config), encode_cache(&cache, config));
    match loaded.lookup(ModelFingerprint { key: 1, exact: 11 }) {
        CacheLookup::Exact(solution) => assert_eq!(solution.values, vec![0.5]),
        other => panic!("expected exact hit after reload, got {other:?}"),
    }
    // Saving over an existing snapshot replaces it atomically.
    cache.save(&path, config).expect("re-save over existing");
    assert!(SolutionCache::load(&path, config).is_ok());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_is_a_typed_io_error_naming_the_path() {
    let path = scratch("missing").join("never-written.snapshot");
    match SolutionCache::load(&path, default_config_hash()) {
        Err(CachePersistError::Io { path: reported, .. }) => assert_eq!(reported, path),
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let dir = scratch("truncated");
    let path = dir.join("cache.snapshot");
    let config = default_config_hash();
    let cache = build_cache(&[(1, 10, 0, vec![1.0, 2.0, 3.0]), (2, 20, 1, vec![4.0])]);
    cache.save(&path, config).expect("save");
    let full = fs::read(&path).expect("read back");
    // Every proper prefix must fail typed, never panic or yield a partial
    // cache: Truncated for mid-content cuts, BadHeader for cuts inside the
    // header, and ChecksumMismatch when the cut leaves enough bytes that
    // the decoder reads a (shifted, hence wrong) checksum trailer.
    for keep in [
        0,
        5,
        CACHE_HEADER.len(),
        CACHE_HEADER.len() + 9,
        full.len() - 1,
    ] {
        fs::write(&path, &full[..keep]).expect("write truncated");
        let error = SolutionCache::load(&path, config).expect_err("truncated must not load");
        match &error {
            CachePersistError::Truncated { path: reported, .. }
            | CachePersistError::BadHeader { path: reported, .. }
            | CachePersistError::ChecksumMismatch { path: reported, .. } => {
                assert_eq!(reported, &path, "error must name the offending file")
            }
            other => panic!("unexpected error for prefix {keep}: {other:?}"),
        }
        assert!(
            error.to_string().contains("cache.snapshot"),
            "message must name the path: {error}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_on_disk_is_a_checksum_error() {
    let dir = scratch("flip");
    let path = dir.join("cache.snapshot");
    let config = default_config_hash();
    build_cache(&[(1, 10, 0, vec![1.0])])
        .save(&path, config)
        .expect("save");
    let mut bytes = fs::read(&path).expect("read back");
    let mid = CACHE_HEADER.len() + 12;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("write corrupted");
    match SolutionCache::load(&path, config) {
        Err(CachePersistError::ChecksumMismatch { path: reported, .. }) => {
            assert_eq!(reported, path)
        }
        other => panic!("expected checksum mismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wrong_version_header_is_a_typed_error() {
    let dir = scratch("version");
    let path = dir.join("cache.snapshot");
    fs::write(&path, b"waterwise-cache/2\nfuture bytes").expect("write");
    match SolutionCache::load(&path, default_config_hash()) {
        Err(CachePersistError::UnsupportedVersion {
            path: reported,
            found,
        }) => {
            assert_eq!(reported, path);
            assert!(found.starts_with("waterwise-cache/2"), "found {found:?}");
        }
        other => panic!("expected unsupported version, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_file_is_a_bad_header_error() {
    let dir = scratch("foreign");
    let path = dir.join("cache.snapshot");
    fs::write(&path, b"{\"not\": \"a snapshot\"}").expect("write");
    match SolutionCache::load(&path, default_config_hash()) {
        Err(CachePersistError::BadHeader { path: reported, .. }) => assert_eq!(reported, path),
        other => panic!("expected bad header, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn solver_config_mismatch_is_a_typed_error() {
    let dir = scratch("config");
    let path = dir.join("cache.snapshot");
    let saved_config = default_config_hash();
    build_cache(&[(1, 10, 0, vec![1.0])])
        .save(&path, saved_config)
        .expect("save");
    let mut other_bb = BranchBoundConfig::default();
    other_bb.use_dual_restart = !other_bb.use_dual_restart;
    let other_config = solver_config_hash(&SimplexConfig::default(), &other_bb);
    match SolutionCache::load(&path, other_config) {
        Err(CachePersistError::ConfigMismatch {
            path: reported,
            expected,
            found,
        }) => {
            assert_eq!(reported, path);
            assert_eq!(expected, other_config);
            assert_eq!(found, saved_config);
        }
        other => panic!("expected config mismatch, got {other:?}"),
    }
    // The same file still loads under the configuration it was saved with.
    assert!(SolutionCache::load(&path, saved_config).is_ok());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn no_temp_files_survive_a_successful_save() {
    let dir = scratch("tempfiles");
    let path = dir.join("cache.snapshot");
    build_cache(&[(1, 10, 0, vec![1.0])])
        .save(&path, default_config_hash())
        .expect("save");
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name != "cache.snapshot")
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn autosave_guard_saves_on_drop_and_on_finish() {
    let dir = scratch("autosave");
    let config = default_config_hash();

    let drop_path = dir.join("dropped.snapshot");
    {
        let cache = build_cache(&[(3, 30, 0, vec![2.0])]).into_handle();
        let _guard = CacheAutosave::new(cache, drop_path.clone(), config);
        assert!(!drop_path.exists(), "guard must not save before drop");
    }
    let reloaded = SolutionCache::load(&drop_path, config).expect("drop-path save");
    assert_eq!(reloaded.len(), 1);

    let finish_path = dir.join("finished.snapshot");
    let cache = build_cache(&[(4, 40, 1, vec![5.0]), (4, 41, 0, vec![6.0])]).into_handle();
    let guard = CacheAutosave::new(cache.clone(), finish_path.clone(), config);
    guard.finish().expect("finish save");
    let reloaded = SolutionCache::load(&finish_path, config).expect("finish-path load");
    assert_eq!(
        encode_cache(&reloaded, config),
        encode_cache(&cache, config)
    );
    let _ = fs::remove_dir_all(&dir);
}
