//! Property-based tests for the LP/MILP solver.
//!
//! Strategy: generate small random problems where the ground truth can be
//! established independently (brute-force enumeration for binary programs,
//! feasibility checking for LPs) and verify the solver agrees.

use proptest::prelude::*;
use waterwise_milp::{
    solve_dual_from_snapshot, solve_with_basis_capture, BranchBoundConfig, DualOutcome, LinExpr,
    LpConstraint, LpProblem, Model, Sense, SimplexConfig, SimplexOutcome, SolveStatus,
    SolverWorkspace,
};

/// Build a random binary minimization problem: `n` binary variables, a
/// single knapsack-style capacity constraint, and a cost vector.
fn binary_problem(
    costs: &[f64],
    weights: &[f64],
    capacity: f64,
) -> (Model, Vec<waterwise_milp::Var>) {
    let mut m = Model::new("prop-binary");
    let vars: Vec<_> = (0..costs.len())
        .map(|i| m.add_binary(format!("x{i}")))
        .collect();
    let mut weight_expr = LinExpr::zero();
    let mut cost_expr = LinExpr::zero();
    for (i, &v) in vars.iter().enumerate() {
        weight_expr.add_term(v, weights[i]);
        cost_expr.add_term(v, costs[i]);
    }
    m.add_constraint("cap", weight_expr, Sense::LessEqual, capacity);
    // Force at least one selection so the trivial all-zero answer is not
    // always optimal.
    let any = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
    m.add_constraint("atleast", any, Sense::GreaterEqual, 1.0);
    m.minimize(cost_expr);
    (m, vars)
}

/// Brute-force the optimum of the binary problem above.
fn brute_force(costs: &[f64], weights: &[f64], capacity: f64) -> Option<f64> {
    let n = costs.len();
    let mut best: Option<f64> = None;
    for mask in 1u32..(1 << n) {
        let mut weight = 0.0;
        let mut cost = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                weight += weights[i];
                cost += costs[i];
            }
        }
        if weight <= capacity + 1e-9 {
            best = Some(best.map_or(cost, |b: f64| b.min(cost)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MILP optimum matches exhaustive enumeration on small binary programs.
    #[test]
    fn milp_matches_brute_force(
        costs in prop::collection::vec(0.1f64..10.0, 2..7),
        weights_seed in prop::collection::vec(0.1f64..5.0, 2..7),
        cap_frac in 0.3f64..1.0,
    ) {
        let n = costs.len().min(weights_seed.len());
        let costs = &costs[..n];
        let weights = &weights_seed[..n];
        let total_weight: f64 = weights.iter().sum();
        let capacity = total_weight * cap_frac;
        let (m, _) = binary_problem(costs, weights, capacity);
        let sol = m.solve().unwrap();
        let truth = brute_force(costs, weights, capacity);
        match truth {
            Some(best) => {
                prop_assert!(sol.status.has_solution(), "expected solution, got {:?}", sol.status);
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, best);
                prop_assert!(m.is_feasible(&sol.values, 1e-6));
            }
            None => {
                prop_assert_eq!(sol.status, SolveStatus::Infeasible);
            }
        }
    }

    /// Any LP solution returned as optimal is feasible and at least as good
    /// as a set of sampled feasible points.
    #[test]
    fn lp_optimum_dominates_sampled_feasible_points(
        c0 in -5.0f64..5.0,
        c1 in -5.0f64..5.0,
        b0 in 1.0f64..20.0,
        b1 in 1.0f64..20.0,
        a00 in 0.1f64..3.0,
        a01 in 0.1f64..3.0,
        a10 in 0.1f64..3.0,
        a11 in 0.1f64..3.0,
        samples in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 20),
    ) {
        let mut m = Model::new("prop-lp");
        let x = m.add_non_negative("x");
        let y = m.add_non_negative("y");
        m.add_constraint("r0", LinExpr::from(x) * a00 + LinExpr::from(y) * a01, Sense::LessEqual, b0);
        m.add_constraint("r1", LinExpr::from(x) * a10 + LinExpr::from(y) * a11, Sense::LessEqual, b1);
        m.minimize(LinExpr::from(x) * c0 + LinExpr::from(y) * c1);
        let sol = m.solve().unwrap();
        // The origin is always feasible here, so the LP cannot be infeasible.
        prop_assert!(matches!(sol.status, SolveStatus::Optimal | SolveStatus::Unbounded));
        if sol.status == SolveStatus::Optimal {
            prop_assert!(m.is_feasible(&sol.values, 1e-6));
            for (sx, sy) in samples {
                let feasible = a00 * sx + a01 * sy <= b0 + 1e-9 && a10 * sx + a11 * sy <= b1 + 1e-9;
                if feasible {
                    let value = c0 * sx + c1 * sy;
                    prop_assert!(sol.objective <= value + 1e-6,
                        "sampled point ({sx},{sy}) beats 'optimal' {} with {}", sol.objective, value);
                }
            }
        } else {
            // Unbounded requires some negative cost direction.
            prop_assert!(c0 < 0.0 || c1 < 0.0);
        }
    }

    /// On random small feasible LPs the simplex optimum satisfies every
    /// constraint within tolerance and is never beaten by any vertex of a
    /// brute-force grid probe over the (bounded) feasible box.
    #[test]
    fn simplex_optimum_is_feasible_and_dominates_grid_probe(
        costs in prop::collection::vec(-4.0f64..4.0, 3),
        rows in prop::collection::vec(
            (prop::collection::vec(0.05f64..2.0, 3), 1.0f64..15.0), 1..4),
        upper in 2.0f64..8.0,
    ) {
        // Non-negative constraint matrices with positive rhs keep the origin
        // feasible, and the box bound keeps the LP bounded for any costs.
        let mut m = Model::new("prop-simplex");
        let vars: Vec<_> = (0..3)
            .map(|i| m.add_var(format!("x{i}"), waterwise_milp::VarKind::Continuous, 0.0, upper))
            .collect();
        for (r, (coeffs, rhs)) in rows.iter().enumerate() {
            let mut expr = LinExpr::zero();
            for (i, &v) in vars.iter().enumerate() {
                expr.add_term(v, coeffs[i]);
            }
            m.add_constraint(format!("r{r}"), expr, Sense::LessEqual, *rhs);
        }
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, costs[i]);
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(m.is_feasible(&sol.values, 1e-6),
            "optimum {:?} violates a constraint", sol.values);
        // Probe an 11x11x11 grid of the box; no feasible probe point may
        // beat the reported optimum.
        let steps = 10usize;
        for gx in 0..=steps {
            for gy in 0..=steps {
                for gz in 0..=steps {
                    let point = [
                        upper * gx as f64 / steps as f64,
                        upper * gy as f64 / steps as f64,
                        upper * gz as f64 / steps as f64,
                    ];
                    let feasible = rows.iter().all(|(coeffs, rhs)| {
                        coeffs.iter().zip(&point).map(|(c, p)| c * p).sum::<f64>() <= rhs + 1e-9
                    });
                    if feasible {
                        let value: f64 =
                            costs.iter().zip(&point).map(|(c, p)| c * p).sum();
                        prop_assert!(sol.objective <= value + 1e-6,
                            "grid point {point:?} ({value}) beats 'optimal' {}", sol.objective);
                    }
                }
            }
        }
    }

    /// Warm-starting from any feasible point returns the same LP optimum as
    /// a cold solve (the hint may change the pivot path, never the result).
    #[test]
    fn warm_start_matches_cold_on_random_lps(
        costs in prop::collection::vec(-4.0f64..4.0, 3),
        rows in prop::collection::vec(
            (prop::collection::vec(0.05f64..2.0, 3), 1.0f64..15.0), 1..4),
        eq_total in 0.5f64..3.0,
        hint_frac in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        // Include an equality row so the cold path must run a phase 1 — the
        // case the crash basis exists to skip.
        let mut m = Model::new("prop-warm");
        let vars: Vec<_> = (0..3)
            .map(|i| m.add_var(format!("x{i}"), waterwise_milp::VarKind::Continuous, 0.0, 10.0))
            .collect();
        for (r, (coeffs, rhs)) in rows.iter().enumerate() {
            let mut expr = LinExpr::zero();
            for (i, &v) in vars.iter().enumerate() {
                expr.add_term(v, coeffs[i]);
            }
            m.add_constraint(format!("r{r}"), expr, Sense::LessEqual, *rhs);
        }
        let sum = LinExpr::sum(vars.iter().map(|&v| LinExpr::from(v)));
        m.add_constraint("total", sum, Sense::Equal, eq_total);
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, costs[i]);
        }
        m.minimize(obj);
        let cold = m.solve().unwrap();
        // A hint that is usually infeasible for the equality row: the solver
        // must treat it as advisory only.
        let hint: Vec<f64> = hint_frac.iter().map(|f| f * eq_total).collect();
        let mut ws = SolverWorkspace::new();
        let warm = m.solve_warm(
            &waterwise_milp::SimplexConfig::default(),
            &waterwise_milp::BranchBoundConfig::default(),
            Some(&hint),
            &mut ws,
        ).unwrap();
        prop_assert_eq!(cold.status, warm.status);
        if cold.status == SolveStatus::Optimal {
            prop_assert!((cold.objective - warm.objective).abs() < 1e-6,
                "cold {} vs warm {}", cold.objective, warm.objective);
            prop_assert!(m.is_feasible(&warm.values, 1e-6));
        }
    }

    /// A dual-simplex restart from a captured basis returns exactly the
    /// verdict (and optimum) of a cold solve on bound-perturbed LPs — the
    /// branch & bound child-node situation, over the same bounded-box shape
    /// as the grid-probe battery above.
    #[test]
    fn dual_restart_equals_cold_on_bound_perturbed_lps(
        costs in prop::collection::vec(-4.0f64..4.0, 3),
        rows in prop::collection::vec(
            (prop::collection::vec(0.05f64..2.0, 3), 1.0f64..15.0), 1..4),
        upper in 2.0f64..8.0,
        lo_frac in prop::collection::vec(0.0f64..1.0, 3),
        hi_frac in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let parent = LpProblem {
            num_vars: 3,
            costs,
            lower: vec![0.0; 3],
            upper: vec![upper; 3],
            constraints: rows
                .iter()
                .map(|(coeffs, rhs)| LpConstraint {
                    coeffs: coeffs.iter().cloned().enumerate().collect(),
                    sense: Sense::LessEqual,
                    rhs: *rhs,
                })
                .collect(),
        };
        let config = SimplexConfig::default();
        let mut ws = SolverWorkspace::new();
        let (outcome, snapshot) =
            solve_with_basis_capture(&parent, &config, None, Some(&mut ws));
        prop_assert!(matches!(outcome, SimplexOutcome::Optimal { .. }));
        let snapshot = snapshot.expect("optimal parent captures a basis");

        // Tighten each variable's box (keeping it non-empty and the bound
        // classes unchanged): exactly what branching does to a child node.
        let mut child = parent.clone();
        for i in 0..3 {
            let lo = upper * lo_frac[i] * 0.9;
            let hi = lo + (upper - lo) * hi_frac[i].max(0.05);
            child.lower[i] = lo;
            child.upper[i] = hi;
        }
        let cold = waterwise_milp::simplex::solve(&child, &config);
        match solve_dual_from_snapshot(&child, &config, &snapshot, Some(&mut ws)) {
            DualOutcome::Finished(dual, _) => match (&cold, &dual) {
                (
                    SimplexOutcome::Optimal { objective: co, values: cv, .. },
                    SimplexOutcome::Optimal { objective: wo, values: wv, .. },
                ) => {
                    prop_assert!((co - wo).abs() < 1e-6, "cold {co} vs dual {wo}");
                    for (c, w) in cv.iter().zip(wv) {
                        prop_assert!((c - w).abs() < 1e-6, "cold {cv:?} vs dual {wv:?}");
                    }
                }
                (SimplexOutcome::Infeasible { .. }, SimplexOutcome::Infeasible { .. }) => {}
                other => prop_assert!(false, "verdicts diverge: {other:?}"),
            },
            // A typed fallback is allowed (the caller would solve cold); a
            // wrong answer is not.
            DualOutcome::PivotLimit { .. } | DualOutcome::Incompatible => {}
        }
    }

    /// Branch & bound with dual restarts returns the same solution as with
    /// per-node cold solves on random binary knapsacks.
    #[test]
    fn branch_bound_dual_restarts_match_cold_nodes(
        costs in prop::collection::vec(0.1f64..10.0, 2..7),
        weights_seed in prop::collection::vec(0.1f64..5.0, 2..7),
        cap_frac in 0.3f64..1.0,
    ) {
        let n = costs.len().min(weights_seed.len());
        let costs = &costs[..n];
        let weights = &weights_seed[..n];
        let total_weight: f64 = weights.iter().sum();
        let capacity = total_weight * cap_frac;
        let (m, _) = binary_problem(costs, weights, capacity);
        let simplex = SimplexConfig::default();
        let mut dual_ws = SolverWorkspace::new();
        let mut cold_ws = SolverWorkspace::new();
        let dual = m
            .solve_warm(&simplex, &BranchBoundConfig::default(), None, &mut dual_ws)
            .unwrap();
        let cold_config = BranchBoundConfig {
            use_dual_restart: false,
            ..BranchBoundConfig::default()
        };
        let cold = m
            .solve_warm(&simplex, &cold_config, None, &mut cold_ws)
            .unwrap();
        prop_assert_eq!(cold.status, dual.status);
        if cold.status.has_solution() {
            prop_assert!((cold.objective - dual.objective).abs() < 1e-9,
                "cold {} vs dual {}", cold.objective, dual.objective);
            prop_assert_eq!(&cold.values, &dual.values);
        }
        prop_assert_eq!(cold_ws.stats().dual_restarts, 0);
    }

    /// Assignment problems with adequate capacity always produce a feasible,
    /// fully integral assignment.
    #[test]
    fn assignment_always_assigns_every_job(
        n_jobs in 1usize..6,
        n_regions in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut m = Model::new("prop-assign");
        let mut vars = vec![];
        for j in 0..n_jobs {
            for r in 0..n_regions {
                vars.push(m.add_binary(format!("x_{j}_{r}")));
            }
        }
        let v = |j: usize, r: usize| vars[j * n_regions + r];
        for j in 0..n_jobs {
            let expr = LinExpr::sum((0..n_regions).map(|r| LinExpr::from(v(j, r))));
            m.add_constraint(format!("assign_{j}"), expr, Sense::Equal, 1.0);
        }
        // Capacity: enough in aggregate.
        let per_region = n_jobs.div_ceil(n_regions) as f64;
        for r in 0..n_regions {
            let expr = LinExpr::sum((0..n_jobs).map(|j| LinExpr::from(v(j, r))));
            m.add_constraint(format!("cap_{r}"), expr, Sense::LessEqual, per_region);
        }
        let mut obj = LinExpr::zero();
        for j in 0..n_jobs {
            for r in 0..n_regions {
                // Pseudo-random but deterministic costs.
                let cost = (((j as u64 * 2654435761 + r as u64 * 40503 + seed) % 97) as f64) / 10.0;
                obj.add_term(v(j, r), cost);
            }
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        prop_assert!(sol.status.has_solution());
        prop_assert!(m.is_feasible(&sol.values, 1e-6));
        for j in 0..n_jobs {
            let total: f64 = (0..n_regions).map(|r| sol.value(v(j, r))).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }
}
