//! End-to-end test of the TCP front-end: a client speaks the line-delimited
//! JSON protocol over a real socket, including malformed lines and
//! duplicate ids (answered in-band), half-close shutdown, and the
//! recorded-trace identity with an offline replay.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use waterwise_cluster::{EngineMode, Simulator};
use waterwise_core::{build_scheduler, SchedulerKind, WaterWiseConfig};
use waterwise_service::{PlacementService, ServiceConfig, TcpPlacementServer};
use waterwise_sustain::FootprintEstimator;
use waterwise_telemetry::SyntheticTelemetry;

fn request_line(id: u64, submit: f64) -> String {
    format!(
        "{{\"id\":{id},\"benchmark\":\"blackscholes\",\"home_region\":\"Milan\",\
         \"submit_time\":{submit},\"execution_time\":300,\"energy\":0.02,\
         \"package_bytes\":1048576}}"
    )
}

#[test]
fn tcp_session_serves_requests_and_shuts_down_cleanly() {
    let config =
        ServiceConfig::small_demo(42).with_engine_mode(EngineMode::Pipelined { workers: 2 });
    let telemetry_config = config.telemetry;
    let simulation = config.simulation.clone();
    let service = PlacementService::new(config).unwrap();
    let server = TcpPlacementServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let reader = BufReader::new(stream);
        for (id, submit) in [(1u64, 0.0), (2, 30.0), (3, 60.0)] {
            writeln!(writer, "{}", request_line(id, submit)).unwrap();
        }
        writeln!(writer, "this is not json").unwrap();
        writeln!(writer, "{}", request_line(2, 90.0)).unwrap(); // duplicate id
        writeln!(writer).unwrap(); // blank keep-alive line
        writeln!(writer, "{}", request_line(4, 120.0)).unwrap();
        // Half-close: end of the request stream; keep reading responses.
        writer.flush().unwrap();
        stream_shutdown_write(&writer);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        lines
    });

    let mut scheduler = build_scheduler(
        SchedulerKind::WaterWise,
        service.telemetry(),
        FootprintEstimator::new(service.config().simulation.datacenter),
        &WaterWiseConfig::default(),
        None,
    );
    let report = server
        .serve_connection(&service, scheduler.as_mut())
        .unwrap();
    let lines = client.join().unwrap();

    assert_eq!(report.accepted, 4, "ids 1–4 admitted");
    assert_eq!(report.rejected, 1, "the duplicate id rejected");
    assert_eq!(report.served, 4);
    assert_eq!(report.report.outcomes.len(), 4);

    let placements: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"placement\""))
        .collect();
    let errors: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"error\""))
        .collect();
    assert_eq!(placements.len(), 4, "lines: {lines:?}");
    assert_eq!(errors.len(), 2, "malformed + duplicate, lines: {lines:?}");
    assert!(errors.iter().any(|l| l.contains("malformed")));
    assert!(errors.iter().any(|l| l.contains("duplicate")));
    for id in [1u64, 2, 3, 4] {
        assert!(
            placements
                .iter()
                .any(|l| l.contains(&format!("\"job\":{id},"))),
            "no placement line for job {id}: {placements:?}"
        );
    }

    // The recorded trace replays offline to the byte-identical schedule.
    let offline = Simulator::new(
        simulation,
        SyntheticTelemetry::generate(telemetry_config).shared(),
    )
    .unwrap()
    .run(
        &report.trace,
        build_scheduler(
            SchedulerKind::WaterWise,
            service.telemetry(),
            FootprintEstimator::new(service.config().simulation.datacenter),
            &WaterWiseConfig::default(),
            None,
        )
        .as_mut(),
    )
    .unwrap();
    assert_eq!(report.report.outcomes, offline.outcomes);
}

fn stream_shutdown_write(stream: &TcpStream) {
    stream.shutdown(Shutdown::Write).unwrap();
}
