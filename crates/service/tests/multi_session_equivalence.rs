//! The multi-session determinism contract: **N concurrent sessions
//! racing onto one persistent host produce an admission journal whose
//! offline replay is byte-identical to the live schedule**, across Sync
//! and Pipelined engines — and, when every submit time ties exactly, the
//! live schedule itself is independent of how the session threads
//! interleaved.
//!
//! Tie-adversarial on purpose: submit times sit on a coarse grid (many
//! exactly equal), so the only thing keeping the schedule stable is the
//! per-session arrival-sequence band (`session << 32 | request index`)
//! plus the journal pinning the drained `(spec, seq)` stream.

use proptest::prelude::*;
use std::collections::BTreeMap;
use waterwise_cluster::{
    EngineMode, Scheduler, SchedulingContext, SchedulingDecision, SimulationConfig,
};
use waterwise_service::{
    AdmissionConfig, AdmissionMode, ClusterHost, HostReport, PlacementResponse, PlacementService,
    ServiceConfig, ServiceError, TenantId,
};
use waterwise_sustain::{KilowattHours, Seconds};
use waterwise_telemetry::{Region, TelemetryConfig, ALL_REGIONS};
use waterwise_traces::{Benchmark, JobId, JobSpec};

const TELEMETRY_SEED: u64 = 7;

fn job(id: u64, submit: f64, exec: f64, home: Region, bytes: u64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        benchmark: Benchmark::Dedup,
        submit_time: Seconds::new(submit),
        home_region: home,
        actual_execution_time: Seconds::new(exec),
        actual_energy: KilowattHours::new(0.01),
        estimated_execution_time: Seconds::new(exec),
        estimated_energy: KilowattHours::new(0.01),
        package_bytes: bytes,
    }
}

/// The same deterministic scheduler family as the engine's pipeline
/// equivalence tests: home placement, pinning, rotation, partial
/// assignment, periodic deferral. Stateful on purpose — the live run and
/// the journal replay must present it the identical context sequence.
struct VariedScheduler {
    variant: usize,
    round: usize,
}

impl Scheduler for VariedScheduler {
    fn name(&self) -> &str {
        "varied"
    }
    fn schedule(&mut self, ctx: &SchedulingContext<'_>) -> SchedulingDecision {
        self.round += 1;
        match self.variant {
            0 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
            ),
            1 => SchedulingDecision::from_pairs(
                ctx.pending.iter().map(|p| (p.spec.id, Region::Zurich)),
            ),
            2 => SchedulingDecision::from_pairs(ctx.pending.iter().map(|p| {
                let region = ALL_REGIONS[(p.spec.id.0 as usize + self.round) % ALL_REGIONS.len()];
                (p.spec.id, region)
            })),
            3 => SchedulingDecision::from_pairs(
                ctx.pending
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(|(_, p)| (p.spec.id, p.spec.home_region)),
            ),
            _ => {
                if self.round.is_multiple_of(3) {
                    SchedulingDecision::defer_all()
                } else {
                    SchedulingDecision::from_pairs(
                        ctx.pending.iter().map(|p| (p.spec.id, p.spec.home_region)),
                    )
                }
            }
        }
    }
}

fn service_config(servers: usize, engine: EngineMode) -> ServiceConfig {
    ServiceConfig::new(
        SimulationConfig::paper_default(servers, 0.5).with_engine_mode(engine),
        TelemetryConfig {
            seed: TELEMETRY_SEED,
            ..TelemetryConfig::default()
        },
    )
}

/// Run `sessions` concurrent session threads against one host, each
/// submitting its own job list under its own tenant, and return the host
/// report plus each tenant's delivered responses (in delivery order) and
/// its count of quota rejections.
fn run_live(
    sessions: &[Vec<JobSpec>],
    servers: usize,
    engine: EngineMode,
    variant: usize,
    quota: usize,
) -> (
    HostReport,
    BTreeMap<TenantId, Vec<PlacementResponse>>,
    BTreeMap<TenantId, usize>,
) {
    let service = PlacementService::new(service_config(servers, engine)).unwrap();
    let host = ClusterHost::start_with_service(
        service,
        AdmissionConfig {
            tenant_inflight_quota: quota,
            drr_quantum: 2,
            mode: AdmissionMode::Streaming {
                close_after_sessions: Some(sessions.len()),
            },
        },
        Box::new(VariedScheduler { variant, round: 0 }),
    )
    .unwrap();
    let mut delivered = BTreeMap::new();
    let mut shed = BTreeMap::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .enumerate()
            .map(|(index, jobs)| {
                let tenant = TenantId::from(format!("tenant-{index}"));
                let session = host.open_session(tenant.clone()).unwrap();
                scope.spawn(move || {
                    let mut rejected = 0usize;
                    for spec in jobs {
                        match session.submit(spec.clone()) {
                            Ok(()) => {}
                            Err(ServiceError::AdmissionRejected { .. }) => rejected += 1,
                            Err(other) => panic!("unexpected submit failure: {other}"),
                        }
                    }
                    (tenant, session.drain(), rejected)
                })
            })
            .collect();
        for handle in handles {
            let (tenant, responses, rejected) = handle.join().unwrap();
            delivered.insert(tenant.clone(), responses);
            shed.insert(tenant, rejected);
        }
    });
    (host.shutdown().unwrap(), delivered, shed)
}

/// Replay the live run's journal offline (always on the Sync engine, so
/// a Pipelined live run is also checked across engine modes) and assert
/// byte-identity plus per-tenant response agreement.
fn assert_replay_identical(
    live: &HostReport,
    delivered: &BTreeMap<TenantId, Vec<PlacementResponse>>,
    servers: usize,
    variant: usize,
) {
    let replay_service = PlacementService::new(service_config(servers, EngineMode::Sync)).unwrap();
    let mut scheduler = VariedScheduler { variant, round: 0 };
    let replay = live
        .journal
        .replay(&replay_service, &mut scheduler)
        .unwrap();
    assert_eq!(
        live.schedule_digest(),
        replay.schedule_digest(),
        "journal replay digest diverged from the live schedule"
    );
    assert_eq!(
        live.report.outcomes, replay.report.report.outcomes,
        "journal replay outcomes diverged"
    );
    assert_eq!(
        live.trace, replay.report.trace,
        "replay ingested a different stamped stream"
    );
    // Per-tenant responses agree: same jobs, same placements, same
    // projections, in the same commit order.
    for (tenant, live_responses) in delivered {
        let replayed = replay.responses.get(tenant).cloned().unwrap_or_default();
        assert_eq!(
            live_responses, &replayed,
            "tenant {tenant} responses diverged under replay"
        );
    }
    let replay_total: usize = replay.responses.values().map(Vec::len).sum();
    let live_total: usize = delivered.values().map(Vec::len).sum();
    assert_eq!(live_total, replay_total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent interleaved sessions with exact-time ties, Sync and
    /// Pipelined: the journal replays to the byte-identical schedule and
    /// every tenant gets the same responses.
    #[test]
    fn journal_replay_is_byte_identical_to_live_multi_session_run(
        raw in prop::collection::vec(
            prop::collection::vec((0u64..4, 1u64..20, 0usize..5, 1u64..200_000_000), 0..10),
            2..5,
        ),
        servers in 1usize..6,
        variant in 0usize..5,
        workers in 0usize..3,
        tight_quota in 0usize..2,
    ) {
        // A tight quota exercises in-band shedding; a loose one keeps
        // every generated request admitted.
        let quota = if tight_quota == 1 { 2 } else { 64 };
        // Coarse grids (multiples of 30 s / 45 s) collide arrivals with
        // the 60 s rounds and with each other, within and across
        // sessions. Ids are globally unique; per-session submit times are
        // non-decreasing so a session is a well-formed stream on its own,
        // while cross-session interleaving stays fully racy.
        let sessions: Vec<Vec<JobSpec>> = raw
            .iter()
            .enumerate()
            .map(|(s, jobs)| {
                let mut times: Vec<u64> = jobs.iter().map(|&(t, ..)| t).collect();
                times.sort_unstable();
                jobs.iter()
                    .zip(times)
                    .enumerate()
                    .map(|(k, (&(_, e, r, bytes), t))| {
                        job(
                            (s as u64) * 1000 + k as u64,
                            t as f64 * 30.0,
                            e as f64 * 45.0,
                            ALL_REGIONS[r],
                            bytes,
                        )
                    })
                    .collect()
            })
            .collect();
        let engine = if workers == 0 {
            EngineMode::Sync
        } else {
            EngineMode::Pipelined { workers }
        };

        let (report, delivered, shed) = run_live(&sessions, servers, engine, variant, quota);

        let submitted: usize = sessions.iter().map(Vec::len).sum();
        let rejected: usize = shed.values().sum();
        prop_assert_eq!(report.accepted + rejected, submitted);
        prop_assert_eq!(report.rejected, rejected);
        prop_assert_eq!(report.served, report.accepted);
        prop_assert_eq!(report.journal.entries.len(), report.accepted);
        prop_assert_eq!(report.sessions, sessions.len());
        // Admission accounting agrees tenant by tenant.
        for (index, jobs) in sessions.iter().enumerate() {
            let tenant = TenantId::from(format!("tenant-{index}"));
            let stats = report.tenants.get(&tenant).cloned().unwrap_or_default();
            prop_assert_eq!(stats.accepted + stats.rejected, jobs.len());
            prop_assert_eq!(stats.served, delivered[&tenant].len());
        }

        // The journal survives its text round trip and replays to the
        // byte-identical schedule.
        let reparsed = waterwise_service::Journal::parse(&report.journal.encode()).unwrap();
        prop_assert_eq!(&reparsed, &report.journal);
        assert_replay_identical(&report, &delivered, servers, variant);
    }
}

/// With every submit time tied exactly, the committed schedule is a pure
/// function of `(session, request index)` — so a fully concurrent run and
/// a strictly sequential one (session 0 submits everything, then session
/// 1, ...) must commit the byte-identical schedule, in both engine modes.
#[test]
fn all_ties_schedule_is_independent_of_session_interleaving() {
    let sessions: Vec<Vec<JobSpec>> = (0..4u64)
        .map(|s| {
            (0..6u64)
                .map(|k| {
                    job(
                        s * 1000 + k,
                        0.0,
                        45.0 * (1 + (s + k) % 4) as f64,
                        ALL_REGIONS[((s + k) % 5) as usize],
                        1 << 20,
                    )
                })
                .collect()
        })
        .collect();

    for engine in [EngineMode::Sync, EngineMode::Pipelined { workers: 2 }] {
        // Concurrent: all four session threads race.
        let (concurrent, _, _) = run_live(&sessions, 2, engine, 2, 64);

        // Sequential: one session at a time submits its whole stream
        // (the admission queue still sees four sessions; only the
        // interleaving changes — maximally, from racy to serialized).
        let service = PlacementService::new(service_config(2, engine)).unwrap();
        let host = ClusterHost::start_with_service(
            service,
            AdmissionConfig {
                tenant_inflight_quota: 64,
                drr_quantum: 2,
                mode: AdmissionMode::Streaming {
                    close_after_sessions: Some(sessions.len()),
                },
            },
            Box::new(VariedScheduler {
                variant: 2,
                round: 0,
            }),
        )
        .unwrap();
        let opened: Vec<_> = sessions
            .iter()
            .enumerate()
            .map(|(i, _)| host.open_session(format!("tenant-{i}")).unwrap())
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (session, jobs) in opened.into_iter().zip(&sessions) {
                for spec in jobs {
                    session.submit(spec.clone()).unwrap();
                }
                // Drain concurrently (responses only flush as other
                // sessions advance time or the host auto-closes), but
                // submit strictly sequentially.
                handles.push(scope.spawn(move || session.drain()));
            }
            for handle in handles {
                handle.join().unwrap();
            }
        });
        let sequential = host.shutdown().unwrap();

        assert_eq!(
            concurrent.schedule_digest(),
            sequential.schedule_digest(),
            "tied-arrival schedule depended on session interleaving ({engine:?})"
        );
        assert_eq!(concurrent.report.outcomes, sequential.report.outcomes);
    }
}
